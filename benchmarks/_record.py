"""Machine-readable benchmark records: ``BENCH_<name>.json`` per bench module.

Every ``benchmarks/bench_*.py`` obtains a recorder once at import time::

    from _record import recorder
    RECORD = recorder("modelcheck")

and logs one entry per measured scenario::

    RECORD.record("pipeline_6 eager", seconds=elapsed, states=lts.state_count())

On interpreter exit the recorder writes ``BENCH_<name>.json`` next to the
repository root (override the directory with ``BENCH_OUTPUT_DIR``), so every
benchmark run — local or CI — leaves a comparable artifact and the perf
trajectory can be tracked across PRs.  The JSON schema is stable::

    {
      "bench": "modelcheck",
      "python": "3.12.1",
      "entries": [
        {"scenario": "...", "seconds": 0.123, "states": 42, "bdd_nodes": 17, ...}
      ],
      "metrics": {"families": [...]}
    }

``seconds``, ``states``, ``bdd_nodes`` are the canonical fields; extra
keyword arguments are stored verbatim.  Fields that were not measured are
omitted, not zeroed.  ``metrics`` is the process's global ``repro.obs``
registry snapshot at flush time (``tests/test_bench_schema.py`` validates
the whole shape for every committed ``BENCH_*.json``).
"""

from __future__ import annotations

import atexit
import json
import os
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

_RECORDERS: Dict[str, "BenchRecorder"] = {}


def timed(function: Callable, *args, **kwargs) -> Tuple[object, float]:
    """One wall-clock measurement: ``(result, seconds)``.

    The pytest-benchmark fixture hides its statistics when benchmarks are
    disabled (the CI assertion-only mode), so the JSON records take one
    explicit measurement instead — coarse, but comparable across PRs.
    """
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def _output_directory() -> Path:
    override = os.environ.get("BENCH_OUTPUT_DIR")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent


class BenchRecorder:
    """Collects scenario entries for one bench module and flushes them to JSON."""

    def __init__(self, name: str):
        self.name = name
        self.entries: List[Dict[str, object]] = []
        self._flushed = False

    def record(
        self,
        scenario: str,
        seconds: Optional[float] = None,
        states: Optional[int] = None,
        bdd_nodes: Optional[int] = None,
        **extra: object,
    ) -> Dict[str, object]:
        entry: Dict[str, object] = {"scenario": scenario}
        if seconds is not None:
            entry["seconds"] = round(float(seconds), 6)
        if states is not None:
            entry["states"] = int(states)
        if bdd_nodes is not None:
            entry["bdd_nodes"] = int(bdd_nodes)
        entry.update(extra)
        self.entries.append(entry)
        return entry

    def flush(self) -> Optional[Path]:
        """Write ``BENCH_<name>.json``; returns the path (None if empty)."""
        if not self.entries:
            return None
        path = _output_directory() / f"BENCH_{self.name}.json"
        payload = {
            "bench": self.name,
            "python": platform.python_version(),
            "entries": self.entries,
            "metrics": _metrics_snapshot(),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        self._flushed = True
        return path


def _metrics_snapshot() -> Dict[str, object]:
    """The global ``repro.obs`` registry snapshot taken at flush time.

    Every BENCH record embeds the process's metric families so a perf
    number can be read beside the counters that explain it (cache hits,
    store reads, spans dropped).  Import is deferred and guarded: the
    recorder must keep working from a checkout where ``repro.obs`` is not
    importable.
    """
    try:
        from repro.obs.metrics import GLOBAL

        return GLOBAL.snapshot()
    except Exception:  # pragma: no cover - degraded environments only
        return {"families": []}


def recorder(name: str) -> BenchRecorder:
    """The (process-wide) recorder for one bench module, flushed at exit."""
    existing = _RECORDERS.get(name)
    if existing is not None:
        return existing
    instance = BenchRecorder(name)
    _RECORDERS[name] = instance
    atexit.register(instance.flush)
    return instance
