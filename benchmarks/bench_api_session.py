"""E-API — repeated multi-property verification: shared Design session vs per-call API.

The facade's claim: a :class:`repro.Design` session memoizes normalization,
per-component analyses and the composition's clock calculus in one shared
:class:`~repro.api.session.AnalysisContext`, so verifying several properties
of an N-component composition (or re-verifying after a cache hit) no longer
re-normalizes and re-hierarchizes every component per call — which is exactly
what the historical flat entry points do.

Both sides answer the same queries on the same 5-stage pipeline (≥ 4
components): the weakly hierarchic criterion, endochrony of the composition,
compilability, and a repeat of the criterion (the "same question asked
twice" that production query traffic is full of).

Run with:  pytest benchmarks/bench_api_session.py --benchmark-only
(the timing assertion of test_shared_session_is_strictly_faster also runs in
the plain tier-1 suite)
"""

import time

from _record import recorder

from repro import Design, ProcessAnalysis, check_weakly_hierarchic
from repro.library.generators import pipeline_network

RECORD = recorder("api_session")

SIZE = 5
ROUNDS = 3


def _per_call_round(components, composition):
    """The old flat API: every call rebuilds its analyses from scratch."""
    results = []
    results.append(check_weakly_hierarchic(components, composition).weakly_hierarchic())
    analysis = ProcessAnalysis(composition)
    results.append(analysis.is_compilable() and analysis.is_hierarchic())
    results.append(ProcessAnalysis(composition).is_compilable())
    results.append(check_weakly_hierarchic(components, composition).weakly_hierarchic())
    return results


def _session_round(design):
    """The facade: all four queries share the session's memoized artefacts."""
    return [
        bool(design.verify("weakly-hierarchic")),
        bool(design.verify("endochrony")),
        bool(design.verify("compilable")),
        bool(design.verify("weakly-hierarchic")),
    ]


def test_per_call_api(benchmark):
    """Baseline: the flat entry points, re-analyzing on every question."""
    components, composition = pipeline_network(SIZE)
    results = benchmark(_per_call_round, components, composition)
    assert results[0] is True and results[3] is True
    assert results[1] is False  # the composition keeps one root per stage


def test_shared_session(benchmark):
    """The facade: one session answers the same questions from its memo."""
    components, composition = pipeline_network(SIZE)
    design = Design(
        name=composition.name, components=list(components), composition=composition
    )
    results = benchmark(_session_round, design)
    assert results[0] is True and results[3] is True


def test_shared_session_is_strictly_faster():
    """Pin the caching win: ROUNDS rounds of queries, session vs per-call."""
    components, composition = pipeline_network(SIZE)

    start = time.perf_counter()
    for _ in range(ROUNDS):
        per_call = _per_call_round(components, composition)
    per_call_seconds = time.perf_counter() - start

    design = Design(
        name=composition.name, components=list(components), composition=composition
    )
    start = time.perf_counter()
    for _ in range(ROUNDS):
        session = _session_round(design)
    session_seconds = time.perf_counter() - start

    RECORD.record(f"pipeline_{SIZE} per-call x{ROUNDS}", seconds=per_call_seconds)
    RECORD.record(f"pipeline_{SIZE} session x{ROUNDS}", seconds=session_seconds)
    # both sides agree on every verdict (the composition itself is not
    # hierarchic — one root per pipeline stage — so query 2 is False)
    assert per_call == session == [True, False, True, True]
    # After the first round every session answer is a cache hit; the per-call
    # side rebuilds (components + 1) analyses per criterion call, every round.
    assert session_seconds < per_call_seconds, (
        f"shared session took {session_seconds * 1000:.1f} ms, "
        f"per-call API {per_call_seconds * 1000:.1f} ms"
    )
    # after the first round every query is a memory hit on its verdict node
    verdict_counters = design.context.stats()["stages"]["verdict"]
    assert verdict_counters["hits"] >= (ROUNDS - 1) * 4
    assert verdict_counters["computed"] == 3  # the three distinct queries
