"""F-BDD — the array kernel vs the reference kernel, scenario by scenario.

The pluggable BDD backend (:mod:`repro.bdd.backend`) promises identical
answers with a better constant factor.  This module measures where the
constant factor actually moves and pins the wins that are structural:

1. *Bulk enumeration* (``satisfy_matrix``) — the per-state workhorse of the
   compiled engine's ``reactions()``.  The reference kernel walks one cube
   at a time through Python recursion; the array kernel expands whole
   solution frontiers with numpy.  This is the kernel-dominated scenario,
   gated at **≥5×**.
2. *Hard apply* — the conjunction of two structurally independent
   inner-product functions, an adversarial case where nearly every
   subproblem allocates a fresh node (no sharing for the vectorized pass to
   exploit), gated at a conservative ≥1.3×.
3. *End-to-end pipeline sweeps* — ``build_lts_compiled`` on relay
   pipelines, recorded on both backends **honestly, without a speedup
   gate**: at ``pipeline_8`` the whole run is ~30 ms and mostly non-BDD
   work (normalization, hierarchy, interning), so backend parity is the
   expected result; at ``pipeline_12`` the 4097-row enumeration starts to
   dominate and the array kernel pulls ahead.  The JSON records both so
   the trajectory is visible instead of cherry-picked.

Run with:  pytest benchmarks/bench_bdd.py --benchmark-only
(the timing assertions also run in the plain suite; CI uploads the JSON)
"""

from __future__ import annotations

import time

from _record import recorder

from repro.bdd.backend import available_backends, create_manager, load_manager
from repro.library.generators import pipeline_network
from repro.mc.compiled import CompiledAbstraction, build_lts_compiled

RECORD = recorder("bdd")

#: required advantage on the kernel-dominated bulk-enumeration scenario
ENUMERATION_SPEEDUP = 5.0
#: required advantage on the adversarial apply (every request a fresh node)
APPLY_SPEEDUP = 1.3

#: inner-product function width: ~2^IP_HALF nodes, exponential in any order
IP_HALF = 12


def _inner_product(manager, shift: int = 0):
    """``⊕ aᵢ·b₍ᵢ₊shift₎`` — exponential node count under a/b separation."""
    a = [manager.var(f"a{i}") for i in range(IP_HALF)]
    b = [manager.var(f"b{i}") for i in range(IP_HALF)]
    function = manager.false
    for index in range(IP_HALF):
        function = function ^ (a[index] & b[(index + shift) % IP_HALF])
    return function


def _timed(function, *args, **kwargs):
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


# ---------------------------------------------------------------------------
# 1. bulk enumeration: the ≥5× kernel-dominated gate
# ---------------------------------------------------------------------------

def test_satisfy_matrix_is_5x_faster_on_the_array_kernel():
    # the real workload: the compiled step relation of a 12-stage relay
    # pipeline, enumerated over its event/value/next variables (4097 rows) —
    # exactly what reactions() does per state, minus the interning
    _components, composition = pipeline_network(12)
    abstraction = CompiledAbstraction(composition)
    payload = abstraction.manager.dump([abstraction.step])
    variables = abstraction._enumerate_variables

    seconds = {}
    rows = {}
    for backend in available_backends():
        manager, (root,) = load_manager(payload, backend=backend)
        rows[backend], seconds[backend] = _timed(
            manager.satisfy_matrix, root, variables
        )
        RECORD.record(
            f"satisfy_matrix pipeline_12 {backend}",
            seconds=seconds[backend],
            rows=len(rows[backend]),
            bdd_nodes=root.node_count(),
        )
    assert rows["array"] == rows["reference"], "identical rows, identical order"
    speedup = seconds["reference"] / seconds["array"]
    RECORD.record("satisfy_matrix pipeline_12 speedup", speedup=round(speedup, 2))
    assert speedup >= ENUMERATION_SPEEDUP, (
        f"array satisfy_matrix is only {speedup:.1f}x faster "
        f"({seconds['reference']:.3f}s -> {seconds['array']:.3f}s); "
        f"the gate is {ENUMERATION_SPEEDUP}x"
    )


# ---------------------------------------------------------------------------
# 2. hard apply: adversarial, little sharing to vectorize over
# ---------------------------------------------------------------------------

def test_hard_apply_is_faster_on_the_array_kernel():
    seconds = {}
    nodes = {}
    for backend in available_backends():
        manager = create_manager(backend=backend)
        left = _inner_product(manager)
        right = _inner_product(manager, shift=5)
        result, seconds[backend] = _timed(manager.apply, "and", left, right)
        nodes[backend] = result.node_count()
        RECORD.record(
            f"apply ip{IP_HALF}-and {backend}",
            seconds=seconds[backend],
            bdd_nodes=nodes[backend],
        )
    assert nodes["array"] == nodes["reference"], "same reduced result"
    speedup = seconds["reference"] / seconds["array"]
    RECORD.record(f"apply ip{IP_HALF}-and speedup", speedup=round(speedup, 2))
    assert speedup >= APPLY_SPEEDUP, (
        f"array apply is only {speedup:.1f}x faster "
        f"({seconds['reference']:.3f}s -> {seconds['array']:.3f}s); "
        f"the gate is {APPLY_SPEEDUP}x"
    )


# ---------------------------------------------------------------------------
# 3. end-to-end sweeps: recorded honestly, no speedup gate
# ---------------------------------------------------------------------------

def test_pipeline_sweeps_record_both_backends():
    for length in (8, 12):
        _components, composition = pipeline_network(length)
        seconds = {}
        for backend in available_backends():
            lts, seconds[backend] = _timed(
                build_lts_compiled, composition, max_states=512, backend=backend
            )
            RECORD.record(
                f"pipeline_{length} compile+sweep {backend}",
                seconds=seconds[backend],
                states=lts.state_count(),
                transitions=lts.transition_count(),
            )
        RECORD.record(
            f"pipeline_{length} compile+sweep speedup",
            speedup=round(seconds["reference"] / seconds["array"], 2),
        )
        # no speedup gate — at pipeline_8 the run is dominated by non-BDD
        # work and parity is expected — but the array kernel must never make
        # the end-to-end path pathologically slower
        assert seconds["array"] <= seconds["reference"] * 2 + 0.05, (
            f"array backend regressed the pipeline_{length} sweep: "
            f"{seconds['reference']:.3f}s -> {seconds['array']:.3f}s"
        )
