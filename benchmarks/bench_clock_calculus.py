"""E5 / E6 / E7 / E8 — the clock calculus on the buffer, regenerated and timed.

Each benchmark re-runs one stage of the Polychrony pipeline on the paper's
buffer and re-asserts the facts the paper derives from it: the clock
relations and classes of Section 3.2, the hierarchy of Section 3.3, the
disjunctive form of Section 3.4 and the scheduling graph of Section 3.5.
"""

from _record import recorder, timed

from repro.clocks.algebra import ClockAlgebra
from repro.clocks.disjunctive import to_disjunctive_form
from repro.clocks.hierarchy import build_hierarchy
from repro.clocks.inference import infer_timing_relations

RECORD = recorder("clock_calculus")
from repro.lang.ast import ClockBinary, ClockFalse, ClockOf, ClockTrue
from repro.properties.compilable import ProcessAnalysis
from repro.sched.closure import is_acyclic
from repro.sched.graph import SchedulingGraph
from repro.sched.reinforce import reinforce
from repro.sched.serialize import sequential_schedule


def test_buffer_clock_inference(benchmark, paper_processes):
    """E5: infer the buffer's clock relations (four equations in the paper)."""
    process = paper_processes["buffer"]
    relations = benchmark(infer_timing_relations, process)
    assert len(relations.clock_relations) >= 4
    _relations, seconds = timed(infer_timing_relations, process)
    RECORD.record("buffer clock inference", seconds=seconds)


def test_buffer_clock_classes(benchmark, paper_processes):
    """E5: the three clock equivalence classes of the buffer."""
    process = paper_processes["buffer"]
    relations = infer_timing_relations(process)

    def classify():
        algebra = ClockAlgebra(process, relations)
        master = algebra.entails_equal(ClockOf("buffer_s"), ClockOf("buffer_r"))
        x_class = algebra.entails_equal(ClockOf("x"), ClockTrue("buffer_t"))
        y_class = algebra.entails_equal(ClockOf("y"), ClockFalse("buffer_t"))
        deduced = algebra.entails_equal(
            ClockOf("buffer_r"), ClockBinary("or", ClockOf("x"), ClockOf("y"))
        )
        return master, x_class, y_class, deduced

    results = benchmark(classify)
    assert all(results)


def test_buffer_hierarchy_construction(benchmark, paper_processes):
    """E6: the buffer's hierarchy — a single root above [t]~x^ and [¬t]~y^."""
    process = paper_processes["buffer"]
    relations = infer_timing_relations(process)
    hierarchy = benchmark(build_hierarchy, process, relations)
    _hierarchy, seconds = timed(build_hierarchy, process, relations)
    RECORD.record("buffer hierarchy", seconds=seconds)
    assert hierarchy.is_hierarchic()
    assert hierarchy.same_class(ClockOf("x"), ClockTrue("buffer_t"))
    assert hierarchy.same_class(ClockOf("y"), ClockFalse("buffer_t"))


def test_buffer_disjunctive_form(benchmark, paper_processes):
    """E7: eliminate the symmetric difference introduced by ``current``."""
    process = paper_processes["buffer"]
    relations = infer_timing_relations(process)
    result = benchmark(to_disjunctive_form, process, relations)
    assert result.is_disjunctive()


def test_buffer_scheduling_graph(benchmark, paper_processes):
    """E8: reinforced scheduling graph, acyclicity and serialization."""
    process = paper_processes["buffer"]

    def schedule():
        analysis = ProcessAnalysis(process)
        graph = reinforce(analysis.scheduling_graph, analysis.disjunctive.relations)
        assert is_acyclic(graph)
        return sequential_schedule(graph, analysis.hierarchy)

    order = benchmark(schedule)
    assert len(order) == 2 * len(process.all_signals())


def test_full_analysis_pipeline_ltta(benchmark, paper_processes):
    """The complete pipeline on the largest process of the paper (the LTTA reader+bus+writer)."""

    def analyse():
        results = {}
        for key in ("ltta_writer", "ltta_bus_stage1", "ltta_bus_stage2", "ltta_reader"):
            analysis = ProcessAnalysis(paper_processes[key])
            results[key] = (analysis.is_compilable(), analysis.is_hierarchic())
        return results

    results = benchmark(analyse)
    assert all(compilable and hierarchic for compilable, hierarchic in results.values())
