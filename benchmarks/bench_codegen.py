"""E9 / E14 — code-generation and generated-code execution throughput.

Benchmarks the cost of generating step functions (the compilation time the
paper's methodology is designed to keep low by reusing Polychrony's existing
pipeline) and the runtime throughput of the generated code compared with the
interpreter on the same process, which quantifies what the sequential scheme
buys over direct interpretation.
"""

from _record import recorder, timed

from repro.codegen.runtime import StreamIO
from repro.codegen.sequential import compile_process
from repro.semantics.interpreter import SignalInterpreter

RECORD = recorder("codegen")

STREAM_LENGTH = 256


def test_compile_buffer(benchmark, paper_processes):
    compiled = benchmark(compile_process, paper_processes["buffer"])
    assert "buffer_iterate" in compiled.python_source
    _compiled, seconds = timed(compile_process, paper_processes["buffer"])
    RECORD.record("compile buffer", seconds=seconds)


def test_compile_filter(benchmark, paper_processes):
    compiled = benchmark(compile_process, paper_processes["filter"])
    assert "filter_iterate" in compiled.python_source


def test_generated_buffer_throughput(benchmark, paper_processes):
    compiled = compile_process(paper_processes["buffer"])
    values = list(range(STREAM_LENGTH))

    def run():
        compiled.reset()
        io = StreamIO({"y": list(values)})
        compiled.run(io)
        return io.output("x")

    outputs = benchmark(run)
    assert outputs == values
    _outputs, seconds = timed(run)
    RECORD.record(f"generated buffer x{STREAM_LENGTH}", seconds=seconds)


def test_interpreted_buffer_throughput(benchmark, paper_processes):
    """Baseline: the same workload through the interpreter (expected slower)."""
    from repro.semantics.interpreter import ABSENT

    process = paper_processes["buffer"]
    values = list(range(STREAM_LENGTH))

    def run():
        interpreter = SignalInterpreter(process)
        outputs = []
        for value in values:
            interpreter.step({"y": value})
            result = interpreter.step({"y": ABSENT}, assume={"buffer_t": True})
            outputs.append(result.value("x"))
        return outputs

    outputs = benchmark(run)
    assert outputs == values


def test_generated_filter_throughput(benchmark, paper_processes):
    compiled = compile_process(paper_processes["filter"])
    stream = [bool(index % 3 == 0) for index in range(STREAM_LENGTH)]

    def run():
        compiled.reset()
        io = StreamIO({"y": list(stream)})
        compiled.run(io)
        return io.output("x")

    outputs = benchmark(run)
    assert len(outputs) > 0
