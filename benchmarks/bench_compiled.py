"""F-CMP — the compiled reaction engine: solve for reactions, don't guess.

Every checker bottoms out in per-state reaction enumeration.  The eager
engine (:func:`repro.mc.transition.build_lts`) guesses: it enumerates all
``2·3^n`` candidate activations of an ``n``-input process per state and
runs the full interpreter on each.  The compiled engine
(:mod:`repro.mc.compiled`) solves: the equations are compiled once into a
BDD step relation and each state's admissible reactions are read off by an
output-sensitive satisfying-assignment walk — cost proportional to the
number of *reactions*, not candidates, and zero interpreter calls.

Scenarios pinned here:

1. *The ≥10× acceptance gate* — on a relay pipeline with 8 boolean
   activation inputs, the compiled exploration (compile time included) is
   at least 10× faster than the eager engine, with zero interpreter
   evaluations on the per-state path.
2. *Exponential → output-sensitive transition* — sweeping the input count
   ``n``, the eager cost grows with the ``3^n`` candidate space while the
   compiled cost tracks the (linearly growing) number of admissible
   reactions; the recorded JSON shows the crossover.
3. *Stateful workload* — on a buffer chain (hundreds of reachable states),
   the per-state win repeats at every state and dominates the one-off
   compile cost.

Run with:  pytest benchmarks/bench_compiled.py --benchmark-only
(the timing assertions also run in the plain suite; CI uploads the JSON)
"""

from __future__ import annotations

import time

from _record import recorder

from repro.library.generators import chain_of_buffers, pipeline_network
from repro.mc.compiled import CompiledAbstraction, build_lts_compiled
from repro.mc.transition import build_lts
from repro.semantics import interpreter

RECORD = recorder("compiled")

#: the acceptance scenario: ≥ 4 boolean inputs required, 8 provided
ACCEPTANCE_SIZE = 8
#: required end-to-end advantage of the compiled engine on that scenario
ACCEPTANCE_SPEEDUP = 10.0


# ---------------------------------------------------------------------------
# 1. the ≥10× acceptance gate
# ---------------------------------------------------------------------------

def test_compiled_is_10x_faster_with_zero_interpreter_calls():
    _components, composition = pipeline_network(ACCEPTANCE_SIZE)
    boolean_inputs = [
        name for name in composition.inputs if composition.types.get(name) == "bool"
    ]
    assert len(boolean_inputs) >= 4

    start = time.perf_counter()
    eager = build_lts(composition, max_states=512)
    eager_seconds = time.perf_counter() - start

    interpreter.reset_evaluation_count()
    start = time.perf_counter()
    compiled = build_lts_compiled(composition, max_states=512)
    compiled_seconds = time.perf_counter() - start
    evaluations = interpreter.evaluation_count()

    assert evaluations == 0, "the compiled path must never call the interpreter"
    assert set(eager.states) == set(compiled.states)
    assert {(t.source, t.reaction, t.target) for t in eager.transitions} == {
        (t.source, t.reaction, t.target) for t in compiled.transitions
    }
    RECORD.record(
        f"pipeline_{ACCEPTANCE_SIZE} eager",
        seconds=eager_seconds,
        states=eager.state_count(),
        transitions=eager.transition_count(),
    )
    RECORD.record(
        f"pipeline_{ACCEPTANCE_SIZE} compiled",
        seconds=compiled_seconds,
        states=compiled.state_count(),
        transitions=compiled.transition_count(),
        interpreter_evaluations=evaluations,
    )
    assert compiled_seconds * ACCEPTANCE_SPEEDUP < eager_seconds, (
        f"compiled {compiled_seconds:.4f}s vs eager {eager_seconds:.4f}s "
        f"(need ≥{ACCEPTANCE_SPEEDUP:.0f}×)"
    )


# ---------------------------------------------------------------------------
# 2. exponential → output-sensitive transition over the input count
# ---------------------------------------------------------------------------

def test_input_count_sweep_shows_output_sensitivity():
    """Eager cost follows the 3^n candidate space; compiled cost the reactions.

    The recorded entries make the transition visible across PRs; the
    assertion pins its direction: growing n by two (9× more candidates)
    must grow the eager/compiled advantage.
    """
    advantages = {}
    for size in (4, 6, 8):
        _components, composition = pipeline_network(size)

        start = time.perf_counter()
        eager = build_lts(composition, max_states=512)
        eager_seconds = time.perf_counter() - start

        start = time.perf_counter()
        abstraction = CompiledAbstraction(composition)
        compile_seconds = time.perf_counter() - start
        start = time.perf_counter()
        reactions = abstraction.reactions(abstraction.initial_state())
        enumerate_seconds = time.perf_counter() - start

        candidates = 2 * 3 ** size  # the eager engine's per-state guesses
        RECORD.record(
            f"pipeline_{size} per-state",
            seconds=enumerate_seconds,
            bdd_nodes=abstraction.bdd_nodes(),
            eager_seconds=round(eager_seconds, 6),
            compile_seconds=round(compile_seconds, 6),
            candidates=candidates,
            reactions=len(reactions),
        )
        assert len(reactions) == eager.transition_count()
        advantages[size] = eager_seconds / max(
            compile_seconds + enumerate_seconds, 1e-9
        )
    assert advantages[8] > advantages[6] > 1.0, advantages


# ---------------------------------------------------------------------------
# 3. stateful workload: the per-state win repeats at every state
# ---------------------------------------------------------------------------

def test_stateful_workload_amortizes_compilation():
    _components, composition = chain_of_buffers(4)

    start = time.perf_counter()
    eager = build_lts(composition, max_states=512)
    eager_seconds = time.perf_counter() - start

    start = time.perf_counter()
    compiled = build_lts_compiled(composition, max_states=512)
    compiled_seconds = time.perf_counter() - start

    assert set(eager.states) == set(compiled.states)
    assert eager.state_count() > 100  # a genuinely stateful exploration
    RECORD.record(
        "buffer_chain_4 eager", seconds=eager_seconds, states=eager.state_count()
    )
    RECORD.record(
        "buffer_chain_4 compiled", seconds=compiled_seconds, states=compiled.state_count()
    )
    assert compiled_seconds < eager_seconds, (
        f"compiled {compiled_seconds:.3f}s vs eager {eager_seconds:.3f}s"
    )


def test_compiled_bench_probe(benchmark):
    """pytest-benchmark probe: compile + explore the acceptance pipeline."""
    _components, composition = pipeline_network(ACCEPTANCE_SIZE)

    def explore():
        return build_lts_compiled(composition, max_states=512)

    lts = benchmark(explore)
    assert lts.transition_count() > 0
