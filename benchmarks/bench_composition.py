"""E12 / E13 / E14 / E16 — the compositional schemes of Sections 4.2 and 5, regenerated and timed.

* the LTTA criterion (four endochronous devices, isochronous composition);
* the producer/consumer criterion with its reported constraint ``[¬a] = [b]``;
* sequential code generation for the three schemes (master clocks, controller,
  concurrent threads) and their execution on the paper's input pattern.

All scenarios go through the :class:`repro.Design` facade.  Criterion
benchmarks build a fresh session per round (measuring the real cost of the
static analysis); the execution benchmarks reuse one session, whose cached
analyses are exactly what the deployment schemes share in practice.
"""

from _record import recorder, timed

from repro import Design

RECORD = recorder("composition")

INPUTS = {"a": [True, False, True, False], "b": [False, True, False, True]}
EXPECTED_U = [1, 2]
EXPECTED_V = [1, 2, 3, 5]


def test_ltta_criterion(benchmark, paper_processes):
    """E12: the LTTA's four devices pass the weakly hierarchic criterion."""
    components = [
        paper_processes["ltta_writer"],
        paper_processes["ltta_bus_stage1"],
        paper_processes["ltta_bus_stage2"],
        paper_processes["ltta_reader"],
    ]

    def criterion():
        return Design(name="ltta", components=components).verify("weakly-hierarchic")

    verdict = benchmark(criterion)
    assert verdict.holds
    assert not verdict.report.endochronous_composition()
    _verdict, seconds = timed(criterion)
    RECORD.record("ltta criterion", seconds=seconds)


def test_producer_consumer_criterion(benchmark, paper_processes):
    """E13/E14: the criterion on producer|consumer reports the constraint [¬a] = [b]."""
    components = [paper_processes["pc_producer"], paper_processes["pc_consumer"]]

    def criterion():
        return Design(name="main", components=components).verify("weakly-hierarchic")

    verdict = benchmark(criterion)
    assert verdict.holds
    assert any("[¬a]" in c and "[b]" in c for c in verdict.report.reported_constraints)
    _verdict, seconds = timed(criterion)
    RECORD.record("producer/consumer criterion", seconds=seconds)


def test_sequential_code_generation(benchmark, paper_processes):
    """E9/E13: generating the step functions of the paper's processes."""

    def generate():
        return (
            Design.from_process(paper_processes["buffer"]).compile("sequential"),
            Design.from_process(paper_processes["pc_producer"]).compile("sequential"),
            Design.from_process(paper_processes["pc_consumer"]).compile("sequential"),
            Design.from_process(paper_processes["pc_main"]).compile(
                "sequential", master_clocks=True
            ),
        )

    deployments = benchmark(generate)
    assert all(deployment.compiled.python_source for deployment in deployments)


def test_master_clock_scheme_execution(benchmark, paper_processes):
    """E13: Section 5.1's scheme (master clocks C_a, C_b) on the paper's input pattern."""
    deployment = Design.from_process(paper_processes["pc_main"]).compile(
        "sequential", master_clocks=True
    )

    def run():
        return deployment.run(
            {
                "C_a": [True] * 4,
                "C_b": [True] * 4,
                "a": list(INPUTS["a"]),
                "b": list(INPUTS["b"]),
            }
        )

    flows = benchmark(run)
    assert flows["u"] == EXPECTED_U
    assert flows["v"] == EXPECTED_V


def test_controller_scheme_execution(benchmark, paper_processes):
    """E14: Section 5.2's synthesized controller on the same input pattern."""
    design = Design(
        name="main",
        components=[paper_processes["pc_producer"], paper_processes["pc_consumer"]],
    )
    deployment = design.compile("controlled")

    def run():
        return deployment.run({name: list(values) for name, values in INPUTS.items()})

    flows = benchmark(run)
    assert flows["u"] == EXPECTED_U
    assert flows["v"] == EXPECTED_V


def test_concurrent_scheme_execution(benchmark, paper_processes):
    """E16: the thread + barrier variant produces the same flows."""
    design = Design(
        name="main",
        components=[paper_processes["pc_producer"], paper_processes["pc_consumer"]],
    )
    deployment = design.compile("concurrent")

    def run():
        return deployment.run(INPUTS)

    flows = benchmark(run)
    assert flows["u"] == EXPECTED_U
    assert flows["v"] == EXPECTED_V
