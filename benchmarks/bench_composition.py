"""E12 / E13 / E14 / E16 — the compositional schemes of Sections 4.2 and 5, regenerated and timed.

* the LTTA criterion (four endochronous devices, isochronous composition);
* the producer/consumer criterion with its reported constraint ``[¬a] = [b]``;
* sequential code generation for the three schemes (master clocks, controller,
  concurrent threads) and their execution on the paper's input pattern.
"""

from repro.codegen.concurrent import run_concurrent
from repro.codegen.controller import synthesize_controller
from repro.codegen.runtime import StreamIO
from repro.codegen.sequential import compile_process
from repro.properties.compilable import ProcessAnalysis
from repro.properties.composition import check_weakly_hierarchic

INPUTS = {"a": [True, False, True, False], "b": [False, True, False, True]}
EXPECTED_U = [1, 2]
EXPECTED_V = [1, 2, 3, 5]


def test_ltta_criterion(benchmark, paper_processes):
    """E12: the LTTA's four devices pass the weakly hierarchic criterion."""
    components = [
        paper_processes["ltta_writer"],
        paper_processes["ltta_bus_stage1"],
        paper_processes["ltta_bus_stage2"],
        paper_processes["ltta_reader"],
    ]
    verdict = benchmark(check_weakly_hierarchic, components, None, "ltta")
    assert verdict.weakly_hierarchic()
    assert not verdict.endochronous_composition()


def test_producer_consumer_criterion(benchmark, paper_processes):
    """E13/E14: the criterion on producer|consumer reports the constraint [¬a] = [b]."""
    components = [paper_processes["pc_producer"], paper_processes["pc_consumer"]]
    verdict = benchmark(check_weakly_hierarchic, components, None, "main")
    assert verdict.weakly_hierarchic()
    assert any("[¬a]" in c and "[b]" in c for c in verdict.reported_constraints)


def test_sequential_code_generation(benchmark, paper_processes):
    """E9/E13: generating the step functions of the paper's processes."""

    def generate():
        return (
            compile_process(paper_processes["buffer"]),
            compile_process(paper_processes["pc_producer"]),
            compile_process(paper_processes["pc_consumer"]),
            compile_process(ProcessAnalysis(paper_processes["pc_main"]), master_clocks=True),
        )

    compiled = benchmark(generate)
    assert all(item.python_source for item in compiled)


def test_master_clock_scheme_execution(benchmark, paper_processes):
    """E13: Section 5.1's scheme (master clocks C_a, C_b) on the paper's input pattern."""
    compiled = compile_process(ProcessAnalysis(paper_processes["pc_main"]), master_clocks=True)

    def run():
        compiled.reset()
        io = StreamIO(
            {
                "C_a": [True] * 4,
                "C_b": [True] * 4,
                "a": list(INPUTS["a"]),
                "b": list(INPUTS["b"]),
            }
        )
        compiled.run(io)
        return io

    io = benchmark(run)
    assert io.output("u") == EXPECTED_U
    assert io.output("v") == EXPECTED_V


def test_controller_scheme_execution(benchmark, paper_processes):
    """E14: Section 5.2's synthesized controller on the same input pattern."""
    producer = compile_process(paper_processes["pc_producer"])
    consumer = compile_process(paper_processes["pc_consumer"])
    verdict = check_weakly_hierarchic(
        [paper_processes["pc_producer"], paper_processes["pc_consumer"]], composition_name="main"
    )
    controlled = synthesize_controller([producer, consumer], verdict)

    def run():
        controlled.reset()
        io = StreamIO({name: list(values) for name, values in INPUTS.items()})
        controlled.run(io)
        return io

    io = benchmark(run)
    assert io.output("u") == EXPECTED_U
    assert io.output("v") == EXPECTED_V


def test_concurrent_scheme_execution(benchmark, paper_processes):
    """E16: the thread + barrier variant produces the same flows."""
    producer = compile_process(paper_processes["pc_producer"])
    consumer = compile_process(paper_processes["pc_consumer"])
    verdict = check_weakly_hierarchic(
        [paper_processes["pc_producer"], paper_processes["pc_consumer"]], composition_name="main"
    )
    controlled = synthesize_controller([producer, consumer], verdict)

    def run():
        producer.reset()
        consumer.reset()
        return run_concurrent([producer, consumer], controlled.constraints, INPUTS)

    outputs = benchmark(run)
    assert outputs.get("u") == EXPECTED_U
    assert outputs.get("v") == EXPECTED_V
