"""Fleet-scale deployment execution: the runtime-tier gates.

Measures reactions per second for the four execution tiers behind
``Design.compile`` — the per-op ``interpreter``, the generated ``compiled``
step function, the closure-``specialized`` tier and the numpy ``batched``
fleet runtime — on the eight-stage pipeline workload, and pins the two
throughput gates plus the batched-vs-scalar identity contract:

* ``specialized`` must reach >= 3x the ``interpreter`` reactions/s on the
  pipeline_8-class design;
* ``batched`` must reach >= 10x the per-instance throughput of scalar
  ``specialized`` at 1024 instances on the 32-stage derivative chain (a
  deep single-clock dataflow whose values stay bounded, so no lane ever
  leaves the int64 fragment);
* batched outputs must be byte-identical to scalar outputs across the
  committed corpus seeds (vectorized lanes and fallback lanes alike).

Cold numbers (compile) and warm numbers (run on an already-compiled
deployment) are recorded separately in ``BENCH_deploy.json``.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from _record import recorder, timed

from repro import Design
from repro.codegen.batch import numpy_available
from repro.codegen.sequential import CodeGenerationError, build_step_program
from repro.gen.topologies import pipeline_network, sample_design
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_true

RECORD = recorder("deploy")

STAGES = 8
STEPS = 512
FLEET = 1024
FLEET_STEPS = 256
CHAIN = 32
CORPUS = Path(__file__).resolve().parent.parent / "corpus" / "corpus.json"


@pytest.fixture(scope="module")
def pipeline_design():
    components, _ = pipeline_network(STAGES)
    return Design(name="pipeline_8", components=list(components))


def derivative_chain(stages):
    """A deep single-clock dataflow whose values stay bounded.

    ``u1`` counts the clock ticks and each ``g_i`` takes the finite
    difference of the previous stage, so every signal's magnitude is bounded
    by a small constant no matter how long the run — the fleet workload
    exercises ``stages`` compute/update pairs per reaction without ever
    approaching the int64 guard.
    """
    builder = ProcessBuilder("deriv", inputs=["c"], outputs=[f"g{stages}"])
    builder.local("u1")
    builder.constrain(tick("u1"), when_true("c"))
    builder.define("u1", const(1) + signal("u1").pre(0))
    previous = "u1"
    for index in range(1, stages + 1):
        name = f"g{index}"
        if index < stages:
            builder.local(name)
        builder.define(name, signal(previous) - signal(previous).pre(0))
        previous = name
    return builder.build()


@pytest.fixture(scope="module")
def chain_design():
    return Design(name=f"deriv_{CHAIN}", components=[derivative_chain(CHAIN)])


def _pipeline_feed(deployment, steps, offset=0):
    feed = {"x0": [offset + index for index in range(steps)]}
    for index in range(STAGES):
        feed[f"c{index}"] = [True] * steps
    for name in deployment.master_clock_inputs:
        feed[name] = [True] * steps
    return feed


def _best_of(repeats, function, *args):
    result, best = None, None
    for _ in range(repeats):
        result, seconds = timed(function, *args)
        best = seconds if best is None else min(best, seconds)
    return result, best


def test_runtime_tier_reactions_per_second(pipeline_design):
    """Cold compile + warm run per tier; gate: specialized >= 3x interpreter."""
    throughput = {}
    reference = None
    for runtime in ("interpreter", "compiled", "specialized"):
        deployment, cold = timed(
            pipeline_design.compile, "sequential", runtime=runtime, master_clocks=True
        )
        feed = _pipeline_feed(deployment, STEPS)
        flows, warm = _best_of(3, deployment.run, feed)
        assert flows[f"x{STAGES}"][0] == STAGES  # 0 bumped once per stage
        if reference is None:
            reference = flows
        else:
            assert flows == reference  # every tier produces the same flows
        throughput[runtime] = STEPS / warm
        RECORD.record(
            f"pipeline_{STAGES} {runtime} x{STEPS}",
            seconds=warm,
            compile_seconds=round(cold, 6),
            reactions_per_second=round(STEPS / warm, 1),
        )
    ratio = throughput["specialized"] / throughput["interpreter"]
    RECORD.record(
        "gate specialized vs interpreter",
        speedup=round(ratio, 2),
        threshold=3.0,
    )
    assert ratio >= 3.0, (
        f"specialized tier reached only {ratio:.2f}x the interpreter "
        f"reactions/s on pipeline_{STAGES} (gate: 3x)"
    )


@pytest.mark.skipif(not numpy_available(), reason="batched tier requires numpy")
def test_batched_fleet_throughput(chain_design):
    """Gate: batched >= 10x per-instance over scalar specialized at 1024 lanes."""
    batched, cold = timed(chain_design.compile, "sequential", runtime="batched")
    assert batched.vectorized, "the chain must be inside the vectorizable fragment"
    scalar = chain_design.compile("sequential", runtime="specialized")
    instances = [{"c": [True] * FLEET_STEPS} for _ in range(FLEET)]

    fleet, batched_seconds = _best_of(3, batched.run_many, instances)
    assert fleet.vectorized == FLEET and fleet.fallback == 0

    def scalar_sweep():
        return [scalar.run(feed) for feed in instances]

    scalar_outputs, scalar_seconds = _best_of(2, scalar_sweep)
    assert fleet.outputs == scalar_outputs  # byte-identical at 1024 instances

    speedup = scalar_seconds / batched_seconds
    per_instance = batched_seconds / FLEET
    RECORD.record(
        f"batched deriv_{CHAIN} fleet x{FLEET} ({FLEET_STEPS} steps)",
        seconds=batched_seconds,
        compile_seconds=round(cold, 6),
        per_instance_seconds=round(per_instance, 8),
        reactions_per_second=round(FLEET * FLEET_STEPS / batched_seconds, 1),
    )
    RECORD.record(
        f"scalar deriv_{CHAIN} sweep x{FLEET} ({FLEET_STEPS} steps)",
        seconds=scalar_seconds,
        reactions_per_second=round(FLEET * FLEET_STEPS / scalar_seconds, 1),
    )
    RECORD.record(
        "gate batched vs scalar per-instance",
        speedup=round(speedup, 2),
        threshold=10.0,
        instances=FLEET,
    )
    assert speedup >= 10.0, (
        f"batched runtime reached only {speedup:.2f}x scalar specialized "
        f"per-instance throughput at {FLEET} instances (gate: 10x)"
    )


@pytest.mark.skipif(not numpy_available(), reason="batched tier requires numpy")
def test_batched_pipeline_fleet(pipeline_design):
    """Recorded (ungated): the read-heavy pipeline fleet, 17 input streams."""
    batched = pipeline_design.compile(
        "sequential", runtime="batched", master_clocks=True
    )
    assert batched.vectorized
    scalar = pipeline_design.compile(
        "sequential", runtime="specialized", master_clocks=True
    )
    instances = [
        _pipeline_feed(batched, FLEET_STEPS, offset=lane) for lane in range(FLEET)
    ]
    fleet, batched_seconds = _best_of(2, batched.run_many, instances)
    assert fleet.vectorized == FLEET and fleet.fallback == 0
    scalar_outputs, scalar_seconds = timed(
        lambda: [scalar.run(feed) for feed in instances]
    )
    assert fleet.outputs == scalar_outputs
    RECORD.record(
        f"batched pipeline_{STAGES} fleet x{FLEET} ({FLEET_STEPS} steps)",
        seconds=batched_seconds,
        speedup=round(scalar_seconds / batched_seconds, 2),
        reactions_per_second=round(FLEET * FLEET_STEPS / batched_seconds, 1),
    )


def _corpus_seeds():
    if not CORPUS.exists():  # pragma: no cover - corpus is committed
        return []
    payload = json.loads(CORPUS.read_text(encoding="utf-8"))
    return sorted({entry["seed"] for entry in payload.get("entries", [])})


def _feed_for(program, master_clock_inputs, rng, steps):
    feed = {}
    for name in program.inputs:
        if name in master_clock_inputs or program.types.get(name) == "bool":
            feed[name] = [rng.random() < 0.7 for _ in range(steps)]
        else:
            feed[name] = [rng.randrange(0, 64) for _ in range(steps)]
    return feed


@pytest.mark.skipif(not numpy_available(), reason="batched tier requires numpy")
def test_corpus_batched_identical_to_scalar():
    """Identity contract: batched == scalar on every committed corpus seed."""
    seeds = _corpus_seeds()
    assert seeds, "committed corpus must provide at least one seed"
    compared = vectorized = fallback = skipped = 0
    elapsed = 0.0
    for seed in seeds:
        generated = sample_design(seed)
        design = Design(name=generated.name, components=list(generated.components))
        try:
            batched = design.compile("sequential", runtime="batched")
            master_clocks = False
        except CodeGenerationError:
            try:
                batched = design.compile(
                    "sequential", runtime="batched", master_clocks=True
                )
                master_clocks = True
            except CodeGenerationError:
                skipped += 1  # not hierarchic even with a master clock
                continue
        program = build_step_program(
            design.analysis, master_clocks=master_clocks, check_compilable=False
        )
        rng = random.Random(seed)
        lanes = [
            _feed_for(program, batched.master_clock_inputs, rng, rng.randrange(0, 24))
            for _ in range(6)
        ]
        scalar = design.compile(
            "sequential", runtime="specialized", master_clocks=master_clocks
        )
        try:
            expected = [scalar.run(lane) for lane in lanes]
        except Exception:
            # random feeds can violate the design's clock constraints, which
            # crashes every scalar tier identically; the identity contract is
            # "wherever scalar completes, batched matches", so skip
            skipped += 1
            continue
        fleet, seconds = timed(batched.run_many, lanes)
        elapsed += seconds
        assert fleet.outputs == expected, generated.name
        compared += 1
        vectorized += fleet.vectorized
        fallback += fleet.fallback
    assert compared > 0 and vectorized > 0  # the sweep exercised the numpy path
    RECORD.record(
        "corpus batched identity sweep",
        seconds=elapsed,
        designs=compared,
        skipped=skipped,
        vectorized_lanes=vectorized,
        fallback_lanes=fallback,
    )
