"""F-FLT — the price of fault tolerance: rejection is cheap, checksums are free.

Two gates on the machinery the chaos suite exercises:

1. *Overload rejection* — admission control exists so an overloaded service
   spends almost nothing on the queries it turns away.  **Gate: one typed
   ``ServiceOverloaded`` rejection is ≥ 100× cheaper than computing the
   query cold.**
2. *Checksummed reads* — every artifact read verifies a SHA-256 envelope
   before parsing.  **Gate: warm reads stay within 10% of the plain
   (pre-envelope) format**, so integrity protection does not erode the
   store's warm-start advantage.

Run with:  pytest benchmarks/bench_faults.py
(the assertions also run in the plain suite; CI uploads the JSON)
"""

from __future__ import annotations

import asyncio
import json
import shutil
import tempfile
import time

from _record import recorder, timed

from repro.library.generators import pipeline_network
from repro.service import ArtifactStore, ServiceOverloaded, VerificationService

RECORD = recorder("faults")

#: admission-control rejections measured per run
REJECTIONS = 200
#: required cold-compute-to-rejection cost ratio
REJECTION_ADVANTAGE = 100.0
#: store reads per repetition, best of REPEATS repetitions
READS = 2000
REPEATS = 5
#: allowed warm-read slowdown from the integrity envelope
CHECKSUM_OVERHEAD = 0.10


def test_overload_rejection_is_100x_cheaper_than_cold_compute():
    # the cost being avoided: one cold computation of the query
    _components, composition = pipeline_network(6)
    cold = VerificationService()
    digest = cold.register([composition], name=composition.name)
    verdict, cold_seconds = timed(
        cold.verify_blocking, digest, "non-blocking", method="compiled"
    )
    assert verdict["holds"]
    cold.close()

    # max_inflight=0: every query that would compute is refused on arrival
    service = VerificationService(max_inflight=0, max_queue=0)
    _rebuilt_components, rebuilt = pipeline_network(6)
    rejected_digest = service.register([rebuilt], name=rebuilt.name)

    async def hammer() -> int:
        refused = 0
        for _ in range(REJECTIONS):
            try:
                await service.verify(rejected_digest, "non-blocking", method="compiled")
            except ServiceOverloaded as rejection:
                assert rejection.retry_after > 0
                refused += 1
        return refused

    start = time.perf_counter()
    refused = asyncio.run(hammer())
    elapsed = time.perf_counter() - start
    assert refused == REJECTIONS
    assert service.rejected == REJECTIONS
    assert service.computations == 0
    service.close()

    per_rejection = elapsed / REJECTIONS
    RECORD.record(
        f"{REJECTIONS} overload rejections vs one cold pipeline_6 compute",
        seconds=elapsed,
        per_rejection_seconds=round(per_rejection, 9),
        cold_seconds=round(cold_seconds, 6),
        advantage=round(cold_seconds / max(per_rejection, 1e-12)),
    )
    assert per_rejection * REJECTION_ADVANTAGE <= cold_seconds, (
        f"a rejection costs {per_rejection * 1e6:.1f}µs — less than "
        f"{REJECTION_ADVANTAGE:.0f}× under the {cold_seconds:.4f}s cold compute"
    )


def test_checksummed_reads_stay_within_10_percent_of_plain():
    # a realistic artifact: the size and shape of a stored verdict
    payload = {
        "prop": "non-blocking",
        "holds": True,
        "method": "compiled",
        "diagnostics": [
            {"name": f"clause_{index}", "holds": True, "detail": "x" * 40}
            for index in range(40)
        ],
        "cost": {"states": 4096, "bdd_nodes": 1234},
    }
    digest = "ab" * 32
    checked_root = tempfile.mkdtemp(prefix="repro-bench-checked-")
    plain_root = tempfile.mkdtemp(prefix="repro-bench-plain-")
    try:
        checked = ArtifactStore(checked_root, checksums=True)
        plain = ArtifactStore(plain_root, checksums=False)
        checked.put(digest, "verdict", payload)
        plain.put(digest, "verdict", payload)
        assert checked.get(digest, "verdict") == plain.get(digest, "verdict")

        def read_loop(store: ArtifactStore) -> None:
            for _ in range(READS):
                store.get(digest, "verdict")

        checked_seconds = min(timed(read_loop, checked)[1] for _ in range(REPEATS))
        plain_seconds = min(timed(read_loop, plain)[1] for _ in range(REPEATS))
        assert checked.verified >= READS and plain.unverified >= READS

        overhead = checked_seconds / max(plain_seconds, 1e-12) - 1.0
        RECORD.record(
            f"{READS} warm reads, checksummed envelope vs plain object",
            seconds=checked_seconds,
            plain_seconds=round(plain_seconds, 6),
            overhead_percent=round(overhead * 100, 2),
            payload_bytes=len(json.dumps(payload)),
        )
        assert overhead <= CHECKSUM_OVERHEAD, (
            f"envelope verification costs {overhead * 100:.1f}% on warm reads "
            f"(budget {CHECKSUM_OVERHEAD * 100:.0f}%)"
        )
    finally:
        shutil.rmtree(checked_root, ignore_errors=True)
        shutil.rmtree(plain_root, ignore_errors=True)
