"""F-GEN — the scenario generator: designs per second, differential throughput.

Three measured scenarios, each a hard assertion plus a JSON record:

1. *Generation throughput* — seeded designs sampled per second across the
   full family mix (grammar sampling + topology wiring + normalization).
   Generation must never be the bottleneck of a differential run.
2. *Enumeration* — unique-expression enumeration at small depth: the
   memoized enumerator must stay interactive for CLI/corpus use.
3. *Differential throughput* — full 2-property × 4-method verdict matrices
   per second over a seeded matrix: the number CI's differential job
   budget is planned around.

Run with:  pytest benchmarks/bench_gen.py
(the timing assertions also run in the plain suite; CI uploads the JSON)
"""

from __future__ import annotations

from _record import recorder, timed

from repro.gen.differential import run_matrix
from repro.gen.grammar import BOOL, Grammar
from repro.gen.topologies import design_space

RECORD = recorder("gen")

GENERATION_SEEDS = 200
DIFFERENTIAL_SEEDS = 40


def test_generation_throughput():
    designs, seconds = timed(lambda: list(design_space(range(GENERATION_SEEDS))))
    assert len(designs) == GENERATION_SEEDS
    per_second = len(designs) / max(seconds, 1e-9)
    RECORD.record(
        f"sample {GENERATION_SEEDS} designs (all families)",
        seconds=seconds,
        designs=len(designs),
        designs_per_second=round(per_second),
        components=sum(len(design.components) for design in designs),
    )
    assert per_second > 50, f"generation too slow: {per_second:.0f} designs/s"


def test_enumeration_is_interactive():
    # expression counts grow combinatorially with vocabulary size (3 signals
    # at depth 2 already exceed 3M unique expressions), so the interactive
    # benchmark pins the CLI-scale configuration: one signal, depth 2
    grammar = Grammar()
    vocabulary = {"a": "bool"}
    expressions, seconds = timed(grammar.enumerate, BOOL, 2, vocabulary)
    RECORD.record(
        "enumerate bool@sync depth 2 over 1 signal",
        seconds=seconds,
        unique_expressions=len(expressions),
    )
    assert seconds < 30, f"depth-2 enumeration took {seconds:.1f}s"


def test_differential_throughput():
    report, seconds = timed(
        run_matrix, range(DIFFERENTIAL_SEEDS), shrink_disagreements=False
    )
    assert report.designs == DIFFERENTIAL_SEEDS
    assert report.agreed
    per_second = report.designs / max(seconds, 1e-9)
    RECORD.record(
        f"differential matrix over {DIFFERENTIAL_SEEDS} designs "
        "(2 properties x 4 methods)",
        seconds=seconds,
        designs=report.designs,
        designs_per_second=round(per_second, 1),
        formulation_gaps=len(report.gaps),
    )
    # CI runs 200 designs; they must fit comfortably in a job's budget
    assert per_second > 1, f"differential too slow: {per_second:.2f} designs/s"
