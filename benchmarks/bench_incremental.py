"""F-INC — incremental re-verification over the artifact graph.

The scenario the digest-keyed refactor exists for: a compositional
verification sweep over an 8-stage pipeline (per-component weak-endochrony
and non-blocking on the compiled and interpreter engines, plus the static
weakly-hierarchic criterion), three ways:

1. *Cold* — fresh session, empty artifact store: every stage computes (and
   persists — diagnoses, compiled relations, obligations, verdicts).
2. *Edited warm* — one stage of the pipeline is replaced, then the sweep
   re-runs in a fresh session over the warm store.  The 7 untouched stages
   answer from persisted artifacts; only the edited stage's pipeline and
   the composition-level obligations recompute — O(changed component), not
   O(design).  **The acceptance gate: ≥ 5× faster than cold.**
3. *Warm repeat* — the edited sweep again, fresh session, same store: every
   query is one JSON read.

Each stage is an 8-bit boolean shift register (2^8 reachable states — real
per-component model-checking work), chained `s_i → s_{i+1}` so consecutive
stages share a signal: a genuine pipeline, weakly hierarchic by the
criterion.  The per-stage computation counters are asserted alongside the
wall-clock gates, so the benchmark cannot pass by accident.

Run with:  pytest benchmarks/bench_incremental.py
(the assertions also run in CI's `bench-incremental` job; the JSON records
are uploaded as `BENCH_incremental.json`)
"""

from __future__ import annotations

import shutil
import tempfile
import time

from _record import recorder

from repro.api.session import Design
from repro.lang.builder import ProcessBuilder, signal
from repro.lang.normalize import normalize
from repro.service.store import ArtifactStore

RECORD = recorder("incremental")

#: the acceptance scenario and its required edited-warm-over-cold advantage
STAGES = 8
BITS = 9
ACCEPTANCE_SPEEDUP = 5.0
#: exploration bound covering the 2^BITS reachable states of one stage
MAX_STATES = 1024
#: the stage the "edit" replaces
EDIT_INDEX = 4


def _stage(index: int, flavor: str = "plain"):
    """One pipeline stage: an 8-bit shift register from ``s_i`` to ``s_{i+1}``."""
    source, target = f"s{index}", f"s{index + 1}"
    builder = ProcessBuilder(f"stage{index}", inputs=[source], outputs=[target])
    previous = source
    for bit in range(BITS):
        register = f"r{index}_{bit}"
        builder.local(register)
        builder.define(register, signal(previous).pre(False))
        previous = register
    out = signal(previous) if flavor != "negated" else signal(previous).not_()
    builder.define(target, out)
    return normalize(builder.build())


def _session(store_root, edited: bool = False) -> Design:
    """A fresh session (nothing shared in memory) over the given store."""
    design = Design(
        name=f"pipeline_{STAGES}",
        components=[_stage(index) for index in range(STAGES)],
    )
    design.context.artifact_cache = ArtifactStore(store_root)
    if edited:
        design.replace_component(EDIT_INDEX, _stage(EDIT_INDEX, "negated"))
    return design


def _full_verify(design: Design):
    """The compositional sweep: per-component obligations + the criterion."""
    verdicts = design.map_components(
        "weak-endochrony", method="compiled", max_states=MAX_STATES
    )
    verdicts += design.map_components(
        "non-blocking", method="compiled", max_states=MAX_STATES
    )
    verdicts += design.map_components(
        "weak-endochrony", method="explicit", max_states=MAX_STATES
    )
    verdicts.append(design.verify("weakly-hierarchic"))
    return verdicts


def _timed_sweep(design: Design):
    start = time.perf_counter()
    verdicts = _full_verify(design)
    elapsed = time.perf_counter() - start
    assert all(verdict.holds for verdict in verdicts)
    return elapsed


def test_edit_one_stage_reverify_is_5x_faster_warm_than_cold():
    store_root = tempfile.mkdtemp(prefix="repro-bench-incremental-")
    try:
        cold = _session(store_root)
        cold_seconds = _timed_sweep(cold)
        cold_stages = cold.stats()["stages"]
        assert cold_stages["diagnosis"]["computed"] == STAGES
        RECORD.record(
            f"pipeline_{STAGES} cold sweep (analyze + compile + explore + persist)",
            seconds=cold_seconds,
            queries=3 * STAGES + 1,
        )

        # one-component edit, fresh session, warm store
        edited = _session(store_root, edited=True)
        edited_seconds = _timed_sweep(edited)
        stages = edited.stats()["stages"]
        # O(changed component): one diagnosis recomputed, the others read
        # back; analyses only for the edited stage and the new composition
        assert stages["diagnosis"]["computed"] == 1
        assert stages["diagnosis"]["store_hits"] == STAGES - 1
        assert stages["analysis"]["computed"] == 2
        assert stages["obligations"]["computed"] == 1
        RECORD.record(
            f"pipeline_{STAGES} edited warm sweep (1 stage replaced)",
            seconds=edited_seconds,
            cold_seconds=round(cold_seconds, 6),
            speedup=round(cold_seconds / max(edited_seconds, 1e-9), 2),
            recomputed_diagnoses=stages["diagnosis"]["computed"],
        )
        assert edited_seconds * ACCEPTANCE_SPEEDUP < cold_seconds, (
            f"edited warm {edited_seconds:.4f}s vs cold {cold_seconds:.4f}s "
            f"(need ≥{ACCEPTANCE_SPEEDUP:.0f}×)"
        )

        # repeat of the edited sweep: every verdict is one JSON read
        repeat = _session(store_root, edited=True)
        repeat_seconds = _timed_sweep(repeat)
        repeat_stages = repeat.stats()["stages"]
        assert repeat_stages["verdict"]["store_hits"] == 3 * STAGES + 1
        assert "analysis" not in repeat_stages, "no pipeline stage may run"
        RECORD.record(
            f"pipeline_{STAGES} warm repeat of the edited sweep",
            seconds=repeat_seconds,
            cold_seconds=round(cold_seconds, 6),
            speedup=round(cold_seconds / max(repeat_seconds, 1e-9), 2),
        )
        assert repeat_seconds * 25 < cold_seconds
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
