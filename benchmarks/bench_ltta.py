"""E12 — the LTTA simulation: throughput of the four-device architecture.

The writer → bus (two buffers) → reader chain is executed with the
interpreter for a configurable number of transmitted samples; the assertions
re-verify the alternating-bit property (the reader recovers the writer's flow
in order, without duplication) on every round.
"""

from _record import recorder, timed

from repro.semantics.interpreter import ABSENT, SignalInterpreter

RECORD = recorder("ltta")


def run_ltta(components, sample_count):
    writer = SignalInterpreter(components["ltta_writer"])
    stage1 = SignalInterpreter(components["ltta_bus_stage1"])
    stage2 = SignalInterpreter(components["ltta_bus_stage2"])
    reader = SignalInterpreter(components["ltta_reader"])

    received = []
    writer_latch = None
    stage1_latch = None
    stage2_latch = None
    for index in range(sample_count):
        value = 1000 + index
        result = writer.step({"xw": value, "cw": True})
        writer_latch = (result.value("yw"), result.value("bw"))

        stage1.step({"yw": writer_latch[0], "bw": writer_latch[1]})
        emitted = stage1.step({"yw": ABSENT, "bw": ABSENT}, assume={"bus_stage1_t": True})
        stage1_latch = (emitted.value("yb"), emitted.value("bb"))

        stage2.step({"yb": stage1_latch[0], "bb": stage1_latch[1]})
        emitted = stage2.step({"yb": ABSENT, "bb": ABSENT}, assume={"bus_stage2_t": True})
        stage2_latch = (emitted.value("yr"), emitted.value("br"))

        result = reader.step({"yr": stage2_latch[0], "br": stage2_latch[1], "cr": True})
        if result.present("xr"):
            received.append(result.value("xr"))
    return received


def test_ltta_transmission(benchmark, paper_processes):
    """One writer sample per bus/reader cycle: every value is delivered exactly once."""
    received = benchmark(run_ltta, paper_processes, 32)
    assert received == [1000 + index for index in range(32)]
    _received, seconds = timed(run_ltta, paper_processes, 32)
    RECORD.record("ltta transmission x32", seconds=seconds)


def test_ltta_oversampled_reader(benchmark, paper_processes):
    """A reader faster than the writer never duplicates values (alternating bit)."""

    def run(components, sample_count):
        writer = SignalInterpreter(components["ltta_writer"])
        stage1 = SignalInterpreter(components["ltta_bus_stage1"])
        stage2 = SignalInterpreter(components["ltta_bus_stage2"])
        reader = SignalInterpreter(components["ltta_reader"])
        received = []
        for index in range(sample_count):
            result = writer.step({"xw": index, "cw": True})
            latch = (result.value("yw"), result.value("bw"))
            stage1.step({"yw": latch[0], "bw": latch[1]})
            emitted = stage1.step({"yw": ABSENT, "bw": ABSENT}, assume={"bus_stage1_t": True})
            stage2.step({"yb": emitted.value("yb"), "bb": emitted.value("bb")})
            emitted = stage2.step({"yb": ABSENT, "bb": ABSENT}, assume={"bus_stage2_t": True})
            bus_value = (emitted.value("yr"), emitted.value("br"))
            # the reader samples the same bus value twice before the next write
            for _ in range(2):
                result = reader.step({"yr": bus_value[0], "br": bus_value[1], "cr": True})
                if result.present("xr"):
                    received.append(result.value("xr"))
        return received

    received = benchmark(run, paper_processes, 16)
    assert received == list(range(16))
