"""E11 — the cost of model checking weak endochrony (the approach the criterion avoids).

Times the construction of the reaction LTS and the checking of the Section
4.1 invariants, explicitly and symbolically (with the BDD engine standing in
for Sigali), on the paper's two compositions.
"""

from repro.mc.symbolic import SymbolicChecker
from repro.mc.transition import build_lts
from repro.properties.compilable import ProcessAnalysis
from repro.properties.weak_endochrony import check_weak_endochrony, model_check_weak_endochrony


def test_lts_construction_filter_merge(benchmark, paper_processes):
    lts = benchmark(build_lts, paper_processes["composition"])
    assert lts.state_count() >= 2


def test_lts_construction_main(benchmark, paper_processes):
    lts = benchmark(build_lts, paper_processes["pc_main"])
    assert lts.transition_count() >= 4


def test_explicit_invariants_main(benchmark, paper_processes):
    process = paper_processes["pc_main"]
    analysis = ProcessAnalysis(process)
    lts = build_lts(process, analysis.hierarchy)
    report = benchmark(model_check_weak_endochrony, process, analysis, lts)
    assert report.holds()


def test_definition2_check_filter_merge(benchmark, paper_processes):
    process = paper_processes["composition"]
    lts = build_lts(process)
    report = benchmark(check_weak_endochrony, process, lts)
    assert report.holds()


def test_symbolic_reachability_main(benchmark, paper_processes):
    lts = build_lts(paper_processes["pc_main"])

    def explore():
        checker = SymbolicChecker(lts)
        return checker.reachable_count()

    count = benchmark(explore)
    assert count == lts.state_count()


def test_symbolic_reachability_filter_merge(benchmark, paper_processes):
    lts = build_lts(paper_processes["composition"])

    def explore():
        checker = SymbolicChecker(lts)
        return checker.reachable_count()

    count = benchmark(explore)
    assert count == lts.state_count()
