"""E11 — the cost of model checking weak endochrony (the approach the criterion avoids).

Times the construction of the reaction LTS and the checking of the Section
4.1 invariants, explicitly and symbolically (with the BDD engine standing in
for Sigali), on the paper's two compositions.
"""

from _record import recorder, timed

from repro.mc.compiled import build_lts_compiled
from repro.mc.symbolic import SymbolicChecker
from repro.mc.transition import build_lts
from repro.properties.compilable import ProcessAnalysis
from repro.properties.weak_endochrony import check_weak_endochrony, model_check_weak_endochrony

RECORD = recorder("modelcheck")


def test_lts_construction_filter_merge(benchmark, paper_processes):
    lts = benchmark(build_lts, paper_processes["composition"])
    assert lts.state_count() >= 2
    _lts, seconds = timed(build_lts, paper_processes["composition"])
    RECORD.record("build_lts composition", seconds=seconds, states=lts.state_count())


def test_lts_construction_main(benchmark, paper_processes):
    lts = benchmark(build_lts, paper_processes["pc_main"])
    assert lts.transition_count() >= 4
    _lts, seconds = timed(build_lts, paper_processes["pc_main"])
    RECORD.record("build_lts pc_main", seconds=seconds, states=lts.state_count())


def test_compiled_lts_construction_main(benchmark, paper_processes):
    """The compiled counterpart of the eager construction above."""
    lts = benchmark(build_lts_compiled, paper_processes["pc_main"])
    assert lts.transition_count() >= 4
    _lts, seconds = timed(build_lts_compiled, paper_processes["pc_main"])
    RECORD.record("build_lts_compiled pc_main", seconds=seconds, states=lts.state_count())


def test_explicit_invariants_main(benchmark, paper_processes):
    process = paper_processes["pc_main"]
    analysis = ProcessAnalysis(process)
    lts = build_lts(process, analysis.hierarchy)
    report = benchmark(model_check_weak_endochrony, process, analysis, lts)
    assert report.holds()
    _report, seconds = timed(model_check_weak_endochrony, process, analysis, lts)
    RECORD.record("invariants pc_main", seconds=seconds, states=lts.state_count())


def test_definition2_check_filter_merge(benchmark, paper_processes):
    process = paper_processes["composition"]
    lts = build_lts(process)
    report = benchmark(check_weak_endochrony, process, lts)
    assert report.holds()
    _report, seconds = timed(check_weak_endochrony, process, lts)
    RECORD.record("definition2 composition", seconds=seconds, states=lts.state_count())


def test_symbolic_reachability_main(benchmark, paper_processes):
    lts = build_lts(paper_processes["pc_main"])

    def explore():
        checker = SymbolicChecker(lts)
        return checker.reachable_count()

    count = benchmark(explore)
    assert count == lts.state_count()
    checker = SymbolicChecker(lts)
    _count, seconds = timed(checker.reachable_count)
    RECORD.record(
        "symbolic pc_main", seconds=seconds, states=count, bdd_nodes=checker.bdd_nodes()
    )


def test_symbolic_reachability_filter_merge(benchmark, paper_processes):
    lts = build_lts(paper_processes["composition"])

    def explore():
        checker = SymbolicChecker(lts)
        return checker.reachable_count()

    count = benchmark(explore)
    assert count == lts.state_count()
    checker = SymbolicChecker(lts)
    _count, seconds = timed(checker.reachable_count)
    RECORD.record(
        "symbolic composition", seconds=seconds, states=count, bdd_nodes=checker.bdd_nodes()
    )
