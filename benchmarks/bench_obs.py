"""F-OBS — observability must be ~free when it is off, parseable when on.

Two gates on the ``repro.obs`` machinery PR 9 threads through the stack:

1. *Tracing-off overhead* — every instrumented call site costs one global
   flag read plus a no-op context manager when tracing is disabled (the
   default).  **Gate: a generous per-query instrumentation budget — 8 full
   span entries plus 8 event/tag calls, several times what the warm
   cache-hit path actually crosses — costs ≤ 5 % of one measured warm
   query.**
2. *Exposition correctness* — the Prometheus text rendered from a live
   service's metrics snapshot must parse back loss-free.  **Gate: the
   parser accepts the exposition and recovers every family.**

Run with:  pytest benchmarks/bench_obs.py
(the assertions also run in the plain suite; CI uploads the JSON)
"""

from __future__ import annotations

from _record import recorder, timed

from repro.obs import export as obs_export
from repro.obs import trace as obs_trace
from repro.service import VerificationService

RECORD = recorder("obs")

FILTER_SOURCE = """
process filter (x) returns (y) {
  y := x when x;
}
"""

#: per-primitive measurement loop length
CALLS = 20000
#: assumed instrumentation touchpoints per query — deliberately several
#: times what the warm cache-hit path actually crosses (one span, one tag)
TOUCHPOINTS = 8
#: the gate: instrumentation budget / warm query time
MAX_OVERHEAD = 0.05
#: warm-query repetitions
WARM_REPS = 200


def test_tracing_off_budget_is_within_5_percent_of_a_warm_query():
    assert obs_trace.TRACING is False, "benchmarks measure the default: off"

    def spin_spans():
        for _ in range(CALLS):
            with obs_trace.span("bench.noop", key="value"):
                pass

    def spin_events():
        for _ in range(CALLS):
            obs_trace.add_event("bench.noop", site="x")
            obs_trace.tag_current(outcome=True)

    _, span_seconds = timed(spin_spans)
    _, event_seconds = timed(spin_events)
    per_span = span_seconds / CALLS
    per_event = event_seconds / CALLS / 2

    service = VerificationService()
    try:
        digest = service.register(FILTER_SOURCE)
        service.verify_blocking(digest, "non-blocking", method="compiled")

        def warm():
            for _ in range(WARM_REPS):
                service.verify_blocking(digest, "non-blocking", method="compiled")

        _, warm_seconds = timed(warm)
    finally:
        service.close()
    warm_per_query = warm_seconds / WARM_REPS

    budget = TOUCHPOINTS * (per_span + per_event)
    fraction = budget / warm_per_query
    RECORD.record(
        "tracing-off instrumentation budget vs warm query",
        seconds=warm_per_query,
        per_span_us=round(per_span * 1e6, 3),
        per_event_us=round(per_event * 1e6, 3),
        touchpoints=TOUCHPOINTS,
        budget_us=round(budget * 1e6, 3),
        fraction=round(fraction, 4),
        gate=MAX_OVERHEAD,
    )
    assert fraction <= MAX_OVERHEAD, (
        f"{TOUCHPOINTS} disabled touchpoints cost {fraction:.1%} of a warm "
        f"query ({budget*1e6:.1f}us of {warm_per_query*1e6:.1f}us) — over "
        f"the {MAX_OVERHEAD:.0%} budget"
    )


def test_prometheus_exposition_from_a_live_service_parses_loss_free():
    service = VerificationService()
    try:
        digest = service.register(FILTER_SOURCE)
        service.verify_blocking(digest, "endochrony")
        service.verify_blocking(digest, "endochrony")  # one cache hit
        snapshot, snapshot_seconds = timed(service.metrics.snapshot)
        text, render_seconds = timed(obs_export.to_prometheus, snapshot)
        parsed, parse_seconds = timed(obs_export.parse_prometheus, text)
    finally:
        service.close()
    emitted = {family["name"] for family in snapshot["families"]}
    assert emitted == set(parsed), "every family survives the round trip"
    queries = parsed["repro_service_queries_total"]
    by_outcome = {labels["outcome"]: value for labels, value in queries["samples"]}
    assert by_outcome["all"] == 2.0 and by_outcome["cache_hit"] == 1.0
    RECORD.record(
        "metrics snapshot -> prometheus -> parse round trip",
        seconds=snapshot_seconds + render_seconds + parse_seconds,
        families=len(emitted),
        exposition_bytes=len(text),
    )
