"""F-OTF — on-the-fly verification: lazy product + early termination vs eager.

The paper's cost argument (Section 4 / Theorem 1) is that deciding a
property of ``P1 | ... | Pn`` should not require materializing the
synchronous product.  The on-the-fly engine delivers that operationally:

* :class:`repro.mc.onthefly.ProductLTS` joins per-component reactions on
  demand (backtracking over components) instead of enumerating the composed
  process's exponentially many global activation choices per state;
* :class:`repro.mc.onthefly.OnTheFlyChecker` expands states only as a check
  visits them, so a check that stops at the first violating reaction leaves
  the rest of the product unexplored.

Scenarios pinned here:

1. *One size step beyond the eager budget* — on a buffer chain with a
   weak-endochrony violation seeded at its tail, the eager engine exhausts
   its state budget (truncated exploration, seconds) one chain-length before
   the lazy engine, which finds the violating reaction conclusively after
   expanding a fraction of the same budget (milliseconds).
2. *Exponential per-state gap* — verifying a holding property of an
   ``n``-relay pipeline costs the eager engine ``O(3^n)`` interpreter calls
   per state; the lazy product joins ``O(n)`` per-component reaction lists.
3. *Batched parallel queries* — ``Design.map_components`` /
   ``Design.verify_many`` shard independent queries over a process pool and
   beat the sequential loop whenever more than one core is available.

Run with:  pytest benchmarks/bench_onthefly.py --benchmark-only
(the timing assertions also run in the plain suite; CI uploads the JSON)
"""

from __future__ import annotations

import os
import time

import pytest

from _record import recorder

from repro import Design
from repro.lang.builder import ProcessBuilder, signal
from repro.lang.normalize import normalize
from repro.library.generators import chain_of_buffers, pipeline_network
from repro.mc import OnTheFlyChecker, ProductLTS, build_lts
from repro.properties.weak_endochrony import check_weak_endochrony

RECORD = recorder("onthefly")

#: the shared exploration budget of scenario 1 (states the engines may visit)
BUDGET = 256
#: chain length whose reachable space fits the budget (4·3**(n-1) states)
SIZE_WITHIN = 4
#: one size step beyond: the eager engine exceeds the budget here
SIZE_BEYOND = 5


def _chain_with_arbiter(length: int):
    """A buffer chain whose tail feeds a merge arbiter (not weakly endochronous).

    ``out := tail default w`` makes the choice between the chain's output and
    the fresh input ``w`` order-sensitive: axiom 2c of Definition 2 fails,
    and the violation is reachable within a few expansions.
    """
    components, composition = chain_of_buffers(length)
    builder = ProcessBuilder("arbiter", inputs=[f"y{length}", "w"], outputs=["out"])
    builder.define("out", signal(f"y{length}").default(signal("w")))
    arbiter = normalize(builder.build())
    return components + [arbiter], composition.compose(arbiter)


# ---------------------------------------------------------------------------
# 1. conclusive one size step beyond the eager state budget
# ---------------------------------------------------------------------------

def test_eager_concludes_within_budget_at_size_within():
    """At SIZE_WITHIN the eager engine still fits the budget (the baseline)."""
    _components, composition = _chain_with_arbiter(SIZE_WITHIN)
    lts = build_lts(composition, max_states=BUDGET)
    assert not lts.truncated
    report = check_weak_endochrony(composition, lts=lts)
    assert not report.holds()


def test_lazy_concludes_one_size_beyond_eager_budget():
    """At SIZE_BEYOND the eager engine exceeds its budget; the lazy one answers."""
    components, composition = _chain_with_arbiter(SIZE_BEYOND)

    start = time.perf_counter()
    engine = OnTheFlyChecker(ProductLTS(components), max_states=BUDGET)
    lazy_report = check_weak_endochrony(composition, checker=engine)
    lazy_seconds = time.perf_counter() - start
    assert not lazy_report.holds()
    assert lazy_report.failures()[0].counterexample  # a concrete violating reaction
    assert not engine.truncated  # conclusive: the budget was never exhausted
    assert engine.states_expanded < BUDGET // 2

    start = time.perf_counter()
    eager_lts = build_lts(composition, max_states=BUDGET)
    eager_report = check_weak_endochrony(composition, lts=eager_lts)
    eager_seconds = time.perf_counter() - start
    # the eager engine exceeded its state budget: its exploration is cut and
    # any 'holds' answer it gave at this size would be unreliable
    assert eager_lts.truncated
    assert eager_report.states_explored >= BUDGET

    RECORD.record(
        f"buffers_{SIZE_BEYOND}+arbiter lazy hunt",
        seconds=lazy_seconds,
        states=engine.states_expanded,
    )
    RECORD.record(
        f"buffers_{SIZE_BEYOND}+arbiter eager",
        seconds=eager_seconds,
        states=eager_lts.state_count(),
    )
    assert lazy_seconds < eager_seconds / 10, (
        f"lazy {lazy_seconds:.3f}s vs eager {eager_seconds:.3f}s"
    )


def test_onthefly_bench_violation_hunt(benchmark):
    """pytest-benchmark probe: the lazy violation hunt at SIZE_BEYOND."""
    components, composition = _chain_with_arbiter(SIZE_BEYOND)

    def hunt():
        engine = OnTheFlyChecker(ProductLTS(components), max_states=BUDGET)
        return check_weak_endochrony(composition, checker=engine)

    report = benchmark(hunt)
    assert not report.holds()


# ---------------------------------------------------------------------------
# 2. the exponential per-state gap on chained compositions
# ---------------------------------------------------------------------------

def test_lazy_product_beats_eager_choice_enumeration():
    """The lazy product at n=10 is faster than the eager engine at n=6.

    Each eager state expansion enumerates ``2·3^n`` candidate activations of
    the composed pipeline; the lazy product joins per-relay reaction lists.
    Verifying non-blocking (a holding property: full reachable set explored)
    four sizes further must still be cheaper than the eager engine's smaller
    instance.
    """
    eager_components, eager_composition = pipeline_network(6)
    start = time.perf_counter()
    eager_lts = build_lts(eager_composition, max_states=BUDGET)
    eager_seconds = time.perf_counter() - start
    assert not eager_lts.truncated

    lazy_components, _composition = pipeline_network(10)
    start = time.perf_counter()
    engine = OnTheFlyChecker(ProductLTS(lazy_components), max_states=BUDGET)
    result = engine.is_non_blocking()
    lazy_seconds = time.perf_counter() - start
    assert result.holds and not engine.truncated

    RECORD.record("pipeline_10 lazy non-blocking", seconds=lazy_seconds)
    RECORD.record("pipeline_6 eager build", seconds=eager_seconds)
    assert lazy_seconds < eager_seconds, (
        f"lazy n=10 {lazy_seconds:.3f}s vs eager n=6 {eager_seconds:.3f}s"
    )


def test_onthefly_bench_product_expansion(benchmark):
    """pytest-benchmark probe: full lazy exploration of a 10-relay pipeline."""
    components, _composition = pipeline_network(10)

    def explore():
        engine = OnTheFlyChecker(ProductLTS(components), max_states=BUDGET)
        engine.explore_all()
        return engine

    engine = benchmark(explore)
    assert not engine.truncated


# ---------------------------------------------------------------------------
# 3. batched parallel queries
# ---------------------------------------------------------------------------

def _batch_components(count: int = 6):
    """Independent, individually heavy components (composed buffer chains)."""
    return [chain_of_buffers(4)[1] for _ in range(count)]


def test_verify_many_and_map_components_agree_with_sequential():
    """Parallel sharding must return the same verdicts as the in-process loop."""
    design = Design(name="batch", components=_batch_components(3))
    specs = [("weak-endochrony", "explicit"), ("non-blocking", "explicit")]
    sequential = design.verify_many(specs)
    parallel = Design(name="batch", components=_batch_components(3)).verify_many(
        specs, parallel=2
    )
    assert [bool(v) for v in sequential] == [bool(v) for v in parallel]
    assert [v.prop for v in sequential] == [v.prop for v in parallel]

    seq_map = design.map_components("weak-endochrony", method="explicit")
    par_map = Design(name="batch", components=_batch_components(3)).map_components(
        "weak-endochrony", method="explicit", parallel=2
    )
    assert [bool(v) for v in seq_map] == [bool(v) for v in par_map]


#: a bounded-model-checking style sweep: the same property at several
#: exploration bounds.  Every bound gets its own engine, so the queries are
#: genuinely independent — the shape of workload ``parallel=N`` is for.
_SWEEP_SPECS = [
    ("weak-endochrony", "explicit", {"max_states": bound})
    for bound in (192, 256, 384, 512, 768, 1024)
]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="parallel speedup needs more than one core"
)
def test_verify_many_parallel_beats_sequential_loop():
    """``verify_many(parallel=2)`` beats the sequential loop on ≥ 2 cores.

    Multi-property workload: a six-bound exploration sweep over one design
    (~0.5 s per query, no shared engine).  The sequential loop pays the sum;
    two workers pay roughly half plus the pool start-up.
    """
    _components, composition = chain_of_buffers(4)

    sequential_design = Design.from_process(composition)
    start = time.perf_counter()
    sequential = sequential_design.verify_many(_SWEEP_SPECS)
    sequential_seconds = time.perf_counter() - start

    parallel_design = Design.from_process(composition)
    start = time.perf_counter()
    parallel = parallel_design.verify_many(_SWEEP_SPECS, parallel=2)
    parallel_seconds = time.perf_counter() - start

    assert [bool(v) for v in sequential] == [bool(v) for v in parallel]
    assert parallel_seconds < sequential_seconds, (
        f"parallel {parallel_seconds:.2f}s vs sequential {sequential_seconds:.2f}s"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="parallel speedup needs more than one core"
)
def test_map_components_parallel_beats_sequential_loop():
    """``map_components(parallel=2)`` beats the sequential per-component loop.

    Six independent weak-endochrony queries of ~0.5 s each: the sequential
    loop pays their sum, two workers pay roughly half plus the pool start-up.
    """
    sequential_design = Design(name="batch", components=_batch_components(6))
    start = time.perf_counter()
    sequential = sequential_design.map_components("weak-endochrony", method="explicit")
    sequential_seconds = time.perf_counter() - start

    parallel_design = Design(name="batch", components=_batch_components(6))
    start = time.perf_counter()
    parallel = parallel_design.map_components(
        "weak-endochrony", method="explicit", parallel=2
    )
    parallel_seconds = time.perf_counter() - start

    assert [bool(v) for v in sequential] == [bool(v) for v in parallel]
    assert parallel_seconds < sequential_seconds, (
        f"parallel {parallel_seconds:.2f}s vs sequential {sequential_seconds:.2f}s"
    )
