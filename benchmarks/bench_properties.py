"""E2 / E3 / E10 / E11 — the formal properties of Section 4, regenerated and timed.

* the filter and the merge are endochronous, their composition is not (E2, E10);
* the filter ‖ merge composition is nevertheless isochronous (E3);
* weak endochrony of the compositions is model-checked with the invariants of
  Section 4.1 (E11).
"""

from _record import recorder, timed

from repro.mc.transition import build_lts
from repro.properties.compilable import ProcessAnalysis

RECORD = recorder("properties")
from repro.properties.endochrony import check_endochrony_on_traces, is_endochronous
from repro.properties.isochrony import check_isochrony
from repro.properties.nonblocking import is_non_blocking
from repro.properties.weak_endochrony import check_weak_endochrony, model_check_weak_endochrony


def test_static_endochrony_checks(benchmark, paper_processes):
    """E2/E10: static endochrony of filter, merge, buffer; non-endochrony of the composition."""

    def verdicts():
        return (
            is_endochronous(paper_processes["filter"]),
            is_endochronous(paper_processes["merge"]),
            is_endochronous(paper_processes["buffer"]),
            is_endochronous(paper_processes["composition"]),
        )

    filter_ok, merge_ok, buffer_ok, composition_ok = benchmark(verdicts)
    assert filter_ok and merge_ok and buffer_ok
    assert not composition_ok


def test_trace_based_endochrony_of_filter(benchmark, paper_processes):
    """Definition 1 checked on bounded traces of the filter."""
    report = benchmark(
        check_endochrony_on_traces,
        paper_processes["filter"],
        {"y": [True, False, False, True]},
        6,
    )
    assert report.holds


def test_isochrony_of_filter_and_merge(benchmark, paper_processes):
    """E3: p | q ≈ p ‖ q for the filter and the merge."""
    report = benchmark(
        check_isochrony,
        paper_processes["filter"],
        paper_processes["merge"],
        {"y": [True, False], "c": [True, False], "z": [False]},
        5,
    )
    assert report.holds


def test_weak_endochrony_of_filter_merge(benchmark, paper_processes):
    """E11: Definition 2 on the filter|merge composition's reaction LTS."""
    report = benchmark(check_weak_endochrony, paper_processes["composition"])
    assert report.holds()
    _report, seconds = timed(check_weak_endochrony, paper_processes["composition"])
    RECORD.record(
        "weak endochrony composition", seconds=seconds, states=report.states_explored
    )


def test_weak_endochrony_invariants_of_main(benchmark, paper_processes):
    """E11: the Section 4.1 invariants (StateIndependent, OrderIndependent, FlowIndependent)."""
    process = paper_processes["pc_main"]
    analysis = ProcessAnalysis(process)
    lts = build_lts(process, analysis.hierarchy)
    report = benchmark(model_check_weak_endochrony, process, analysis, lts)
    assert report.holds()


def test_non_blocking_of_compositions(benchmark, paper_processes):
    """Definition 4 on the two compositions used throughout the paper."""

    def verdicts():
        return (
            is_non_blocking(paper_processes["composition"]),
            is_non_blocking(paper_processes["pc_main"]),
        )

    first, second = benchmark(verdicts)
    assert first.holds and second.holds
    _verdicts, seconds = timed(verdicts)
    RECORD.record("non-blocking compositions", seconds=seconds)
