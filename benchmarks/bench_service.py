"""F-SVC — the serving layer: pay for a design once, serve it forever.

Three cache tiers and one concurrency property, on the `pipeline_8`
acceptance scenario:

1. *Cold* — a fresh service over an empty artifact store: the query pays
   analysis + compilation + exploration (and persists everything).
2. *Warm relation* — a brand-new service process over the same store asked
   a **new** query: the persisted verdicts miss, but the compiled BDD step
   relation reloads in linear time, skipping compilation and sifting.
3. *Warm verdict* — a brand-new service asked a **repeat** query: one small
   JSON read, no pipeline stage at all.  **The acceptance gate: ≥ 5× faster
   than the cold compile.**
4. *Coalescing* — 64 concurrent duplicate queries on a storeless service
   trigger exactly one underlying computation (the `computations`
   instrumentation counter), so concurrent duplicate load scales by the
   price of one.

Run with:  pytest benchmarks/bench_service.py
(the timing assertions also run in the plain suite; CI uploads the JSON)
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import time
from pathlib import Path

from _record import recorder, timed

from repro.gen.corpus import Corpus, seed_store
from repro.library.generators import pipeline_network
from repro.service import ArtifactStore, VerificationService

RECORD = recorder("service")

#: the committed generator corpus: the mixed cold/warm query workload
CORPUS_PATH = Path(__file__).resolve().parent.parent / "corpus" / "corpus.json"

#: the acceptance scenario and its required warm-over-cold advantage
ACCEPTANCE_SIZE = 8
ACCEPTANCE_SPEEDUP = 5.0
#: concurrent duplicate queries for the coalescing scenario
FAN_OUT = 64


def _fresh_service(store_root):
    """A service with nothing shared in memory with any previous one."""
    _components, composition = pipeline_network(ACCEPTANCE_SIZE)
    service = VerificationService(store=ArtifactStore(store_root))
    digest = service.register([composition], name=composition.name)
    return service, digest


def test_warm_cache_query_is_5x_faster_than_cold_compile():
    store_root = tempfile.mkdtemp(prefix="repro-bench-service-")
    try:
        cold_service, digest = _fresh_service(store_root)
        cold_verdict, cold_seconds = timed(
            cold_service.verify_blocking, digest, "non-blocking", method="compiled"
        )
        assert cold_verdict["holds"] and cold_verdict["method"] == "compiled"
        assert cold_service.computations == 1
        cold_service.close()
        RECORD.record(
            f"pipeline_{ACCEPTANCE_SIZE} cold (compile + explore + persist)",
            seconds=cold_seconds,
        )

        # tier 2: new service, new query — the compiled relation reloads
        relation_service, digest = _fresh_service(store_root)
        relation_verdict, relation_seconds = timed(
            relation_service.verify_blocking,
            digest,
            "non-blocking",
            method="compiled",
            max_states=256,
        )
        assert relation_verdict["holds"]
        design = relation_service.registry.get(digest)
        abstraction = design.context.compiled(design.composition)
        assert abstraction is not None and abstraction.hierarchy is None, (
            "the step relation must come from the store, not a recompile"
        )
        relation_service.close()
        RECORD.record(
            f"pipeline_{ACCEPTANCE_SIZE} warm relation (store hit, new query)",
            seconds=relation_seconds,
            cold_seconds=round(cold_seconds, 6),
            speedup=round(cold_seconds / max(relation_seconds, 1e-9), 2),
        )

        # tier 3: new service, repeat query — the verdict itself is the artifact
        warm_service, digest = _fresh_service(store_root)
        warm_verdict, warm_seconds = timed(
            warm_service.verify_blocking, digest, "non-blocking", method="compiled"
        )
        assert warm_verdict["holds"] == cold_verdict["holds"]
        assert warm_service.computations == 0, "a store hit must not recompute"
        assert warm_service.verdict_store_hits == 1
        warm_service.close()
        RECORD.record(
            f"pipeline_{ACCEPTANCE_SIZE} warm verdict (store hit, repeat query)",
            seconds=warm_seconds,
            cold_seconds=round(cold_seconds, 6),
            speedup=round(cold_seconds / max(warm_seconds, 1e-9), 2),
        )
        assert warm_seconds * ACCEPTANCE_SPEEDUP < cold_seconds, (
            f"warm {warm_seconds:.4f}s vs cold {cold_seconds:.4f}s "
            f"(need ≥{ACCEPTANCE_SPEEDUP:.0f}×)"
        )
    finally:
        shutil.rmtree(store_root, ignore_errors=True)


def test_64_concurrent_duplicates_cost_one_computation():
    service = VerificationService()  # storeless: the coalescer does all the work
    _components, composition = pipeline_network(ACCEPTANCE_SIZE)
    digest = service.register([composition], name=composition.name)

    # baseline: what one computation of this query costs
    baseline_service = VerificationService()
    _c, rebuilt = pipeline_network(ACCEPTANCE_SIZE)
    baseline_digest = baseline_service.register([rebuilt], name=rebuilt.name)
    _verdict, single_seconds = timed(
        baseline_service.verify_blocking,
        baseline_digest,
        "weak-endochrony",
        method="compiled",
    )
    baseline_service.close()

    async def fan_out():
        return await asyncio.gather(
            *[
                service.verify(digest, "weak-endochrony", method="compiled")
                for _ in range(FAN_OUT)
            ]
        )

    start = time.perf_counter()
    results = asyncio.run(fan_out())
    elapsed = time.perf_counter() - start

    assert len(results) == FAN_OUT
    assert all(result == results[0] for result in results)
    assert service.computations == 1, (
        f"{FAN_OUT} concurrent duplicates ran {service.computations} computations"
    )
    assert service.coalesced == FAN_OUT - 1
    service.close()
    RECORD.record(
        f"{FAN_OUT} concurrent duplicate queries (coalesced)",
        seconds=elapsed,
        single_query_seconds=round(single_seconds, 6),
        computations=1,
        coalesced=FAN_OUT - 1,
        naive_seconds=round(single_seconds * FAN_OUT, 6),
    )
    # the fan-out must not cost anywhere near 64 computations; even one
    # extra computation would double the time, so 8× headroom is generous
    assert elapsed < single_seconds * FAN_OUT / 8, (
        f"{FAN_OUT} coalesced queries took {elapsed:.4f}s vs "
        f"{single_seconds:.4f}s for one computation"
    )


def test_corpus_driven_mixed_cold_warm_queries():
    """A realistic query mix from the generator corpus, not a hand-rolled list.

    The committed corpus (``corpus/corpus.json``) supplies both the designs
    and the warm tier: the verdicts of every *even* entry are seeded into
    the artifact store beforehand (``repro.gen.corpus.seed_store``), the odd
    entries stay cold.  One service then answers one recorded query per
    entry — warm entries must be pure store reads, and the seeded half must
    be decisively cheaper than the computed half.
    """
    corpus = Corpus.load(CORPUS_PATH)
    entries = corpus.entries[:24]
    warm_entries = entries[0::2]
    cold_entries = entries[1::2]
    prop, method = "non-blocking", "explicit"

    store_root = tempfile.mkdtemp(prefix="repro-bench-corpus-")
    try:
        seeded = seed_store(
            Corpus(entries=list(warm_entries), max_states=corpus.max_states),
            ArtifactStore(store_root),
        )
        service = VerificationService(store=ArtifactStore(store_root))
        digests = {}
        for entry in entries:
            digest = service.register(
                list(entry.regenerate().components), name=entry.name
            )
            assert digest == entry.digest, (
                "corpus digests must address the service's designs"
            )
            digests[entry.name] = digest

        def run(batch):
            start = time.perf_counter()
            for entry in batch:
                verdict = service.verify_blocking(
                    digests[entry.name], prop, method=method, **corpus.options()
                )
                assert verdict["holds"] == entry.holds(prop, method)
            return time.perf_counter() - start

        computed_before = service.computations
        warm_seconds = run(warm_entries)
        assert service.computations == computed_before, (
            "warm corpus entries must be answered from the seeded store"
        )
        cold_seconds = run(cold_entries)
        # distinct seeds can sample identical designs; repeat digests are
        # LRU hits, so only the *distinct* cold digests cost a computation
        warm_digests = {entry.digest for entry in warm_entries}
        distinct_cold = {
            entry.digest for entry in cold_entries
        } - warm_digests
        assert service.computations == computed_before + len(distinct_cold)
        service.close()

        RECORD.record(
            f"corpus mixed workload ({len(warm_entries)} warm / "
            f"{len(cold_entries)} cold, {prop} via {method})",
            seconds=warm_seconds + cold_seconds,
            warm_seconds=round(warm_seconds, 6),
            cold_seconds=round(cold_seconds, 6),
            verdicts_seeded=seeded,
            speedup=round(
                (cold_seconds / len(cold_entries))
                / max(warm_seconds / len(warm_entries), 1e-9),
                2,
            ),
        )
        assert warm_seconds / len(warm_entries) < cold_seconds / len(cold_entries), (
            "a seeded verdict must be cheaper than a computed one"
        )
    finally:
        shutil.rmtree(store_root, ignore_errors=True)


def test_cached_throughput():
    """Steady-state: repeat queries served from the LRU cache, per second."""
    service = VerificationService()
    _components, composition = pipeline_network(ACCEPTANCE_SIZE)
    digest = service.register([composition], name=composition.name)
    service.verify_blocking(digest, "non-blocking", method="compiled")

    queries = 500

    async def pump():
        for _ in range(queries):
            await service.verify(digest, "non-blocking", method="compiled")

    start = time.perf_counter()
    asyncio.run(pump())
    elapsed = time.perf_counter() - start
    assert service.computations == 1
    service.close()
    RECORD.record(
        "steady-state cached queries",
        seconds=elapsed,
        queries=queries,
        queries_per_second=round(queries / max(elapsed, 1e-9)),
    )
    assert queries / max(elapsed, 1e-9) > 1000, "cached queries should be cheap"
