"""CI smoke gate: compiled-vs-eager on two small scenarios, <30 s total.

The full acceptance benchmark lives in ``bench_compiled.py``; this module is
the cheap regression tripwire CI runs on every push.  Two scenarios, one
rule: the compiled engine (compile time included) must never regress to more
than ``REGRESSION_FACTOR``× the eager interpreter-backed engine.  On these
sizes the compiled engine normally *wins* outright, so tripping the gate
means the compiled path lost an order of magnitude, not that a runner was
noisy.  Both measurements land in ``BENCH_smoke_compiled.json``, uploaded as
a CI artifact next to the other records.
"""

from __future__ import annotations

import time

import pytest

from _record import recorder

from repro.library.generators import chain_of_buffers, pipeline_network
from repro.mc.compiled import build_lts_compiled
from repro.mc.transition import build_lts

RECORD = recorder("smoke_compiled")

#: the smoke gate: compiled slower than this many times eager = regression
REGRESSION_FACTOR = 3.0

SCENARIOS = {
    "pipeline_5": lambda: pipeline_network(5)[1],
    "buffer_chain_3": lambda: chain_of_buffers(3)[1],
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_compiled_does_not_regress(name):
    composition = SCENARIOS[name]()

    start = time.perf_counter()
    eager = build_lts(composition, max_states=512)
    eager_seconds = time.perf_counter() - start

    start = time.perf_counter()
    compiled = build_lts_compiled(composition, max_states=512)
    compiled_seconds = time.perf_counter() - start

    assert set(eager.states) == set(compiled.states)
    assert {(t.source, t.reaction, t.target) for t in eager.transitions} == {
        (t.source, t.reaction, t.target) for t in compiled.transitions
    }
    RECORD.record(f"{name} eager", seconds=eager_seconds, states=eager.state_count())
    RECORD.record(
        f"{name} compiled", seconds=compiled_seconds, states=compiled.state_count()
    )
    assert compiled_seconds < eager_seconds * REGRESSION_FACTOR, (
        f"compiled engine regressed on {name}: "
        f"{compiled_seconds:.3f}s vs eager {eager_seconds:.3f}s "
        f"(gate: {REGRESSION_FACTOR:.0f}×)"
    )
