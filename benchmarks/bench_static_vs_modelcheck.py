"""E17 / E18 — the paper's central cost claim: static criterion vs. state-space exploration.

The paper argues that checking weak endochrony by model checking "requires an
exhaustive exploration of the state-space", while the weakly hierarchic
criterion only runs the (polynomial, BDD-backed) clock calculus per component
and on the composition.  These benchmarks sweep the number of independently
paced components in a pipeline network and time the two approaches; the
*shape* expected from the paper is that the model-checking cost grows much
faster with the component count (its reaction space is the product of the
per-component reaction spaces), while the static criterion stays flat.

Run with:  pytest benchmarks/bench_static_vs_modelcheck.py --benchmark-only
"""

import pytest

from repro.library.generators import independent_components, pipeline_network, star_network
from repro.mc.transition import build_lts
from repro.properties.composition import check_weakly_hierarchic
from repro.properties.weak_endochrony import check_weak_endochrony

PIPELINE_SIZES = (1, 2, 3, 4)
INDEPENDENT_SIZES = (2, 4, 6)


@pytest.mark.parametrize("size", PIPELINE_SIZES)
def test_static_criterion_on_pipeline(benchmark, size):
    """E17 (static side): the weakly hierarchic criterion on an N-stage pipeline."""
    components, composition = pipeline_network(size)
    verdict = benchmark(check_weakly_hierarchic, components, composition)
    assert verdict.weakly_hierarchic()


@pytest.mark.parametrize("size", PIPELINE_SIZES)
def test_model_checking_on_pipeline(benchmark, size):
    """E17 (exploration side): Definition 2 checked on the composition's reaction LTS."""
    _components, composition = pipeline_network(size)

    def explore():
        lts = build_lts(composition, max_states=512)
        report = check_weak_endochrony(composition, lts=lts)
        return report, lts

    report, lts = benchmark(explore)
    assert report.holds()
    assert lts.transition_count() >= 2**size  # the reaction space grows exponentially


@pytest.mark.parametrize("size", INDEPENDENT_SIZES)
def test_static_criterion_on_independent_components(benchmark, size):
    """E17: the static criterion also scales on fully independent components."""
    components, composition = independent_components(size)
    verdict = benchmark(check_weakly_hierarchic, components, composition)
    assert verdict.weakly_hierarchic()


@pytest.mark.parametrize("size", (2, 3))
def test_model_checking_on_independent_components(benchmark, size):
    """E17: the exploration side on independent components (kept small on purpose)."""
    _components, composition = independent_components(size)

    def explore():
        lts = build_lts(composition, max_states=512)
        return check_weak_endochrony(composition, lts=lts)

    report = benchmark(explore)
    assert report.holds()


def test_star_network_criterion(benchmark):
    """E18: a statically validated star network (source + 3 sinks) is weakly hierarchic."""
    components, composition = star_network(3)
    verdict = benchmark(check_weakly_hierarchic, components, composition)
    assert verdict.weakly_hierarchic()


def test_reaction_space_growth_is_exponential(benchmark):
    """E17 (shape check): the LTS transition count grows exponentially with the component count."""

    def measure():
        counts = []
        for size in (1, 2, 3):
            _components, composition = independent_components(size)
            lts = build_lts(composition, max_states=512)
            counts.append(lts.transition_count())
        return counts

    counts = benchmark(measure)
    assert counts[0] < counts[1] < counts[2]
    assert counts[2] >= counts[1] * 2
