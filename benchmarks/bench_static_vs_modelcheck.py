"""E17 / E18 — the paper's central cost claim: static criterion vs. state-space exploration.

The paper argues that checking weak endochrony by model checking "requires an
exhaustive exploration of the state-space", while the weakly hierarchic
criterion only runs the (polynomial, BDD-backed) clock calculus per component
and on the composition.  These benchmarks sweep the number of independently
paced components in a pipeline network and time the two approaches through
``Design.verify("weak-endochrony", method=...)``; the *shape* expected from
the paper is that the model-checking cost grows much faster with the
component count (its reaction space is the product of the per-component
reaction spaces), while the static criterion stays flat.

A fresh session is built per measured round so each approach pays its full
cost (bench_api_session.py measures the complementary claim: what a *shared*
session saves on repeated queries).

Run with:  pytest benchmarks/bench_static_vs_modelcheck.py --benchmark-only
"""

import pytest

from _record import recorder, timed

from repro import Design
from repro.library.generators import independent_components, pipeline_network, star_network

RECORD = recorder("static_vs_modelcheck")

PIPELINE_SIZES = (1, 2, 3, 4)
INDEPENDENT_SIZES = (2, 4, 6)


def _design(components, composition):
    return Design(
        name=composition.name, components=list(components), composition=composition
    )


@pytest.mark.parametrize("size", PIPELINE_SIZES)
def test_static_criterion_on_pipeline(benchmark, size):
    """E17 (static side): the weakly hierarchic criterion on an N-stage pipeline."""
    components, composition = pipeline_network(size)

    def check():
        return _design(components, composition).verify("weak-endochrony", method="static")

    verdict = benchmark(check)
    assert verdict.holds
    assert verdict.cost.states == 0  # no exploration at all
    _verdict, seconds = timed(check)
    RECORD.record(f"pipeline_{size} static", seconds=seconds, states=0)


@pytest.mark.parametrize("size", PIPELINE_SIZES)
def test_model_checking_on_pipeline(benchmark, size):
    """E17 (exploration side): Definition 2 checked on the composition's reaction LTS."""
    components, composition = pipeline_network(size)

    def explore():
        return _design(components, composition).verify("weak-endochrony", method="explicit")

    verdict = benchmark(explore)
    assert verdict.holds
    assert verdict.cost.transitions >= 2**size  # the reaction space grows exponentially
    _verdict, seconds = timed(explore)
    RECORD.record(
        f"pipeline_{size} explicit", seconds=seconds, states=verdict.cost.states
    )


@pytest.mark.parametrize("size", INDEPENDENT_SIZES)
def test_static_criterion_on_independent_components(benchmark, size):
    """E17: the static criterion also scales on fully independent components."""
    components, composition = independent_components(size)

    def check():
        return _design(components, composition).verify("weak-endochrony", method="static")

    verdict = benchmark(check)
    assert verdict.holds


@pytest.mark.parametrize("size", (2, 3))
def test_model_checking_on_independent_components(benchmark, size):
    """E17: the exploration side on independent components (kept small on purpose)."""
    components, composition = independent_components(size)

    def explore():
        return _design(components, composition).verify("weak-endochrony", method="explicit")

    verdict = benchmark(explore)
    assert verdict.holds


def test_star_network_criterion(benchmark):
    """E18: a statically validated star network (source + 3 sinks) is weakly hierarchic."""
    components, composition = star_network(3)

    def check():
        return _design(components, composition).verify("weakly-hierarchic")

    verdict = benchmark(check)
    assert verdict.holds


def test_reaction_space_growth_is_exponential(benchmark):
    """E17 (shape check): the LTS transition count grows exponentially with the component count."""

    def measure():
        counts = []
        for size in (1, 2, 3):
            components, composition = independent_components(size)
            verdict = _design(components, composition).verify(
                "weak-endochrony", method="explicit"
            )
            counts.append(verdict.cost.transitions)
        return counts

    counts = benchmark(measure)
    assert counts[0] < counts[1] < counts[2]
    assert counts[2] >= counts[1] * 2
