"""E18 — Theorem 1 validated end to end: statically accepted compositions are isochronous.

For each network family, the benchmark (a) runs the static criterion, (b)
cross-checks the conclusion by verifying weak endochrony of the composition
on its reaction LTS and isochrony of a representative component pair on
bounded traces.  The paper's claim is qualitative — the criterion never
accepts a non-isochronous composition — and that is what the assertions
re-establish on every benchmark round.
"""

from _record import recorder, timed

from repro.library.generators import pipeline_network, star_network
from repro.properties.composition import check_weakly_hierarchic
from repro.properties.isochrony import check_isochrony
from repro.properties.weak_endochrony import check_weak_endochrony

RECORD = recorder("theorem1")


def test_theorem1_on_producer_consumer(benchmark, paper_processes):
    """Criterion + weak endochrony + bounded isochrony on the paper's main example."""
    producer = paper_processes["pc_producer"]
    consumer = paper_processes["pc_consumer"]

    def verify():
        verdict = check_weakly_hierarchic([producer, consumer], composition_name="main")
        weak = check_weak_endochrony(paper_processes["pc_main"])
        iso = check_isochrony(
            producer, consumer, {"a": [True, False], "b": [False, True]}, max_instants=5
        )
        return verdict, weak, iso

    verdict, weak, iso = benchmark(verify)
    assert verdict.weakly_hierarchic()
    assert weak.holds()
    assert iso.holds
    _results, seconds = timed(verify)
    RECORD.record("theorem1 producer/consumer", seconds=seconds)


def test_theorem1_on_pipeline(benchmark):
    """Criterion + weak endochrony on a 3-stage pipeline."""
    components, composition = pipeline_network(3)

    def verify():
        verdict = check_weakly_hierarchic(components, composition=composition)
        weak = check_weak_endochrony(composition, max_states=256)
        return verdict, weak

    verdict, weak = benchmark(verify)
    assert verdict.weakly_hierarchic() == weak.holds()
    assert verdict.weakly_hierarchic()


def test_theorem1_on_star(benchmark):
    """Criterion + weak endochrony on a star of one source and two sinks."""
    components, composition = star_network(2)

    def verify():
        verdict = check_weakly_hierarchic(components, composition=composition)
        weak = check_weak_endochrony(composition, max_states=256)
        return verdict, weak

    verdict, weak = benchmark(verify)
    assert verdict.weakly_hierarchic()
    assert weak.holds()


def test_theorem1_rejects_bad_component(benchmark, paper_processes):
    """The criterion refuses a composition with a non-endochronous component."""
    components = [paper_processes["composition"], paper_processes["pc_producer"]]
    verdict = benchmark(check_weakly_hierarchic, components)
    assert not verdict.weakly_hierarchic()
