"""E1 / E4 — the Section 1 and Section 2 traces of the filter, regenerated and timed.

Regenerates the paper's introductory trace (x emitted whenever y changes) and
measures interpreter throughput on it; the assertions re-verify the shape of
the trace every benchmark round, so a regression in the semantics fails the
benchmark rather than silently changing what is measured.
"""

from _record import recorder, timed

from repro.semantics.interpreter import SignalInterpreter

RECORD = recorder("traces")

PAPER_INPUT = [True, False, False, True, True, False]
PAPER_EMISSION_INSTANTS = [2, 4, 6]


def run_filter_trace(process, stream):
    interpreter = SignalInterpreter(process)
    emissions = []
    for instant, value in enumerate(stream, start=1):
        result = interpreter.step({"y": value})
        if result.present("x"):
            emissions.append(instant)
    return emissions


def test_filter_paper_trace(benchmark, paper_processes):
    """E1: the four/six sample trace of Sections 1-2."""
    emissions = benchmark(run_filter_trace, paper_processes["filter"], PAPER_INPUT)
    assert emissions == PAPER_EMISSION_INSTANTS


def test_filter_long_trace_throughput(benchmark, paper_processes):
    """Interpreter throughput on a 512-sample alternating input."""
    stream = [bool(index % 2) for index in range(512)]
    emissions = benchmark(run_filter_trace, paper_processes["filter"], stream)
    # the input alternates at every instant (and the first sample already differs
    # from the initial value of the delay), so x fires at every instant
    assert len(emissions) == len(stream)
    _emissions, seconds = timed(run_filter_trace, paper_processes["filter"], stream)
    RECORD.record("filter trace x512", seconds=seconds)


def test_buffer_streaming_throughput(benchmark, paper_processes):
    """The buffer relays each value in exactly two instants (read then emit)."""
    from repro.semantics.interpreter import ABSENT

    def run(process, count):
        interpreter = SignalInterpreter(process)
        out = []
        for value in range(count):
            interpreter.step({"y": value})
            result = interpreter.step({"y": ABSENT}, assume={"buffer_t": True})
            out.append(result.value("x"))
        return out

    values = benchmark(run, paper_processes["buffer"], 128)
    assert values == list(range(128))
