"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.lang.normalize import normalize
from repro.library.basic import buffer_process, filter_merge_composition, filter_process
from repro.library.ltta import ltta_components
from repro.library.producer_consumer import normalized_suite


@pytest.fixture(scope="session")
def paper_processes():
    """The paper's processes, normalized once for the whole benchmark session."""
    suite = {
        "filter": normalize(filter_process()),
        "buffer": normalize(buffer_process()),
    }
    suite.update(filter_merge_composition())
    suite.update({f"pc_{k}": v for k, v in normalized_suite().items()})
    suite.update({f"ltta_{k}": v for k, v in ltta_components().items()})
    return suite
