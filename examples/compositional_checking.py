#!/usr/bin/env python3
"""Static criterion vs. model checking: the paper's cost argument, on one page.

The paper's motivation is a trade-off: model-checking weak endochrony
explores a reaction space that grows exponentially with the number of
independently paced components, while the weakly-hierarchic criterion only
runs the clock calculus on each component and on the composition.  This
example builds pipelines of increasing size and times both approaches
(the benchmark ``benchmarks/bench_static_vs_modelcheck.py`` does the same
with pytest-benchmark rigor).

Run with:  python examples/compositional_checking.py
"""

import time

from repro.library.generators import pipeline_network
from repro.mc.transition import build_lts
from repro.properties.composition import check_weakly_hierarchic
from repro.properties.weak_endochrony import check_weak_endochrony


def main() -> None:
    print(f"{'components':>10} | {'static criterion':>18} | {'model checking':>16} | states")
    print("-" * 70)
    for size in (1, 2, 3, 4):
        components, composition = pipeline_network(size)

        start = time.perf_counter()
        verdict = check_weakly_hierarchic(components, composition=composition)
        static_seconds = time.perf_counter() - start

        start = time.perf_counter()
        lts = build_lts(composition, max_states=256)
        report = check_weak_endochrony(composition, lts=lts)
        checking_seconds = time.perf_counter() - start

        assert verdict.weakly_hierarchic() == report.holds()
        print(
            f"{size:>10} | {static_seconds * 1000:>15.1f} ms | {checking_seconds * 1000:>13.1f} ms |"
            f" {lts.state_count()} states / {lts.transition_count()} reactions"
        )
    print()
    print(
        "Both approaches agree on the verdict; the static criterion's cost grows\n"
        "with the size of the clock algebra, while the model checker's grows with\n"
        "the product of the components' reaction spaces."
    )


if __name__ == "__main__":
    main()
