#!/usr/bin/env python3
"""Static criterion vs. model checking: the paper's cost argument, on one page.

The paper's motivation is a trade-off: model-checking weak endochrony
explores a reaction space that grows exponentially with the number of
independently paced components, while the weakly-hierarchic criterion only
runs the clock calculus on each component and on the composition.  This
example builds pipelines of increasing size in a :class:`repro.Design`
session and compares ``verify("weak-endochrony", method="static")`` against
``method="explicit"`` — the Verdict's cost field carries both the time and
the explored state space, so the comparison reads off directly.

Run with:  python examples/compositional_checking.py
"""

from repro import Design
from repro.library.generators import pipeline_network


def main() -> None:
    print(f"{'components':>10} | {'static criterion':>18} | {'model checking':>16} | states")
    print("-" * 70)
    for size in (1, 2, 3, 4):
        components, composition = pipeline_network(size)
        design = Design(name=composition.name, components=list(components))

        static = design.verify("weak-endochrony", method="static")
        explicit = design.verify("weak-endochrony", method="explicit", max_states=256)

        assert static.holds == explicit.holds
        print(
            f"{size:>10} | {static.cost.seconds * 1000:>15.1f} ms |"
            f" {explicit.cost.seconds * 1000:>13.1f} ms |"
            f" {explicit.cost.states} states / {explicit.cost.transitions} reactions"
        )
    print()
    print(
        "Both approaches agree on the verdict; the static criterion's cost grows\n"
        "with the size of the clock algebra, while the model checker's grows with\n"
        "the product of the components' reaction spaces.  The session reuses the\n"
        "per-component analyses between the two calls (and across properties)."
    )


if __name__ == "__main__":
    main()
