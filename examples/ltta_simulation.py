#!/usr/bin/env python3
"""The loosely time-triggered architecture of Section 4.2, simulated end to end.

The LTTA is built from four endochronous devices — a writer, two one-place
buffers (the bus) and a reader — each paced by its own clock.  The example

1. checks each device and the composition with the compositional criterion
   (the LTTA is *not* endochronous: its hierarchy has four roots, one per
   device; but it *is* weakly hierarchic, hence isochronous);
2. simulates the architecture with independently drifting device clocks and
   shows that the reader recovers exactly the flow of values the writer
   produced — the alternating-bit protocol at work on top of isochrony.

Run with:  python examples/ltta_simulation.py
"""

import random

from repro import Design
from repro.library.ltta import ltta_components, normalized_suite
from repro.semantics.interpreter import ABSENT, SignalInterpreter


def analyse() -> None:
    components = ltta_components()
    design = Design(name="ltta", components=list(components.values()))
    print("per-device analysis:")
    for analysis in design.component_analyses():
        print(
            f"  {analysis.process.name:<12} compilable={analysis.is_compilable()}  "
            f"roots={analysis.root_count()}  endochronous={analysis.is_hierarchic()}"
        )
    print()
    print(design.verify("weakly-hierarchic"))
    print()
    full = normalized_suite()["ltta"]
    roots = design.context.analysis(full).root_count()
    print(f"hierarchy roots of the whole LTTA: {roots} (one per device)")
    print()


def simulate(samples: int = 8, seed: int = 2008) -> None:
    """Drive the devices with drifting clocks that respect the LTTA rate condition.

    The LTTA tolerates clock drift as long as the bus and the reader are at
    least as fast as the writer (otherwise values are overwritten before being
    fetched — the paper inherits this condition from the original LTTA
    protocol).  The simulation below writes one value per "writer period",
    lets the two bus buffers shuttle it, and lets the reader sample the bus a
    random number of times (one to three) per period: the alternating flag
    guarantees each value is extracted exactly once despite the oversampling.
    """
    rng = random.Random(seed)
    components = ltta_components()
    writer = SignalInterpreter(components["writer"])
    stage1 = SignalInterpreter(components["bus_stage1"])
    stage2 = SignalInterpreter(components["bus_stage2"])
    reader = SignalInterpreter(components["reader"])

    produced = [100 + index for index in range(samples)]
    received = []

    for value in produced:
        # writer period: one fresh value with its alternating flag
        result = writer.step({"xw": value, "cw": True})
        writer_latch = (result.value("yw"), result.value("bw"))

        # the bus buffers fetch and forward (each one store instant + one load instant)
        stage1.step({"yw": writer_latch[0], "bw": writer_latch[1]})
        emitted = stage1.step({"yw": ABSENT, "bw": ABSENT}, assume={"bus_stage1_t": True})
        stage1_latch = (emitted.value("yb"), emitted.value("bb"))
        stage2.step({"yb": stage1_latch[0], "bb": stage1_latch[1]})
        emitted = stage2.step({"yb": ABSENT, "bb": ABSENT}, assume={"bus_stage2_t": True})
        bus_latch = (emitted.value("yr"), emitted.value("br"))

        # reader period(s): it may sample the same bus content several times,
        # but extracts the value only when the alternating flag changes
        for _ in range(rng.randint(1, 3)):
            result = reader.step({"yr": bus_latch[0], "br": bus_latch[1], "cr": True})
            if result.present("xr"):
                received.append(result.value("xr"))

    print(f"written  flow: {produced}")
    print(f"received flow: {received}")
    ok = received == produced
    print(f"the reader recovers the writer's flow, in order and without duplication: {ok}")


def main() -> None:
    analyse()
    simulate()


if __name__ == "__main__":
    main()
