#!/usr/bin/env python3
"""The producer / consumer case study of Section 5: three code generation schemes.

* the *current scheme* (Section 5.1): the composition is made endochronous by
  adding master-clock inputs ``C_a`` and ``C_b`` that the environment must
  synchronize;
* the *contributed scheme* (Section 5.2): the components are compiled
  separately and a synthesized controller enforces the reported clock
  constraint ``[¬a] = [b]`` by rendez-vous, without touching the interface;
* the *concurrent scheme*: same controller decisions, but one thread per
  component and barriers at the rendez-vous.

All three produce the same flows on the same inputs — that is isochrony at
work.

Run with:  python examples/producer_consumer_codegen.py
"""

from repro import StreamIO, analyze, check_weakly_hierarchic, compile_process
from repro.codegen.concurrent import run_concurrent
from repro.codegen.controller import synthesize_controller
from repro.library.producer_consumer import normalized_suite


def main() -> None:
    suite = normalized_suite()
    producer, consumer, main_process = suite["producer"], suite["consumer"], suite["main"]

    # -- the compositional criterion ------------------------------------------
    verdict = check_weakly_hierarchic([producer, consumer], composition_name="main")
    print(verdict)
    print()

    # The monolithic (Section 5.1) scheme needs the environment to respect the
    # clock constraint [¬a] = [b] at every synchronized step, so the example
    # uses an input pattern where the two sides alternate in lockstep; the
    # controller scheme would also accept patterns where one side drifts ahead
    # (it suspends the early side until the rendez-vous).
    inputs = {
        "a": [True, False, True, True, False, True],
        "b": [False, True, False, False, True, False],
    }

    # -- Section 5.1: current scheme with master clocks -------------------------
    monolithic = compile_process(analyze(main_process), master_clocks=True)
    print(f"current scheme adds master clocks: {monolithic.master_clock_inputs}")
    io_51 = StreamIO(
        {
            "C_a": [True] * len(inputs["a"]),
            "C_b": [True] * len(inputs["b"]),
            "a": list(inputs["a"]),
            "b": list(inputs["b"]),
        }
    )
    monolithic.run(io_51)
    print(f"  u = {io_51.output('u')}")
    print(f"  v = {io_51.output('v')}")
    print()

    # -- Section 5.2: controller synthesis -----------------------------------------
    compiled_producer = compile_process(producer)
    compiled_consumer = compile_process(consumer)
    controlled = synthesize_controller([compiled_producer, compiled_consumer], verdict)
    print("synthesized rendez-vous constraints:")
    for constraint in controlled.constraints:
        print(f"  {constraint}")
    io_52 = StreamIO({name: list(values) for name, values in inputs.items()})
    controlled.run(io_52)
    print(f"  u = {io_52.output('u')}")
    print(f"  v = {io_52.output('v')}")
    print()
    print("controlled main loop (C-like listing):")
    print(controlled.c_listing())
    print()

    # -- concurrent scheme ------------------------------------------------------------
    compiled_producer.reset()
    compiled_consumer.reset()
    concurrent_outputs = run_concurrent(
        [compiled_producer, compiled_consumer], controlled.constraints, inputs
    )
    print("concurrent (threads + barriers) outputs:")
    print(f"  u = {concurrent_outputs.get('u')}")
    print(f"  v = {concurrent_outputs.get('v')}")
    print()

    same = (
        io_51.output("u") == io_52.output("u") == concurrent_outputs.get("u")
        and io_51.output("v") == io_52.output("v") == concurrent_outputs.get("v")
    )
    print(f"all three schemes produce the same flows: {same}")


if __name__ == "__main__":
    main()
