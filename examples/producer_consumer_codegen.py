#!/usr/bin/env python3
"""The producer / consumer case study of Section 5: three code generation schemes.

* the *current scheme* (Section 5.1): the composition is made endochronous by
  adding master-clock inputs that the environment must synchronize;
* the *contributed scheme* (Section 5.2): the components are compiled
  separately and a synthesized controller enforces the reported clock
  constraint ``[¬a] = [b]`` by rendez-vous, without touching the interface;
* the *concurrent scheme*: same controller decisions, but one thread per
  component and barriers at the rendez-vous.

All three are one ``design.compile(strategy)`` call on the same
:class:`repro.Design` session — the criterion, the per-component analyses
and the synthesized constraints are computed once and shared.  All three
produce the same flows on the same inputs: that is isochrony at work.

Run with:  python examples/producer_consumer_codegen.py
"""

from repro import Design
from repro.library.producer_consumer import normalized_suite


def main() -> None:
    suite = normalized_suite()
    design = Design(name="main", components=[suite["producer"], suite["consumer"]])

    # -- the compositional criterion, as a structured Verdict ------------------
    verdict = design.verify("weakly-hierarchic")
    print(verdict)
    print()

    # The monolithic (Section 5.1) scheme needs the environment to respect the
    # clock constraint [¬a] = [b] at every synchronized step, so the example
    # uses an input pattern where the two sides alternate in lockstep; the
    # controller scheme would also accept patterns where one side drifts ahead
    # (it suspends the early side until the rendez-vous).
    inputs = {
        "a": [True, False, True, True, False, True],
        "b": [False, True, False, False, True, False],
    }

    # -- Section 5.1: current scheme with master clocks -------------------------
    monolithic = design.compile("sequential", master_clocks=True)
    print(f"current scheme adds master clocks: {monolithic.master_clock_inputs}")
    feed_51 = {name: list(values) for name, values in inputs.items()}
    for master in monolithic.master_clock_inputs:
        feed_51[master] = [True] * len(inputs["a"])
    flows_51 = monolithic.run(feed_51)
    print(f"  u = {flows_51['u']}")
    print(f"  v = {flows_51['v']}")
    print()

    # -- Section 5.2: controller synthesis -----------------------------------------
    controlled = design.compile("controlled")
    print("synthesized rendez-vous constraints:")
    for constraint in controlled.constraints:
        print(f"  {constraint}")
    flows_52 = controlled.run(inputs)
    print(f"  u = {flows_52['u']}")
    print(f"  v = {flows_52['v']}")
    print()
    print("controlled main loop (C-like listing):")
    print(controlled.listing())
    print()

    # -- concurrent scheme ------------------------------------------------------------
    concurrent_flows = design.compile("concurrent").run(inputs)
    print("concurrent (threads + barriers) outputs:")
    print(f"  u = {concurrent_flows['u']}")
    print(f"  v = {concurrent_flows['v']}")
    print()

    same = (
        flows_51["u"] == flows_52["u"] == concurrent_flows["u"]
        and flows_51["v"] == flows_52["v"] == concurrent_flows["v"]
    )
    print(f"all three schemes produce the same flows: {same}")


if __name__ == "__main__":
    main()
