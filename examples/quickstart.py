#!/usr/bin/env python3
"""Quickstart: one Design session from source text to running code.

This walks through the paper's introductory example — the ``filter`` process
that emits an event every time its boolean input changes value — using the
:class:`repro.Design` facade, the single entry point for the paper's whole
pipeline:

1. build a design (from source text, a builder, or process objects) and
   inspect its clock hierarchy;
2. ``verify()`` its properties — every answer is a structured Verdict;
3. ``compile()`` it to a deployment and ``run()`` it on input flows.

Run with:  python examples/quickstart.py
"""

from repro import Design, SignalInterpreter
from repro.lang.printer import format_normalized_process

FILTER_SOURCE = """
process filter (y) returns (x) {
  local z;
  x := true when (y /= z);
  z := y pre true;
}
"""


def main() -> None:
    # -- 1. one session for the whole pipeline --------------------------------
    design = Design.from_source(FILTER_SOURCE)
    print("normalized process")
    print(format_normalized_process(design.composition))
    print()
    print("clock hierarchy (single root => endochronous):")
    print(design.analysis.hierarchy.describe())
    print()

    # -- 2. verification: every answer is a Verdict ----------------------------
    for prop in ("compilable", "hierarchic", "endochrony", "weak-endochrony"):
        verdict = design.verify(prop)
        print(f"  {prop:<16} holds={str(verdict.holds):<5} "
              f"[{verdict.method}, {verdict.cost}]")
    print()

    # the same analysis artefacts back the interpreter...
    interpreter = SignalInterpreter(design.composition)
    stream = [True, False, False, True, True, False]
    print(f"input flow  y: {stream}")
    emitted = []
    for value in stream:
        result = interpreter.step({"y": value})
        emitted.append("x" if result.present("x") else ".")
    print(f"output x emitted at instants: {' '.join(emitted)}  (paper: t2, t4, t6)")
    print()

    # -- 3. ...and code generation: compile() returns a Deployment -------------
    deployment = design.compile("sequential")
    print("generated step function:")
    print(deployment.compiled.python_source)
    flows = deployment.run({"y": stream})
    print(f"simulated output flow x = {flows['x']}")
    print()
    print("C-like listing (paper, Section 3.6 style):")
    print(deployment.listing())


if __name__ == "__main__":
    main()
