#!/usr/bin/env python3
"""Quickstart: define a Signal process, analyse it, simulate it, generate code.

This walks through the paper's introductory example — the ``filter`` process
that emits an event every time its boolean input changes value — and shows
the three ways of using the library:

1. build a process (programmatically or from text) and inspect its clock
   hierarchy;
2. execute it with the interpreter;
3. generate and run its sequential step function (the paper's transition
   function).

Run with:  python examples/quickstart.py
"""

from repro import ProcessBuilder, StreamIO, analyze, compile_process, const, signal
from repro.lang.parser import parse_process
from repro.lang.printer import format_normalized_process
from repro.semantics.interpreter import SignalInterpreter


def build_filter():
    """The paper's filter: x = true when (y /= z) | z = y pre true."""
    builder = ProcessBuilder("filter", inputs=["y"], outputs=["x"])
    builder.local("z")
    builder.define("x", const(True).when(signal("y").ne(signal("z"))))
    builder.define("z", signal("y").pre(True))
    return builder.build()


def main() -> None:
    # -- 1. analysis -------------------------------------------------------
    definition = build_filter()
    analysis = analyze(definition)
    print("normalized process")
    print(format_normalized_process(analysis.process))
    print()
    print("clock hierarchy (single root => endochronous):")
    print(analysis.hierarchy.describe())
    print()
    print(f"compilable: {analysis.is_compilable()}   hierarchic: {analysis.is_hierarchic()}")
    print()

    # the same process, written in the textual Signal-like syntax
    parsed = parse_process(
        """
        process filter (y) returns (x) {
          local z;
          x := true when (y /= z);
          z := y pre true;
        }
        """
    )
    assert analyze(parsed).is_hierarchic()

    # -- 2. interpretation ---------------------------------------------------
    interpreter = SignalInterpreter(analysis.process)
    stream = [True, False, False, True, True, False]
    print(f"input flow  y: {stream}")
    emitted = []
    for value in stream:
        result = interpreter.step({"y": value})
        emitted.append("x" if result.present("x") else ".")
    print(f"output x emitted at instants: {' '.join(emitted)}  (paper: t2, t4, t6)")
    print()

    # -- 3. code generation ---------------------------------------------------
    compiled = compile_process(analysis)
    print("generated step function:")
    print(compiled.python_source)
    io = StreamIO({"y": stream})
    steps = compiled.run(io)
    print(f"simulated {steps} steps, output flow x = {io.output('x')}")
    print()
    print("C-like listing (paper, Section 3.6 style):")
    print(compiled.c_source)


if __name__ == "__main__":
    main()
