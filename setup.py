"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that legacy (non-PEP-517) editable installs — ``pip install -e .`` on
machines without the ``wheel`` package — keep working.
"""

from setuptools import setup

setup()
