"""repro — compositional design of isochronous systems.

A Python reproduction of "Compositional design of isochronous systems"
(Talpin, Ouy, Besnard, Le Guernic — DATE 2008 / INRIA RR-6227): the Signal
language and its polychronous model of computation, the clock calculus of
Polychrony (clock hierarchy, disjunctive form, scheduling graph), the formal
properties of the paper (endochrony, weak endochrony, isochrony,
non-blocking), the static *weakly hierarchic* compositional criterion of
Definition 12 / Theorem 1, and the sequential, controlled and concurrent code
generation schemes of Sections 3.6 and 5.

The primary public API is the :class:`Design` session facade of
:mod:`repro.api` — one entry point for the paper's whole pipeline
(analyze → verify → compile → deploy), with every analysis artefact shared
and memoized across components and queries::

    from repro import Design, signal, const

    design = Design.from_source(
        '''
        process filter (y) returns (x) {
          local z;
          x := true when (y /= z);
          z := y pre true;
        }
        '''
    )
    assert design.verify("endochrony")            # Verdict, truthy when it holds
    assert design.verify("weak-endochrony")       # static criterion (Theorem 1)
    deployment = design.compile("sequential")     # Section 3.6 step function
    flows = deployment.run({"y": [True, False, False, True]})

The historical flat entry points (``analyze``, ``check_weakly_hierarchic``,
``compile_process``, ...) remain importable below as a compatibility layer;
new code should go through :class:`Design`.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.lang.ast import ProcessDefinition
from repro.lang.builder import (
    ProcessBuilder,
    SignalExpr,
    const,
    signal,
    tick,
    when_false,
    when_true,
)
from repro.lang.normalize import NormalizedProcess, normalize
from repro.lang.parser import parse_process, parse_program
from repro.lang.printer import format_normalized_process, format_process
from repro.lang.validate import ValidationError, validate_process
from repro.semantics.interpreter import ABSENT, TICK, SignalInterpreter
from repro.properties.compilable import ProcessAnalysis
from repro.properties.endochrony import is_endochronous, is_hierarchic, verify_endochrony
from repro.properties.weak_endochrony import (
    check_weak_endochrony,
    model_check_weak_endochrony,
    verify_weak_endochrony,
)
from repro.properties.isochrony import check_isochrony, verify_isochrony
from repro.properties.nonblocking import is_non_blocking, verify_non_blocking
from repro.properties.composition import (
    check_weakly_hierarchic,
    compose_and_check,
    verify_weakly_hierarchic,
)
from repro.codegen.sequential import CompiledProcess, compile_process
from repro.codegen.runtime import StreamIO, simulate
from repro.codegen.controller import ControlledComposition, synthesize_controller
from repro.codegen.concurrent import ConcurrentComposition, run_concurrent

# -- the session facade (primary API) -----------------------------------------
from repro.api.results import Cost, Diagnostic, Verdict
from repro.api.session import AnalysisContext, Design
from repro.api.session import analyze as _analyze
from repro.api.backends import VerificationError
from repro.api.deploy import Deployment, DeploymentError

__version__ = "1.1.0"

__all__ = [
    # session facade
    "Design",
    "AnalysisContext",
    "Verdict",
    "Diagnostic",
    "Cost",
    "Deployment",
    "DeploymentError",
    "VerificationError",
    "analyze",
    # language layer
    "ProcessBuilder",
    "SignalExpr",
    "signal",
    "const",
    "tick",
    "when_true",
    "when_false",
    "ProcessDefinition",
    "NormalizedProcess",
    "normalize",
    "parse_process",
    "parse_program",
    "format_process",
    "format_normalized_process",
    "validate_process",
    "ValidationError",
    # semantics
    "ABSENT",
    "TICK",
    "SignalInterpreter",
    # properties (compatibility layer; prefer Design.verify)
    "ProcessAnalysis",
    "is_endochronous",
    "is_hierarchic",
    "check_weak_endochrony",
    "model_check_weak_endochrony",
    "check_isochrony",
    "is_non_blocking",
    "check_weakly_hierarchic",
    "compose_and_check",
    "verify_endochrony",
    "verify_weak_endochrony",
    "verify_isochrony",
    "verify_non_blocking",
    "verify_weakly_hierarchic",
    # code generation (compatibility layer; prefer Design.compile)
    "CompiledProcess",
    "compile_process",
    "StreamIO",
    "simulate",
    "ControlledComposition",
    "synthesize_controller",
    "ConcurrentComposition",
    "run_concurrent",
]


def analyze(
    process: Union[ProcessDefinition, NormalizedProcess, ProcessBuilder, str],
    registry: Optional[Mapping[str, ProcessDefinition]] = None,
    *,
    context: Optional[AnalysisContext] = None,
) -> ProcessAnalysis:
    """Analyse a process: normalize it (if needed) and build its analysis pipeline.

    This is the single canonical code path (also behind the deprecated
    ``ProcessAnalysis.of``); pass an :class:`AnalysisContext` — or use a
    :class:`Design` session — to memoize the work and share one BDD manager
    across repeated analyses.
    """
    return _analyze(process, registry, context=context)
