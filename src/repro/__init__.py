"""repro — compositional design of isochronous systems.

A Python reproduction of "Compositional design of isochronous systems"
(Talpin, Ouy, Besnard, Le Guernic — DATE 2008 / INRIA RR-6227): the Signal
language and its polychronous model of computation, the clock calculus of
Polychrony (clock hierarchy, disjunctive form, scheduling graph), the formal
properties of the paper (endochrony, weak endochrony, isochrony,
non-blocking), the static *weakly hierarchic* compositional criterion of
Definition 12 / Theorem 1, and the sequential, controlled and concurrent code
generation schemes of Sections 3.6 and 5.

Typical use::

    from repro import ProcessBuilder, signal, const, analyze

    builder = ProcessBuilder("filter", inputs=["y"], outputs=["x"])
    builder.local("z")
    builder.define("x", const(True).when(signal("y").ne(signal("z"))))
    builder.define("z", signal("y").pre(True))
    analysis = analyze(builder.build())
    assert analysis.is_compilable() and analysis.is_hierarchic()
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from repro.lang.ast import ProcessDefinition
from repro.lang.builder import (
    ProcessBuilder,
    SignalExpr,
    const,
    signal,
    tick,
    when_false,
    when_true,
)
from repro.lang.normalize import NormalizedProcess, normalize
from repro.lang.parser import parse_process, parse_program
from repro.lang.printer import format_normalized_process, format_process
from repro.lang.validate import ValidationError, validate_process
from repro.semantics.interpreter import ABSENT, TICK, SignalInterpreter
from repro.properties.compilable import ProcessAnalysis
from repro.properties.endochrony import is_endochronous, is_hierarchic
from repro.properties.weak_endochrony import check_weak_endochrony, model_check_weak_endochrony
from repro.properties.isochrony import check_isochrony
from repro.properties.nonblocking import is_non_blocking
from repro.properties.composition import check_weakly_hierarchic, compose_and_check
from repro.codegen.sequential import CompiledProcess, compile_process
from repro.codegen.runtime import StreamIO, simulate
from repro.codegen.controller import ControlledComposition, synthesize_controller
from repro.codegen.concurrent import ConcurrentComposition, run_concurrent

__version__ = "1.0.0"

__all__ = [
    "ProcessBuilder",
    "SignalExpr",
    "signal",
    "const",
    "tick",
    "when_true",
    "when_false",
    "ProcessDefinition",
    "NormalizedProcess",
    "normalize",
    "parse_process",
    "parse_program",
    "format_process",
    "format_normalized_process",
    "validate_process",
    "ValidationError",
    "ABSENT",
    "TICK",
    "SignalInterpreter",
    "ProcessAnalysis",
    "analyze",
    "is_endochronous",
    "is_hierarchic",
    "check_weak_endochrony",
    "model_check_weak_endochrony",
    "check_isochrony",
    "is_non_blocking",
    "check_weakly_hierarchic",
    "compose_and_check",
    "CompiledProcess",
    "compile_process",
    "StreamIO",
    "simulate",
    "ControlledComposition",
    "synthesize_controller",
    "ConcurrentComposition",
    "run_concurrent",
]


def analyze(
    process: Union[ProcessDefinition, NormalizedProcess],
    registry: Optional[Mapping[str, ProcessDefinition]] = None,
) -> ProcessAnalysis:
    """Analyse a process: normalize it (if needed) and build its analysis pipeline."""
    if isinstance(process, ProcessDefinition):
        process = normalize(process, registry)
    return ProcessAnalysis(process)
