"""``repro.api`` — the session facade of the library.

One entry point for the paper's whole pipeline::

    from repro.api import Design

    design = Design.from_source(source)        # or .from_builder(...), .add_component(...)
    verdict = design.verify("weak-endochrony") # static criterion, MC fallback
    deployment = design.compile("controlled")  # or sequential/concurrent/ltta
    flows = deployment.run(inputs)

* :mod:`repro.api.session` — the :class:`Design` session object and the
  :class:`AnalysisContext` that memoizes normalization, analyses and one
  shared BDD manager across components and repeated queries;
* :mod:`repro.api.artifacts` — the digest-keyed :class:`ArtifactGraph`
  every pipeline stage of a context resolves through (memory tier + the
  service's artifact store as persistent tier);
* :mod:`repro.api.results` — the uniform :class:`Verdict` / :class:`Diagnostic`
  result model;
* :mod:`repro.api.backends` — dispatch between the static criterion and the
  on-the-fly explicit / symbolic model checkers;
* :mod:`repro.api.parallel` — process-pool sharding behind
  ``Design.verify_many(parallel=N)`` and ``Design.map_components``;
* :mod:`repro.api.deploy` — the four deployment schemes behind one
  :class:`Deployment` interface.

Submodules are loaded lazily (PEP 562) so that the property modules can
import :mod:`repro.api.results` without creating an import cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

_EXPORTS = {
    "Design": "repro.api.session",
    "AnalysisContext": "repro.api.session",
    "analyze": "repro.api.session",
    "ArtifactGraph": "repro.api.artifacts",
    "Verdict": "repro.api.results",
    "Diagnostic": "repro.api.results",
    "Cost": "repro.api.results",
    "verify": "repro.api.backends",
    "VerificationError": "repro.api.backends",
    "PROPERTIES": "repro.api.backends",
    "METHODS": "repro.api.backends",
    "Deployment": "repro.api.deploy",
    "DeploymentError": "repro.api.deploy",
    "SequentialDeployment": "repro.api.deploy",
    "ControlledDeployment": "repro.api.deploy",
    "ConcurrentDeployment": "repro.api.deploy",
    "LttaDeployment": "repro.api.deploy",
    "STRATEGIES": "repro.api.deploy",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.api.backends import METHODS, PROPERTIES, VerificationError, verify
    from repro.api.deploy import (
        STRATEGIES,
        ConcurrentDeployment,
        ControlledDeployment,
        Deployment,
        DeploymentError,
        LttaDeployment,
        SequentialDeployment,
    )
    from repro.api.artifacts import ArtifactGraph
    from repro.api.results import Cost, Diagnostic, Verdict
    from repro.api.session import AnalysisContext, Design, analyze


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
