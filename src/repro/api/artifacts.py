"""The digest-keyed artifact graph — one cache for every pipeline stage.

Every product of the verification pipeline — normalization, the
:class:`~repro.properties.compilable.ProcessAnalysis`, the clock hierarchy,
the compiled BDD step relation, explored LTSs and on-the-fly engines,
per-component property diagnoses, composition-level obligations, completed
verdicts — is a **node** of one graph, keyed by

    (content digest, stage, fingerprint)

where the digest is the α-invariant content address of the process(es) the
artifact was derived from (:func:`repro.lang.printer.canonical_digest`), the
stage names the pipeline step, and the fingerprint carries whatever else the
artifact depends on (the exact α-sensitive spelling for name-carrying
artifacts, exploration bounds, engine choice, query options).

Nodes are resolved through tiers:

1. the **memory tier** — a plain dict, the per-session memo that used to be
   a handful of ad-hoc ``id()``-keyed dicts on ``AnalysisContext``;
2. the **store tier** — any object with ``get(digest, kind)`` /
   ``put(digest, kind, payload)`` over JSON payloads (in practice the
   content-addressed :class:`~repro.service.store.ArtifactStore`).  A stage
   opts in by passing a ``kind`` plus ``encode``/``decode`` codecs; a decode
   that raises ``KeyError``/``ValueError``/``TypeError`` is a *miss*
   (format bump, α-variant payload), never a wrong answer.

Because the keys are content digests, edits invalidate by *construction*:
changing a component changes its digest, so its old artifacts simply stop
being addressed while every untouched component keeps hitting its existing
nodes — the paper's per-component obligations surviving composition,
expressed as a cache policy.  Explicit :meth:`ArtifactGraph.invalidate` is
memory hygiene on top: dependency edges are recorded automatically whenever
one node is resolved while another is being computed, so dropping a digest
also drops everything downstream of it (composition obligations, design
verdicts, product engines) and the per-stage ``invalidated`` counters say
exactly what an edit cost.

Per-stage counters (``hits`` / ``store_hits`` / ``computed`` / ``stored`` /
``invalid`` / ``invalidated``) are the instrumentation the incremental
tests and ``benchmarks/bench_incremental.py`` pin their claims on, surfaced
through ``Design.stats()`` and the service's ``stats`` operation.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.obs import trace as obs_trace

#: (content digest, stage name, fingerprint) — the identity of one artifact
ArtifactKey = Tuple[str, str, str]

#: counter fields every stage reports
COUNTER_FIELDS = ("hits", "store_hits", "computed", "stored", "invalid", "invalidated")

#: exceptions a decode codec may raise to signal "payload unusable: recompute"
DECODE_MISS = (KeyError, ValueError, TypeError)


def verdict_kind(prop: str, method: str, options_key: str) -> str:
    """The store object kind of one persisted verdict query.

    Shared by the session facade and the service layer, so a verdict a
    :class:`~repro.api.session.Design` persists is the very object a
    :class:`~repro.service.scheduler.VerificationService` (or another
    session) answers the repeat query from.
    """
    token = hashlib.sha256(
        f"{prop}\x00{method}\x00{options_key}".encode("utf-8")
    ).hexdigest()[:16]
    return f"verdict-{token}"


class ArtifactGraph:
    """Digest-keyed artifact nodes over a memory tier and an optional store.

    ``store`` is any object with ``get(digest, kind) -> Optional[dict]`` and
    ``put(digest, kind, payload)``; it may be attached after construction
    (the service wires its :class:`~repro.service.store.ArtifactStore` into
    already-registered sessions).
    """

    def __init__(self, store: Optional[object] = None):
        self.store = store
        self._memory: Dict[ArtifactKey, object] = {}
        #: strong references that keep id()-derived fingerprints valid
        self._keep: Dict[ArtifactKey, Tuple[object, ...]] = {}
        self._by_digest: Dict[str, Set[ArtifactKey]] = {}
        #: key -> keys that were resolved while computing it
        self._dependencies: Dict[ArtifactKey, Set[ArtifactKey]] = {}
        #: key -> keys whose computation resolved it (reverse edges)
        self._dependents: Dict[ArtifactKey, Set[ArtifactKey]] = {}
        self._stack: List[ArtifactKey] = []
        self.counters: Dict[str, Dict[str, int]] = {}
        #: cumulative compute *self*-time per stage (descendant stages
        #: excluded) — the per-stage breakdown ``Verdict.cost`` surfaces
        self.stage_seconds: Dict[str, float] = {}
        #: child-elapsed accumulator parallel to ``_stack``
        self._child_seconds: List[float] = []

    # -- counters -----------------------------------------------------------------
    def _count(self, stage: str, event: str, amount: int = 1) -> None:
        counters = self.counters.get(stage)
        if counters is None:
            counters = self.counters[stage] = {field: 0 for field in COUNTER_FIELDS}
        counters[event] += amount

    @property
    def hits(self) -> int:
        """Memory-tier hits across all stages (the historical ``hits`` counter)."""
        return sum(counters["hits"] for counters in self.counters.values())

    @property
    def store_hits(self) -> int:
        return sum(counters["store_hits"] for counters in self.counters.values())

    @property
    def computed(self) -> int:
        """Artifacts actually computed (the historical ``misses`` counter)."""
        return sum(counters["computed"] for counters in self.counters.values())

    # -- the resolution protocol ----------------------------------------------------
    def _edge(self, key: ArtifactKey) -> None:
        """Record that the node currently being computed depends on ``key``."""
        if not self._stack:
            return
        parent = self._stack[-1]
        if parent == key:
            return
        self._dependencies.setdefault(parent, set()).add(key)
        self._dependents.setdefault(key, set()).add(parent)

    def _remember(
        self, key: ArtifactKey, value: object, keep: Optional[Tuple[object, ...]]
    ) -> None:
        self._memory[key] = value
        self._by_digest.setdefault(key[0], set()).add(key)
        if keep:
            self._keep[key] = tuple(keep)

    def resolve(
        self,
        stage: str,
        digest: str,
        fingerprint: str = "",
        *,
        compute: Callable[[], object],
        kind: Optional[str] = None,
        encode: Optional[Callable[[object], Optional[dict]]] = None,
        decode: Optional[Callable[[dict], object]] = None,
        keep: Optional[Tuple[object, ...]] = None,
    ) -> object:
        """The artifact at ``(digest, stage, fingerprint)``, computing at most once.

        Resolution order: memory tier → store tier (only when ``kind`` names
        a persistent object and a store is attached) → ``compute()``.  A
        computed value is remembered in memory and — when ``encode`` yields
        a payload — persisted to the store under ``(digest, kind)``.
        ``None`` is a legitimate artifact value (e.g. "outside the compiled
        fragment"); only a decode raising one of :data:`DECODE_MISS` forces
        a recompute.  Dependency edges are recorded automatically: any node
        resolved while ``compute()`` runs becomes a dependency of this one.
        """
        key: ArtifactKey = (digest, stage, fingerprint)
        self._edge(key)
        if key in self._memory:
            self._count(stage, "hits")
            if obs_trace.TRACING:
                obs_trace.add_event(
                    "artifact.hit", stage=stage, digest=digest[:12], tier="memory"
                )
            return self._memory[key]
        if kind is not None and self.store is not None:
            payload = self.store.get(digest, kind)
            if payload is not None:
                try:
                    value = decode(payload) if decode is not None else payload
                except DECODE_MISS:
                    self._count(stage, "invalid")
                else:
                    self._count(stage, "store_hits")
                    if obs_trace.TRACING:
                        obs_trace.add_event(
                            "artifact.hit",
                            stage=stage,
                            digest=digest[:12],
                            tier="store",
                        )
                    self._remember(key, value, keep)
                    return value
        self._count(stage, "computed")
        self._stack.append(key)
        self._child_seconds.append(0.0)
        compute_span = (
            obs_trace.get_tracer().start_span(
                f"artifact.{stage}", tags={"stage": stage, "digest": digest[:12]}
            )
            if obs_trace.TRACING
            else obs_trace.NULL_SPAN
        )
        token = (
            obs_trace.push(compute_span)
            if compute_span is not obs_trace.NULL_SPAN
            else None
        )
        started = time.perf_counter()
        try:
            value = compute()
        finally:
            elapsed = time.perf_counter() - started
            child_total = self._child_seconds.pop()
            self._stack.pop()
            self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + (
                elapsed - child_total
            )
            if self._child_seconds:
                self._child_seconds[-1] += elapsed
            if token is not None:
                obs_trace.pop(token)
                compute_span.set_tag("self_seconds", round(elapsed - child_total, 6))
                compute_span.finish()
                obs_trace.get_tracer().record(compute_span)
        self._remember(key, value, keep)
        if kind is not None and self.store is not None and encode is not None:
            payload = encode(value)
            if payload is not None:
                self.store.put(digest, kind, payload)
                self._count(stage, "stored")
        return value

    # -- invalidation ----------------------------------------------------------------
    def invalidate(self, digest: str) -> int:
        """Drop every memory node of ``digest`` and everything downstream of one.

        Content addressing makes this *hygiene*, not correctness: a node
        keyed by an old digest is still a true statement about the old
        content, it just stops being addressed once the content changed.
        Dropping the closure bounds the memory tier after edits and feeds
        the per-stage ``invalidated`` counters.  Returns the number of
        nodes dropped.  The store tier is never touched — persisted
        artifacts remain valid for their content forever.
        """
        frontier = list(self._by_digest.get(digest, ()))
        closure: Set[ArtifactKey] = set()
        while frontier:
            key = frontier.pop()
            if key in closure:
                continue
            closure.add(key)
            frontier.extend(self._dependents.get(key, ()))
        for key in closure:
            if key in self._memory:
                del self._memory[key]
                self._count(key[1], "invalidated")
            self._keep.pop(key, None)
            self._by_digest.get(key[0], set()).discard(key)
            for dependency in self._dependencies.pop(key, ()):
                self._dependents.get(dependency, set()).discard(key)
            self._dependents.pop(key, None)
        return len(closure)

    # -- introspection -----------------------------------------------------------------
    def nodes(self, stage: Optional[str] = None) -> List[Tuple[ArtifactKey, object]]:
        """``(key, value)`` pairs of the memory tier, optionally one stage's."""
        return [
            (key, value)
            for key, value in self._memory.items()
            if stage is None or key[1] == stage
        ]

    def dependencies_of(self, key: ArtifactKey) -> Tuple[ArtifactKey, ...]:
        return tuple(sorted(self._dependencies.get(key, ())))

    def stats(self) -> Dict[str, object]:
        """Per-stage counters plus memory-tier totals — JSON-safe."""
        stages = {
            stage: dict(counters) for stage, counters in sorted(self.counters.items())
        }
        return {
            "stages": stages,
            "stage_seconds": {
                stage: round(seconds, 6)
                for stage, seconds in sorted(self.stage_seconds.items())
            },
            "nodes": len(self._memory),
            "edges": sum(len(deps) for deps in self._dependencies.values()),
            "hits": self.hits,
            "store_hits": self.store_hits,
            "computed": self.computed,
        }
