"""Verification backends: one ``verify(design, prop, method)`` dispatcher.

The paper offers two routes to the same guarantees: the *static* route (the
clock calculus — compilability, hierarchies, and the weakly hierarchic
criterion of Definition 12, whose Theorem 1 yields weak endochrony,
non-blocking and isochrony without exploring any state space) and the
*model-checking* route (the reaction LTS of the boolean abstraction, either
checked directly against Definition 2 or through the invariant formulation
of Section 4.1 that the paper targets at Sigali).

``method="auto"`` encodes the paper's preference: try the static criterion
first; only when it does not conclude (e.g. a non-hierarchic component) fall
back to model checking, and say so in the verdict's diagnostics.

The model-checking fallback runs on the **compiled** reaction engine by
default (:mod:`repro.mc.compiled`: per-state reactions solved from a BDD
step relation instead of guessed through the interpreter), falling back per
component to the interpreter-backed enumeration outside the compiled
fragment.  ``method="compiled"`` requests that engine explicitly;
``method="explicit"`` opts out of compilation and forces the historical
interpreter-backed enumeration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.api.results import Cost, Diagnostic, Verdict, stopwatch
from repro.mc.onthefly import OnTheFlyChecker
from repro.mc.symbolic import (
    SymbolicChecker,
    SymbolicProductChecker,
    event_variable,
    next_variable,
)
from repro.properties.compilable import verify_compilable, verify_hierarchic
from repro.properties.composition import verify_weakly_hierarchic
from repro.properties.endochrony import check_endochrony_on_traces, verify_endochrony
from repro.properties.isochrony import verify_isochrony
from repro.properties.nonblocking import verify_non_blocking
from repro.properties.weak_endochrony import verify_weak_endochrony

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Design

PROPERTIES = (
    "compilable",
    "hierarchic",
    "endochrony",
    "weak-endochrony",
    "non-blocking",
    "isochrony",
    "weakly-hierarchic",
)

METHODS = ("auto", "static", "explicit", "compiled", "symbolic")

_ALIASES = {
    "weak_endochrony": "weak-endochrony",
    "weakly_endochronous": "weak-endochrony",
    "weakly-endochronous": "weak-endochrony",
    "non_blocking": "non-blocking",
    "nonblocking": "non-blocking",
    "deadlock-free": "non-blocking",
    "endochronous": "endochrony",
    "isochronous": "isochrony",
    "weakly_hierarchic": "weakly-hierarchic",
    "composition": "weakly-hierarchic",
    "criterion": "weakly-hierarchic",
}


class VerificationError(ValueError):
    """Raised for unknown properties, unsupported methods or missing options."""


def canonical_property(prop: str) -> str:
    """Resolve alias spellings ('nonblocking', 'weak_endochrony', ...) to the
    canonical property name; unknown names raise :class:`VerificationError`."""
    prop = _ALIASES.get(prop, prop)
    if prop not in PROPERTIES:
        raise VerificationError(f"unknown property {prop!r}; expected one of {PROPERTIES}")
    return prop


def _static_weakly_hierarchic(design: "Design") -> Verdict:
    verdict = verify_weakly_hierarchic(
        design.components, design.composition, context=design.context
    )
    # reuse the design's cached CompositionVerdict for follow-up queries
    design._criterion = verdict.report
    return verdict


def _retitle(verdict: Verdict, prop: str, note: str) -> Verdict:
    """Present a criterion verdict as evidence for a Theorem 1 corollary."""
    return Verdict(
        prop=prop,
        subject=verdict.subject,
        holds=verdict.holds,
        method=verdict.method,
        diagnostics=[Diagnostic(note, verdict.holds)] + list(verdict.diagnostics),
        cost=verdict.cost,
        report=verdict.report,
    )


def _label_compiled(verdict: Verdict, checker: OnTheFlyChecker, requested: bool) -> None:
    """Report the engine that actually ran a ``engine="compiled"`` query.

    When every component fell back to the interpreter the verdict keeps
    ``method="explicit"``; if the caller *explicitly* asked for the compiled
    engine, the fallback is additionally recorded as a diagnostic (mirroring
    the ``auto`` fallback note) instead of failing — the engines decide the
    same properties on the same states.
    """
    if checker.uses_compiled():
        verdict.method = "compiled"
    elif requested:
        verdict.diagnostics.insert(
            0,
            Diagnostic(
                "process is outside the compiled fragment (boolean values "
                "derived from numeric data) — the interpreter-backed engine "
                "answered instead",
                True,
            ),
        )


def _engine(
    design: "Design", max_states: int, engine: str = "compiled"
) -> OnTheFlyChecker:
    """The design's on-the-fly engine: a lazy product of the components.

    ``engine="compiled"`` (the default) serves per-component reactions from
    compiled step relations where available; ``engine="interpreter"`` is the
    ``method="explicit"`` opt-out.  Falls back to a lazy view of the
    composed process when the components cannot form a product (shared
    register names after composition by name-matching is the only such
    case).
    """
    components = design.components
    if len(components) >= 2:
        try:
            return design.context.onthefly(
                list(components),
                max_states,
                name=design.composition.name,
                types=design.composition.types,
                engine=engine,
            )
        except ValueError:
            pass
    return design.context.onthefly([design.composition], max_states, engine=engine)


def _symbolic_non_blocking(design: "Design", max_states: int) -> Verdict:
    """Definition 4 decided on BDDs: no reachable state without a successor.

    For a multi-component design the product transition relation is the
    conjunction of the per-component relations (each component LTS explored
    individually) — the composed state space is never enumerated.  For a
    single component the explicit LTS is encoded as before.
    """
    from repro.mc.onthefly import ProductLTS

    context = design.context
    engine = _engine(design, max_states) if len(design.components) >= 2 else None
    if engine is not None and isinstance(engine.lazy, ProductLTS):
        try:
            with stopwatch() as elapsed:
                # encode the same (re-typed) abstractions the lazy product
                # joins, so the two engines agree on the product semantics
                component_ltss = [
                    context.lts(component, max_states)
                    for component in engine.lazy.abstracted
                ]
                checker = SymbolicProductChecker(
                    component_ltss,
                    manager=context.manager,
                    components=engine.lazy.abstracted,
                )
                result = checker.is_non_blocking()
                states = checker.reachable_count()
                nodes = checker.bdd_nodes()
            return Verdict(
                prop="non-blocking",
                subject=design.composition.name,
                holds=result.holds,
                method="symbolic",
                diagnostics=[
                    Diagnostic(
                        "no reachable deadlock state (Definition 4, product relation)",
                        result.holds,
                        result.counterexample or f"{states} reachable states (BDD)",
                    )
                ],
                cost=Cost(
                    seconds=elapsed[0],
                    components=len(design.components),
                    bdd_nodes=nodes,
                    state_bound=max_states,
                ),
                report=result,
            )
        except ValueError:
            pass  # non-product-able components: encode the composition instead
    with stopwatch() as elapsed:
        lts = context.lts(design.composition, max_states)
        checker = SymbolicChecker(lts, manager=context.manager)
        reachable = checker.reachable_states()
        step_variables = [next_variable(register) for register in checker.registers]
        step_variables += [event_variable(signal) for signal in checker.signals]
        has_successor = checker.transition_relation.exists(step_variables)
        deadlocks = reachable & ~has_successor
        holds = not deadlocks.is_satisfiable()
        states = checker.reachable_count()
        nodes = checker.bdd_nodes()
    return Verdict(
        prop="non-blocking",
        subject=design.composition.name,
        holds=holds,
        method="symbolic",
        diagnostics=[
            Diagnostic(
                "no reachable deadlock state (Definition 4)",
                holds,
                f"{states} reachable states (BDD)",
            )
        ],
        cost=Cost(
            seconds=elapsed[0],
            transitions=lts.transition_count(),
            bdd_nodes=nodes,
            state_bound=max_states,
        ),
        report=deadlocks,
    )


def _auto(design: "Design", prop: str, static_verdict: Verdict, fallback) -> Verdict:
    """Theorem 1 preference: keep the static answer when it concludes."""
    if static_verdict.holds:
        return static_verdict
    verdict = fallback()
    verdict.diagnostics.insert(
        0,
        Diagnostic(
            "static criterion inconclusive (Definition 12 not met) — "
            f"fell back to {verdict.method} model checking",
            True,
        ),
    )
    return verdict


def verify(design: "Design", prop: str, method: str = "auto", **options) -> Verdict:
    """Check ``prop`` on ``design`` with ``method``; every answer is a Verdict.

    Supported properties: ``compilable``, ``hierarchic``, ``endochrony``,
    ``weak-endochrony``, ``non-blocking``, ``isochrony``,
    ``weakly-hierarchic``.  Options: ``max_states`` bounds the LTS
    exploration; ``input_flows`` feeds the bounded-trace checks
    (``endochrony`` explicit, ``isochrony``); ``max_instants`` bounds them.
    """
    prop = canonical_property(prop)
    if method not in METHODS:
        raise VerificationError(f"unknown method {method!r}; expected one of {METHODS}")
    max_states = int(options.get("max_states", 512))
    context = design.context

    if prop == "compilable":
        _require_static(prop, method)
        return verify_compilable(design.analysis)

    if prop == "hierarchic":
        _require_static(prop, method)
        return verify_hierarchic(design.analysis)

    if prop == "weakly-hierarchic":
        _require_static(prop, method)
        return _static_weakly_hierarchic(design)

    if prop == "endochrony":
        if method in ("auto", "static"):
            return verify_endochrony(design.composition, design.analysis)
        if method == "explicit":
            input_flows = options.get("input_flows")
            if input_flows is None:
                raise VerificationError(
                    "endochrony with method='explicit' checks Definition 1 on bounded "
                    "traces and needs input_flows={signal: [values...]}"
                )
            with stopwatch() as elapsed:
                report = check_endochrony_on_traces(
                    design.composition,
                    input_flows,
                    max_instants=int(options.get("max_instants", 8)),
                )
            return Verdict(
                prop="endochrony",
                subject=design.composition.name,
                holds=report.holds,
                method="explicit",
                diagnostics=[
                    Diagnostic(
                        "flow-equivalent inputs give clock-equivalent behaviors "
                        "(Definition 1)",
                        report.holds,
                        f"{report.behaviors_compared} behavior pairs compared",
                        witness=report.counterexample,
                    )
                ],
                cost=Cost(seconds=elapsed[0]),
                report=report,
            )
        raise VerificationError("endochrony supports methods auto/static/explicit")

    if prop == "weak-endochrony":
        def explicit(engine: str = "compiled") -> Verdict:
            # Definition 2 axioms driven by the on-the-fly engine: the lazy
            # product expands successors only as the axioms visit states and
            # stops at the first violating reaction.  The engine serves
            # per-component reactions from compiled step relations by
            # default; ``method="explicit"`` opts out to the interpreter.
            # No composition analysis is passed — the explicit axioms never
            # consult it, so a warm-store query stays free of analysis work.
            checker = _engine(design, max_states, engine)
            verdict = verify_weak_endochrony(
                design.composition,
                checker=checker,
                method="explicit",
                max_states=max_states,
            )
            # report the engine that actually ran: a design outside the
            # compiled fragment fell back to the interpreter enumeration
            if engine == "compiled":
                _label_compiled(verdict, checker, requested=method == "compiled")
            return verdict

        def symbolic() -> Verdict:
            engine = _engine(design, max_states)
            verdict = verify_weak_endochrony(
                design.composition,
                analysis=design.analysis,
                checker=engine,
                method="symbolic",
                max_states=max_states,
            )
            # cross-check the explored state count with the BDD reachability
            # of Section 4.1's symbolic formulation, on the shared manager
            from repro.mc.onthefly import ProductLTS

            if (
                isinstance(engine.lazy, ProductLTS)
                and not engine.truncated
                and verdict.holds
            ):
                try:
                    component_ltss = [
                        context.lts(component, max_states)
                        for component in engine.lazy.abstracted
                    ]
                    checker = SymbolicProductChecker(
                        component_ltss,
                        manager=context.manager,
                        components=engine.lazy.abstracted,
                    )
                    reachable = checker.reachable_count()
                    verdict.diagnostics.append(
                        Diagnostic(
                            "symbolic product reachability agrees with exploration",
                            reachable == engine.states_expanded,
                            f"{reachable} reachable states (BDD product relation)",
                        )
                    )
                    verdict.cost = Cost(
                        seconds=verdict.cost.seconds,
                        states=verdict.cost.states,
                        transitions=verdict.cost.transitions,
                        state_bound=verdict.cost.state_bound,
                        bdd_nodes=checker.bdd_nodes(),
                        components=len(design.components),
                    )
                except ValueError:
                    pass
            elif len(design.components) == 1:
                lts = context.lts(design.composition, max_states)
                checker = SymbolicChecker(lts, manager=context.manager)
                verdict.diagnostics.append(
                    Diagnostic(
                        "symbolic reachability agrees with exploration",
                        checker.reachable_count() == lts.state_count(),
                        f"{checker.reachable_count()} reachable states (BDD)",
                    )
                )
                verdict.cost = Cost(
                    seconds=verdict.cost.seconds,
                    states=verdict.cost.states,
                    transitions=verdict.cost.transitions,
                    state_bound=verdict.cost.state_bound,
                    bdd_nodes=checker.bdd_nodes(),
                )
            return verdict

        if method == "static":
            return _retitle(
                _static_weakly_hierarchic(design),
                "weak-endochrony",
                "weakly hierarchic ⇒ weakly endochronous (Theorem 1)",
            )
        if method == "explicit":
            return explicit("interpreter")
        if method == "compiled":
            return explicit("compiled")
        if method == "symbolic":
            return symbolic()
        return _auto(
            design,
            prop,
            _retitle(
                _static_weakly_hierarchic(design),
                "weak-endochrony",
                "weakly hierarchic ⇒ weakly endochronous (Theorem 1)",
            ),
            explicit,
        )

    if prop == "non-blocking":
        def explicit(engine: str = "compiled") -> Verdict:
            # frontier search with early termination on the first deadlock
            checker = _engine(design, max_states, engine)
            verdict = verify_non_blocking(
                design.composition,
                checker=checker,
                max_states=max_states,
            )
            # honest labeling: "compiled" only when the engine actually is
            if engine == "compiled":
                _label_compiled(verdict, checker, requested=method == "compiled")
            return verdict

        if method == "static":
            return _retitle(
                _static_weakly_hierarchic(design),
                "non-blocking",
                "weakly hierarchic ⇒ non-blocking (Definition 12)",
            )
        if method == "explicit":
            return explicit("interpreter")
        if method == "compiled":
            return explicit("compiled")
        if method == "symbolic":
            return _symbolic_non_blocking(design, max_states)
        return _auto(
            design,
            prop,
            _retitle(
                _static_weakly_hierarchic(design),
                "non-blocking",
                "weakly hierarchic ⇒ non-blocking (Definition 12)",
            ),
            explicit,
        )

    # prop == "isochrony"
    def explicit_isochrony() -> Verdict:
        if len(design.components) != 2:
            raise VerificationError(
                "isochrony with method='explicit' compares the synchronous and "
                "asynchronous compositions of exactly two components"
            )
        input_flows = options.get("input_flows")
        if input_flows is None:
            raise VerificationError(
                "isochrony with method='explicit' needs input_flows={signal: [values...]}"
            )
        left, right = design.components
        return verify_isochrony(
            left,
            right,
            input_flows,
            max_instants=int(options.get("max_instants", 8)),
            lazy=bool(options.get("lazy", True)),
        )

    if method == "static":
        return _retitle(
            _static_weakly_hierarchic(design),
            "isochrony",
            "weakly hierarchic ⇒ components isochronous (Theorem 1)",
        )
    if method == "explicit":
        return explicit_isochrony()
    if method in ("symbolic", "compiled"):
        raise VerificationError(
            f"isochrony has no {method} backend; use static or explicit"
        )
    static_verdict = _retitle(
        _static_weakly_hierarchic(design),
        "isochrony",
        "weakly hierarchic ⇒ components isochronous (Theorem 1)",
    )
    if static_verdict.holds:
        return static_verdict
    if len(design.components) != 2 or "input_flows" not in options:
        # The criterion is sufficient, not necessary: say "not proven", don't
        # let the verdict read as a disproof.
        static_verdict.diagnostics.insert(
            0,
            Diagnostic(
                "static criterion inconclusive (Definition 12 not met) — isochrony is "
                "NOT disproved; pass input_flows on a two-component design for the "
                "explicit bounded check",
                True,
            ),
        )
        return static_verdict
    return _auto(design, prop, static_verdict, explicit_isochrony)


def _require_static(prop: str, method: str) -> None:
    if method not in ("auto", "static"):
        raise VerificationError(f"{prop} is decided by the clock calculus; use method='static'")
