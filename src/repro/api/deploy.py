"""Deployment: the four code generation / execution schemes behind one interface.

Section 3.6 and Section 5 of the paper describe four ways of turning a
verified design into running code; each becomes a :class:`Deployment` with
the same ``reset()`` / ``step(io)`` / ``run(inputs)`` surface:

* ``"sequential"`` — one monolithic step function (Section 3.6); for
  multi-rooted designs, ``master_clocks=True`` reproduces the *current
  scheme* of Section 5.1 (one ``C_<root>`` input per hierarchy root);
* ``"controlled"`` — separate compilation plus the synthesized controller of
  Section 5.2 enforcing the reported clock constraints by rendez-vous;
* ``"concurrent"`` — the same scheduling decisions, executed as one thread
  per component with barrier pairs at the rendez-vous;
* ``"ltta"`` — quasi-synchronous execution in the spirit of Section 4.2:
  each component is paced by its own clock and shared signals travel through
  sustained latches (the "bus"); protocols such as the LTTA's alternating
  flag absorb the oversampling, which is exactly what isochrony licenses.

All deployments draw their analyses from the design's shared
:class:`~repro.api.session.AnalysisContext`, so compiling after verifying
re-uses every clock calculus artefact already built.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.codegen.batch import (
    BatchCompilationError,
    BatchOverflowError,
    BatchProgram,
    FleetResult,
)
from repro.codegen.concurrent import ConcurrentComposition
from repro.codegen.controller import ControlledComposition, synthesize_controller
from repro.codegen.runtime import EndOfStream, StreamIO
from repro.codegen.sequential import CompiledProcess, compile_process
from repro.codegen.specialized import compile_interpreted, compile_specialized
from repro.lang.normalize import NormalizedProcess
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.semantics.interpreter import ABSENT, SignalInterpreter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import Design

STRATEGIES = ("sequential", "controlled", "concurrent", "ltta")

#: execution tiers for the generated step functions (see docs/architecture.md):
#: ``interpreter`` walks the scheduled ops with one dispatch per op,
#: ``compiled`` is the exec-compiled step function of Section 3.6,
#: ``specialized`` additionally binds IO and delay registers into closures,
#: ``batched`` steps a whole fleet of instances per call on numpy lanes.
RUNTIMES = ("compiled", "specialized", "interpreter", "batched")

_COMPONENT_COMPILERS = {
    "compiled": compile_process,
    "specialized": compile_specialized,
    "interpreter": compile_interpreted,
}


class DeploymentError(Exception):
    """Raised when a design cannot be deployed with the requested strategy."""


def _record_run(strategy: str, runtime: str, steps: int, instances: int = 1) -> None:
    labels = {"strategy": strategy, "runtime": runtime}
    obs_metrics.GLOBAL.counter("repro_deploy_runs_total", labels).inc()
    obs_metrics.GLOBAL.counter("repro_deploy_steps_total", labels).inc(steps)
    obs_metrics.GLOBAL.counter("repro_deploy_instances_total", labels).inc(instances)


class Deployment:
    """Common surface of the four execution schemes."""

    strategy: str = "abstract"
    #: which execution tier backs :meth:`step` / :meth:`run` (see ``RUNTIMES``)
    runtime: str = "compiled"

    @property
    def inputs(self) -> Tuple[str, ...]:
        raise NotImplementedError

    @property
    def outputs(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def step(self, io: StreamIO) -> bool:
        """One global reaction; False when an input stream is exhausted."""
        raise NotImplementedError

    def run(
        self, inputs: Mapping[str, Sequence[object]], max_steps: int = 1_000_000
    ) -> Dict[str, List[object]]:
        """Reset, iterate until the inputs run dry, return the output flows."""
        self.reset()
        io = StreamIO({name: list(values) for name, values in inputs.items()})
        if obs_trace.TRACING:
            with obs_trace.span(
                "deploy.run", strategy=self.strategy, runtime=self.runtime
            ) as active:
                steps = self._drive(io, max_steps)
                active.set_tag("steps", steps)
        else:
            steps = self._drive(io, max_steps)
        _record_run(self.strategy, self.runtime, steps)
        return {name: io.output(name) for name in self.outputs}

    def _drive(self, io: StreamIO, max_steps: int) -> int:
        steps = 0
        while steps < max_steps and self.step(io):
            steps += 1
        return steps

    def listing(self) -> str:
        """A C-like rendering of the deployed code (paper-figure style)."""
        raise NotImplementedError


class SequentialDeployment(Deployment):
    """Sections 3.6 / 5.1: the composition compiled to one step function."""

    strategy = "sequential"

    def __init__(
        self, design: "Design", master_clocks: bool = False, runtime: str = "compiled"
    ):
        if runtime not in _COMPONENT_COMPILERS:
            raise DeploymentError(
                f"unknown runtime {runtime!r} for the sequential strategy; "
                f"expected one of {tuple(_COMPONENT_COMPILERS)} (or 'batched' "
                "via BatchedDeployment)"
            )
        self.design = design
        self.runtime = runtime
        self.compiled = _COMPONENT_COMPILERS[runtime](
            design.analysis, master_clocks=master_clocks
        )

    @property
    def inputs(self) -> Tuple[str, ...]:
        return self.compiled.inputs

    @property
    def outputs(self) -> Tuple[str, ...]:
        return self.compiled.outputs

    @property
    def master_clock_inputs(self) -> List[str]:
        return list(self.compiled.master_clock_inputs)

    def reset(self) -> None:
        self.compiled.reset()

    def step(self, io: StreamIO) -> bool:
        return self.compiled.step(io)

    def _drive(self, io: StreamIO, max_steps: int) -> int:
        # every tier carries its own run loop; the specialized one in
        # particular iterates a bound closure with no per-step dispatch
        return self.compiled.run(io, max_steps)

    def listing(self) -> str:
        source = getattr(self.compiled, "c_source", None)
        if source is not None:
            return source
        return compile_process(
            self.design.analysis,
            master_clocks=bool(self.compiled.master_clock_inputs),
        ).c_source


class ControlledDeployment(Deployment):
    """Section 5.2: separate compilation plus the synthesized controller."""

    strategy = "controlled"

    def __init__(self, design: "Design", runtime: str = "compiled"):
        self.design = design
        self.runtime = runtime
        compiled = _compile_components(design, runtime)
        self.controlled: ControlledComposition = synthesize_controller(
            compiled, design.criterion()
        )

    @property
    def constraints(self):
        return list(self.controlled.constraints)

    @property
    def inputs(self) -> Tuple[str, ...]:
        return self.controlled.external_inputs

    @property
    def outputs(self) -> Tuple[str, ...]:
        return self.controlled.external_outputs

    def reset(self) -> None:
        self.controlled.reset()

    def step(self, io: StreamIO) -> bool:
        return self.controlled.step(io)

    def listing(self) -> str:
        return self.controlled.c_listing()


class ConcurrentDeployment(Deployment):
    """Section 5.2, concurrent variant: one thread per component, barriers."""

    strategy = "concurrent"

    def __init__(self, design: "Design", max_steps: int = 10_000, runtime: str = "compiled"):
        self.design = design
        self.runtime = runtime
        self._compiled = _compile_components(design, runtime)
        controlled = synthesize_controller(self._compiled, design.criterion())
        self.constraints = list(controlled.constraints)
        self._controlled = controlled  # kept for the listing only
        self.max_steps = max_steps

    @property
    def inputs(self) -> Tuple[str, ...]:
        return self._controlled.external_inputs

    @property
    def outputs(self) -> Tuple[str, ...]:
        return self._controlled.external_outputs

    def reset(self) -> None:
        for compiled in self._compiled:
            compiled.reset()

    def step(self, io: StreamIO) -> bool:
        raise DeploymentError(
            "the concurrent deployment runs whole flows (threads join on stream "
            "exhaustion); use run(inputs) — or the 'controlled' strategy for "
            "step-by-step execution with the same scheduling decisions"
        )

    def run(
        self, inputs: Mapping[str, Sequence[object]], max_steps: Optional[int] = None
    ) -> Dict[str, List[object]]:
        self.reset()
        composition = ConcurrentComposition(
            self._compiled, self.constraints, max_steps or self.max_steps
        )
        with obs_trace.span("deploy.run", strategy=self.strategy, runtime=self.runtime):
            outputs = composition.run(inputs)
        _record_run(self.strategy, self.runtime, steps=0)
        return {name: outputs.get(name, []) for name in self.outputs}

    def listing(self) -> str:
        return self._controlled.c_listing()


class LttaDeployment(Deployment):
    """Section 4.2 in execution form: independently paced devices, sustained bus.

    Each component is interpreted on its own clock: component ``c`` activates
    at every micro-instant ``t`` with ``t % paces[c] == 0`` (default pace 1).
    At an activation it reads one fresh value from each of its external input
    streams, reads the *sustained* last value of each shared signal from the
    bus latch, and publishes its outputs (shared ones to the latch, external
    ones to the environment).  With all paces equal this coincides with the
    synchronous product; with drifting paces it is the LTTA setting, where a
    value may be observed several times — sound exactly when the design's
    protocol (e.g. the alternating flag) filters duplicates, which is the
    guarantee Theorem 1's isochrony gives for weakly hierarchic designs.
    """

    strategy = "ltta"
    runtime = "interpreter"

    def __init__(self, design: "Design", paces: Optional[Mapping[str, int]] = None):
        self.design = design
        self.components: List[NormalizedProcess] = list(design.components)
        if not self.components:
            raise DeploymentError("the LTTA deployment needs at least one component")
        self.paces: Dict[str, int] = {
            component.name: max(1, int((paces or {}).get(component.name, 1)))
            for component in self.components
        }
        self._shared: Set[str] = _shared_signals(self.components)
        self._order: List[NormalizedProcess] = _dependency_order(self.components)
        self._interpreters: Dict[str, SignalInterpreter] = {
            component.name: SignalInterpreter(component) for component in self.components
        }
        self._latch: Dict[str, object] = {}
        self._instant = 0

    @property
    def inputs(self) -> Tuple[str, ...]:
        names: List[str] = []
        for component in self._order:
            for signal in component.inputs:
                if signal not in self._shared and signal not in names:
                    names.append(signal)
        return tuple(names)

    @property
    def outputs(self) -> Tuple[str, ...]:
        names: List[str] = []
        for component in self._order:
            for signal in component.outputs:
                if signal not in self._shared and signal not in names:
                    names.append(signal)
        return tuple(names)

    def reset(self) -> None:
        for interpreter in self._interpreters.values():
            interpreter.reset()
        self._latch = {}
        self._instant = 0

    def step(self, io: StreamIO) -> bool:
        """One micro-instant: activate every component whose pace divides it."""
        instant = self._instant
        for component in self._order:
            if instant % self.paces[component.name] != 0:
                continue
            values: Dict[str, object] = {}
            for signal in component.inputs:
                if signal in self._shared:
                    values[signal] = self._latch.get(signal, ABSENT)
                else:
                    try:
                        values[signal] = io.read(signal)
                    except EndOfStream:
                        return False
            result = self._interpreters[component.name].step(values)
            for signal in component.outputs:
                if not result.present(signal):
                    continue
                if signal in self._shared:
                    self._latch[signal] = result.value(signal)
                else:
                    io.write(signal, result.value(signal))
        self._instant += 1
        return True

    def listing(self) -> str:
        lines = ["/* quasi-synchronous main loop (Section 4.2 style) */", "bool ltta_iterate() {"]
        for component in self._order:
            pace = self.paces[component.name]
            lines.append(f"  if (t % {pace} == 0) {{  /* device {component.name} */")
            for signal in component.inputs:
                if signal in self._shared:
                    lines.append(f"    {signal} = bus_{signal};  /* sustained */")
                else:
                    lines.append(f"    if (!r_{component.name}_{signal}(&{signal})) return FALSE;")
            lines.append(f"    {component.name}_iterate();")
            for signal in component.outputs:
                if signal in self._shared:
                    lines.append(f"    bus_{signal} = {signal};")
            lines.append("  }")
        lines.append("  t = t + 1;")
        lines.append("  return TRUE;")
        lines.append("}")
        return "\n".join(lines)


class BatchedDeployment(Deployment):
    """The fleet tier: one call steps thousands of independent instances.

    Compiles the design once (sequential schedule, Section 3.6 / 5.1) into
    two engines: the vectorized numpy kernel of :mod:`repro.codegen.batch`
    for instances inside the bool/int64 fragment, and the scalar
    :class:`~repro.codegen.specialized.SpecializedProcess` for the rest —
    results are lane-identical either way.  ``run(inputs)`` executes one
    instance; :meth:`run_many` executes a whole fleet and reports how many
    lanes took each path.
    """

    strategy = "sequential"
    runtime = "batched"

    def __init__(
        self, design: "Design", master_clocks: bool = False, max_steps: int = 1_000_000
    ):
        self.design = design
        self.max_steps = max_steps
        self._specialized = compile_specialized(
            design.analysis, master_clocks=master_clocks
        )
        self._batch: Optional[BatchProgram] = None
        self._batch_unavailable: Optional[str] = None
        try:
            self._batch = BatchProgram(self._specialized.program)
        except BatchCompilationError as error:
            self._batch_unavailable = str(error)

    @property
    def inputs(self) -> Tuple[str, ...]:
        return self._specialized.inputs

    @property
    def outputs(self) -> Tuple[str, ...]:
        return self._specialized.outputs

    @property
    def master_clock_inputs(self) -> List[str]:
        return list(self._specialized.master_clock_inputs)

    @property
    def vectorized(self) -> bool:
        """Whether the design itself compiled to the numpy fast path."""
        return self._batch is not None

    def batch_source(self) -> Optional[str]:
        """The generated numpy kernel source (None outside the fragment)."""
        return self._batch.python_source if self._batch is not None else None

    def reset(self) -> None:
        self._specialized.reset()

    def step(self, io: StreamIO) -> bool:
        raise DeploymentError(
            "the batched runtime executes whole fleets; use run(inputs) for one "
            "instance or run_many(instances) for a batch — or runtime="
            "'specialized' for step-by-step execution of the same schedule"
        )

    def run(
        self, inputs: Mapping[str, Sequence[object]], max_steps: Optional[int] = None
    ) -> Dict[str, List[object]]:
        return self.run_many([inputs], max_steps=max_steps).outputs[0]

    def run_many(
        self,
        instances: Sequence[Mapping[str, Sequence[object]]],
        max_steps: Optional[int] = None,
    ) -> FleetResult:
        """Run every instance to stream exhaustion, vectorizing where possible."""
        limit = self.max_steps if max_steps is None else max_steps
        if obs_trace.TRACING:
            with obs_trace.span(
                "deploy.run",
                strategy=self.strategy,
                runtime=self.runtime,
                instances=len(instances),
            ) as active:
                result = self._run_many(instances, limit)
                active.set_tag("steps", sum(result.steps))
                active.set_tag("vectorized", result.vectorized)
                active.set_tag("fallback", result.fallback)
        else:
            result = self._run_many(instances, limit)
        _record_run(
            self.strategy, self.runtime, sum(result.steps), instances=len(instances)
        )
        registry = obs_metrics.GLOBAL
        registry.counter("repro_deploy_batch_lanes_total", {"path": "vectorized"}).inc(
            result.vectorized
        )
        registry.counter("repro_deploy_batch_lanes_total", {"path": "fallback"}).inc(
            result.fallback
        )
        if instances:
            registry.gauge("repro_deploy_batch_occupancy").set(
                result.vectorized / len(instances)
            )
        return result

    def _run_many(
        self, instances: Sequence[Mapping[str, Sequence[object]]], limit: int
    ) -> FleetResult:
        n = len(instances)
        results: List[Optional[Tuple[int, Dict[str, List[object]]]]] = [None] * n
        vector_rows: List[int] = []
        staged = None
        batch = self._batch
        if batch is not None and n:
            # fast path: stage the whole fleet in one numpy pass — eligibility
            # falls out of the conversion itself, so an all-eligible fleet
            # skips the per-lane Python scans entirely
            staged = batch.stage_fleet(instances)
            if staged is not None:
                vector_rows = list(range(n))
            else:
                vector_rows = [
                    index
                    for index in range(n)
                    if batch.lane_vectorizable(instances[index])
                ]
        if vector_rows:
            try:
                if staged is not None:
                    steps, outputs = batch.run_staged(staged, n, max_steps=limit)
                else:
                    steps, outputs = batch.run_many(
                        [instances[index] for index in vector_rows], max_steps=limit
                    )
            except BatchOverflowError:
                # a numeric lane approached the int64 range: redo the whole
                # batch on the scalar tier, which carries exact big ints
                vector_rows = []
            else:
                for position, index in enumerate(vector_rows):
                    results[index] = (steps[position], outputs[position])
        fallback = 0
        engine = self._specialized
        for index in range(n):
            if results[index] is not None:
                continue
            fallback += 1
            engine.reset()
            io = StreamIO({name: list(values) for name, values in instances[index].items()})
            steps_taken = engine.run(io, limit)
            results[index] = (
                steps_taken,
                {name: io.output(name) for name in engine.outputs},
            )
        return FleetResult(
            outputs=[entry[1] for entry in results],
            steps=[entry[0] for entry in results],
            vectorized=len(vector_rows),
            fallback=fallback,
        )

    def listing(self) -> str:
        return self._specialized.c_source


def _shared_signals(components: Sequence[NormalizedProcess]) -> Set[str]:
    produced: Set[str] = set()
    consumed: Set[str] = set()
    for component in components:
        produced.update(component.outputs)
        consumed.update(component.inputs)
    return produced & consumed


def _dependency_order(components: Sequence[NormalizedProcess]) -> List[NormalizedProcess]:
    """Producers of shared signals before their consumers, stable on ties."""
    produced_by: Dict[str, str] = {}
    for component in components:
        for name in component.outputs:
            produced_by[name] = component.name
    dependencies: Dict[str, Set[str]] = {component.name: set() for component in components}
    for component in components:
        for name in component.inputs:
            producer = produced_by.get(name)
            if producer and producer != component.name:
                dependencies[component.name].add(producer)
    by_name = {component.name: component for component in components}
    order: List[str] = []
    remaining = dict(dependencies)
    while remaining:
        ready = sorted(name for name, deps in remaining.items() if deps <= set(order))
        if not ready:
            order.extend(sorted(remaining))
            break
        order.append(ready[0])
        del remaining[ready[0]]
    return [by_name[name] for name in order]


def _compile_components(design: "Design", runtime: str = "compiled") -> List[object]:
    """Separately compile every component, reusing the session's analyses."""
    compiler = _COMPONENT_COMPILERS.get(runtime)
    if compiler is None:
        raise DeploymentError(
            f"unknown runtime {runtime!r} for the compositional strategies; "
            f"expected one of {tuple(_COMPONENT_COMPILERS)}"
        )
    compiled: List[object] = []
    for component in design.components:
        analysis = design.context.analysis(component)
        if not analysis.is_compilable() or not analysis.is_hierarchic():
            raise DeploymentError(
                f"component {component.name!r} is not endochronous "
                f"(compilable={analysis.is_compilable()}, roots={analysis.root_count()}); "
                "the compositional schemes of Section 5.2 compile components separately "
                "and need each of them endochronous"
            )
        compiled.append(compiler(analysis))
    return compiled


def build_deployment(
    design: "Design", strategy: str = "sequential", runtime: str = "compiled", **options
) -> Deployment:
    """Instantiate the deployment scheme named by ``strategy``.

    ``runtime`` selects the execution tier (see ``RUNTIMES``): the sequential
    strategy accepts all four (``"batched"`` yields the fleet-capable
    :class:`BatchedDeployment`); the compositional strategies accept
    ``"compiled"`` / ``"specialized"`` / ``"interpreter"`` per component.
    """
    if runtime not in RUNTIMES:
        raise DeploymentError(f"unknown runtime {runtime!r}; expected one of {RUNTIMES}")
    if strategy == "sequential":
        master_clocks = bool(options.get("master_clocks"))
        if runtime == "batched":
            return BatchedDeployment(
                design,
                master_clocks=master_clocks,
                max_steps=int(options.get("max_steps", 1_000_000)),
            )
        return SequentialDeployment(design, master_clocks=master_clocks, runtime=runtime)
    if runtime == "batched":
        raise DeploymentError(
            "the 'batched' runtime applies to the sequential strategy only "
            "(the compositional schemes synchronize per step)"
        )
    if strategy == "controlled":
        return ControlledDeployment(design, runtime=runtime)
    if strategy == "concurrent":
        return ConcurrentDeployment(
            design, max_steps=int(options.get("max_steps", 10_000)), runtime=runtime
        )
    if strategy == "ltta":
        return LttaDeployment(design, paces=options.get("paces"))
    raise DeploymentError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
