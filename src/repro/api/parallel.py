"""Process-pool sharding for independent verification queries.

``Design.verify_many(props, parallel=N)`` and
``Design.map_components(prop, parallel=N)`` shard their queries over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker process
builds the design *once* (in the pool initializer) and keeps its own
memoized :class:`~repro.api.session.AnalysisContext`, so every query routed
to that worker reuses the worker's normalizations, clock analyses, LTSs and
BDD manager — the same sharing the sequential session enjoys, minus the
cross-worker overlap.

Verdicts crossing the process boundary are *sanitized*: the ``report``
payload (which can hold a whole :class:`ProcessAnalysis` and its BDD
manager) is dropped, and any diagnostic witness that does not pickle is
replaced by its ``repr``.  Callers that need full reports should run
sequentially (``parallel=None``), where verdicts are returned as-is.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.results import Diagnostic, Verdict

#: one task: (component index or None for the whole design, prop, method, options)
QueryTask = Tuple[Optional[int], str, str, Dict[str, object]]

_WORKER: Dict[str, object] = {}


def _picklable(value):
    if value is None:
        return None
    try:
        pickle.dumps(value)
        return value
    except Exception:
        return repr(value)


def sanitize_verdict(verdict: Verdict) -> Verdict:
    """A copy of ``verdict`` safe to send across a process boundary."""
    diagnostics = [
        Diagnostic(d.name, d.holds, d.detail, _picklable(d.witness))
        for d in verdict.diagnostics
    ]
    return Verdict(
        prop=verdict.prop,
        subject=verdict.subject,
        holds=verdict.holds,
        method=verdict.method,
        diagnostics=diagnostics,
        cost=verdict.cost,
        report=None,
    )


def _initialize_worker(components, name: str, store_root: Optional[str] = None) -> None:
    from repro.api.session import Design

    design = Design(name=name, components=list(components))
    if store_root:
        # the parent session's artifact store, re-opened in this worker: the
        # worker warm-starts from persisted relations/diagnoses/verdicts and
        # persists what it computes for every later session and worker
        from repro.service.store import ArtifactStore

        design.context.artifact_cache = ArtifactStore(store_root)
    _WORKER["design"] = design
    _WORKER["subdesigns"] = {}


def _run_query(task: QueryTask) -> Verdict:
    from repro.api.session import Design

    index, prop, method, options = task
    design = _WORKER["design"]
    if index is None:
        target = design
    else:
        subdesigns = _WORKER["subdesigns"]
        target = subdesigns.get(index)
        if target is None:
            # single-component design sharing the worker's context/memo
            target = Design.from_process(design.components[index], context=design.context)
            subdesigns[index] = target
    return sanitize_verdict(target.verify(prop, method, **options))


def run_queries(
    components: Sequence[object],
    name: str,
    tasks: Sequence[QueryTask],
    parallel: int,
    store_root: Optional[str] = None,
) -> List[Verdict]:
    """Run the query tasks over a pool of ``parallel`` worker processes.

    Results come back in task order.  The pool is created per call: the
    dominant cost of a batch worth parallelizing is the queries themselves,
    and a fresh pool keeps worker state coupled to the design it was
    initialized with.  ``store_root``, when the parent session has an
    on-disk artifact store, points every worker at the same store, so the
    cross-worker overlap the per-worker memos cannot capture is served from
    persisted artifacts instead.

    A worker killed mid-batch (OOM killer, a crashing native extension)
    breaks the whole pool; queries are deterministic and side-effect free,
    so the batch is retried once on a fresh pool before giving up.
    """

    def _run_batch() -> List[Verdict]:
        with ProcessPoolExecutor(
            max_workers=parallel,
            initializer=_initialize_worker,
            initargs=(tuple(components), name, store_root),
        ) as pool:
            return list(pool.map(_run_query, tasks))

    try:
        return _run_batch()
    except BrokenProcessPool:
        return _run_batch()
