"""The uniform result model of the :mod:`repro.api` facade.

Every verification entry point of the facade returns a :class:`Verdict`: one
boolean outcome plus the structured evidence behind it — which property was
checked, on what subject, by which method, the per-check
:class:`Diagnostic` items (with witnesses / counterexamples when the
underlying checker produced one) and the :class:`Cost` of obtaining the
answer.  This replaces the historical mix of bare booleans, report
dataclasses and dictionaries of the property modules; the old entry points
remain available as thin shims over the Verdict producers.

A Verdict is truthy exactly when the property holds, so existing
``assert``-style call sites keep reading naturally::

    verdict = design.verify("weak-endochrony")
    assert verdict                      # truthiness == verdict.holds
    for diagnostic in verdict.failures():
        print(diagnostic.name, diagnostic.detail)
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple


def _json_safe(value: object) -> object:
    """``value`` if it survives ``json.dumps`` unchanged, else its ``repr``.

    Witnesses can be arbitrary checker objects (reaction pairs, states,
    behaviors); a JSON-able verdict keeps the primitive ones and stringifies
    the rest, mirroring the pickling sanitization of
    :mod:`repro.api.parallel`.
    """
    if value is None:
        return None
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


@dataclass(frozen=True)
class Diagnostic:
    """One elementary check inside a verdict (an axiom, a definition clause...).

    ``witness`` carries the structured witness or counterexample produced by
    the underlying checker, when there is one — a reaction pair for the weak
    endochrony axioms, a deadlocked state for non-blocking, a behavior pair
    for the trace checks.
    """

    name: str
    holds: bool
    detail: str = ""
    witness: Optional[object] = None

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:
        status = "holds" if self.holds else "FAILS"
        suffix = f": {self.detail}" if self.detail else ""
        return f"{self.name}: {status}{suffix}"

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dictionary; non-JSON witnesses become their ``repr``."""
        return {
            "name": self.name,
            "holds": self.holds,
            "detail": self.detail,
            "witness": _json_safe(self.witness),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Diagnostic":
        return cls(
            name=str(payload["name"]),
            holds=bool(payload["holds"]),
            detail=str(payload.get("detail", "")),
            witness=payload.get("witness"),
        )


@dataclass(frozen=True)
class Cost:
    """What it took to decide a property — the paper's static-vs-MC argument.

    Field semantics (each documented in :doc:`docs/api.md` as well):

    * ``seconds`` — wall-clock time of the verification step;
    * ``states`` — the states the query actually *visited* (successor sets
      computed on demand, or served from the session engine's memo).  Zero
      for the purely static criterion — the whole point of Theorem 1 — and
      zero for symbolic runs, which never touch explicit states (their
      footprint is ``bdd_nodes``);
    * ``transitions`` — the transitions enumerated over the visited states;
    * ``state_bound`` — the exploration budget (``max_states``) the query ran
      under, when one applied.  ``states < state_bound`` on a conclusive
      on-the-fly verdict is the early-termination win: the engine answered
      without filling its budget;
    * ``bdd_nodes`` — for symbolic runs, the BDD nodes of the encoded model
      (transition relation plus reachable set) instead of a misleading
      ``0 states``;
    * ``components`` — the per-component analyses a compositional check ran;
    * ``stages`` — present only when the query ran with tracing enabled: the
      per-stage compute *self*-time breakdown (seconds) collected by the
      artifact graph while this verdict was computed.  ``None`` (and absent
      from :meth:`to_dict`) otherwise, so untraced verdicts stay
      byte-identical to earlier releases; excluded from equality so traced
      and untraced verdicts of the same query still compare equal.
    """

    seconds: float = 0.0
    states: int = 0
    transitions: int = 0
    components: int = 0
    state_bound: int = 0
    bdd_nodes: int = 0
    stages: Optional[Dict[str, float]] = field(default=None, compare=False)

    def __str__(self) -> str:
        parts = [f"{self.seconds * 1000:.1f} ms"]
        if self.states:
            visited = f"{self.states} states visited"
            if self.state_bound:
                visited += f" / bound {self.state_bound}"
            parts.append(visited)
        elif self.state_bound:
            parts.append(f"0 states visited / bound {self.state_bound}")
        if self.transitions:
            parts.append(f"{self.transitions} transitions")
        if self.bdd_nodes:
            parts.append(f"{self.bdd_nodes} BDD nodes")
        if self.components:
            parts.append(f"{self.components} components")
        return ", ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dictionary with every cost field, zeroes included.

        ``stages`` appears only when a breakdown was collected, keeping
        untraced verdict payloads identical to earlier releases.
        """
        payload: Dict[str, object] = {
            "seconds": self.seconds,
            "states": self.states,
            "transitions": self.transitions,
            "components": self.components,
            "state_bound": self.state_bound,
            "bdd_nodes": self.bdd_nodes,
        }
        if self.stages is not None:
            payload["stages"] = dict(self.stages)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Cost":
        stages = payload.get("stages")
        return cls(
            seconds=float(payload.get("seconds", 0.0)),
            states=int(payload.get("states", 0)),
            transitions=int(payload.get("transitions", 0)),
            components=int(payload.get("components", 0)),
            state_bound=int(payload.get("state_bound", 0)),
            bdd_nodes=int(payload.get("bdd_nodes", 0)),
            stages=dict(stages) if stages else None,
        )


@dataclass
class Verdict:
    """The uniform outcome of one property verification.

    ``prop`` is the property name (``"endochrony"``, ``"weak-endochrony"``,
    ``"non-blocking"``, ...), ``subject`` the process or design it was checked
    on, ``method`` how it was decided (``"static"``, ``"explicit"``,
    ``"symbolic"`` or ``"trace"``), and ``report`` the underlying report
    object of the property module, kept for callers that need the full
    detail (e.g. the :class:`~repro.properties.composition.CompositionVerdict`
    with its reported clock constraints).
    """

    prop: str
    subject: str
    holds: bool
    method: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    cost: Cost = field(default_factory=Cost)
    report: Optional[object] = None

    def __bool__(self) -> bool:
        return self.holds

    def failures(self) -> List[Diagnostic]:
        return [diagnostic for diagnostic in self.diagnostics if not diagnostic.holds]

    def witness(self) -> Optional[object]:
        """The witness of the first failing diagnostic, if any."""
        for diagnostic in self.diagnostics:
            if not diagnostic.holds and diagnostic.witness is not None:
                return diagnostic.witness
        return None

    def __str__(self) -> str:
        status = "HOLDS" if self.holds else "FAILS"
        lines = [f"{self.prop} on {self.subject}: {status} [{self.method}, {self.cost}]"]
        lines.extend(f"  {diagnostic}" for diagnostic in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dictionary of the verdict.

        The ``report`` payload (which can hold a whole analysis and its BDD
        manager) is dropped — exactly as when a verdict crosses a process
        boundary; everything else round-trips through :meth:`from_dict`.
        This is the wire format of the verification service.
        """
        return {
            "prop": self.prop,
            "subject": self.subject,
            "holds": self.holds,
            "method": self.method,
            "diagnostics": [diagnostic.to_dict() for diagnostic in self.diagnostics],
            "cost": self.cost.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Verdict":
        return cls(
            prop=str(payload["prop"]),
            subject=str(payload["subject"]),
            holds=bool(payload["holds"]),
            method=str(payload["method"]),
            diagnostics=[
                Diagnostic.from_dict(item) for item in payload.get("diagnostics", ())
            ],
            cost=Cost.from_dict(payload.get("cost", {})),
            report=None,
        )


@contextmanager
def stopwatch() -> Iterator[List[float]]:
    """Measure a verification step; the elapsed seconds land in the yielded cell."""
    cell = [0.0]
    start = time.perf_counter()
    try:
        yield cell
    finally:
        cell[0] = time.perf_counter() - start


def diagnostics_from_invariants(results: Iterable[object]) -> List[Diagnostic]:
    """Convert :class:`~repro.mc.explicit.InvariantResult` items to diagnostics."""
    diagnostics: List[Diagnostic] = []
    for result in results:
        counterexample = getattr(result, "counterexample", None)
        diagnostics.append(
            Diagnostic(
                name=result.name,
                holds=result.holds,
                detail=counterexample or "",
                witness=counterexample,
            )
        )
    return diagnostics
