"""The :class:`Design` session — one entry point for the paper's pipeline.

The paper's flow is a single story: normalize a Signal process, build its
clock hierarchy, check the weakly hierarchic criterion of Definition 12 /
Theorem 1, then generate sequential, controlled or concurrent code.  A
:class:`Design` holds that story as a session: components are added once,
every analysis artefact (normalization, timing relations, clock algebra,
hierarchy, scheduling graph, reaction LTS) is computed once and shared by
all subsequent queries through an :class:`AnalysisContext`, and one BDD
manager backs every clock calculus of the session.

    design = Design.from_source(source)
    design.verify("weak-endochrony")          # static criterion, MC fallback
    design.compile("controlled").run(inputs)  # Section 5.2 deployment

The same context makes composing N components cheap: the per-component
analyses built for the compositional criterion are the very objects reused
by code generation and by later verification calls, instead of being
re-derived per query as with the historical flat entry points.

Batched workloads go through :meth:`Design.verify_many` (several properties
in one call) and :meth:`Design.map_components` (one property on every
component); both accept ``parallel=N`` to shard the independent queries
over a process pool (see :mod:`repro.api.parallel`).  Model-checking
queries run on the on-the-fly engine of :mod:`repro.mc.onthefly`, served
and memoized by :meth:`AnalysisContext.onthefly`.

Since the artifact-graph refactor, every stage of the pipeline resolves
through one :class:`~repro.api.artifacts.ArtifactGraph` keyed by content
digests, with the :class:`~repro.service.store.ArtifactStore` as optional
persistent tier: warm stores accelerate every stage, and component edits
(:meth:`Design.replace_component`) invalidate only the digests that
actually changed.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.artifacts import ArtifactGraph, verdict_kind
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace
from repro.bdd.backend import create_manager, resolve_backend
from repro.bdd.bdd import BDDManager
from repro.lang.ast import Composition, Instantiation, ProcessDefinition, Restriction, Statement
from repro.lang.builder import ProcessBuilder
from repro.lang.normalize import NormalizedProcess, normalize
from repro.lang.parser import parse_program
from repro.lang.printer import (
    digest_of_forms,
    format_canonical,
    options_fingerprint,
    process_digest,
    process_fingerprint,
)
from repro.mc.compiled import (
    CompiledAbstraction,
    compiled_artifact_payload,
    compiled_from_artifact,
)
from repro.mc.onthefly import LazyReactionLTS, OnTheFlyChecker, ProductLTS
from repro.mc.transition import ReactionLTS, build_lts
from repro.properties.compilable import ProcessAnalysis
from repro.properties.composition import CompositionVerdict, check_weakly_hierarchic

#: everything a Design accepts as a component
ProcessLike = Union[ProcessDefinition, NormalizedProcess, ProcessBuilder, str]


class AnalysisContext:
    """Shared pipeline stages over one :class:`~repro.api.artifacts.ArtifactGraph`.

    All queries issued through the same context — by one :class:`Design` or by
    several designs sharing the context — reuse each other's work: every
    pipeline product (normalization, :class:`ProcessAnalysis`, clock
    hierarchy, compiled step relation, explored LTSs, on-the-fly engines) is
    a node of the context's artifact graph, keyed by the process's content
    digest, with dependency edges recorded between stages.  Attaching an
    artifact store (:attr:`artifact_cache`) makes the persistent stages —
    compiled relations, per-component diagnoses, composition obligations,
    verdicts — reload across sessions and processes, so a warm store
    accelerates *every* stage, not just compilation.

    The memory tier additionally keys name-carrying artifacts by an exact
    (α-sensitive) fingerprint: two processes that differ only in hidden
    local spellings share a content digest but must not share analyses or
    relations that name concrete signals (see
    :func:`repro.lang.printer.process_fingerprint`).
    """

    def __init__(
        self,
        registry: Optional[Mapping[str, ProcessDefinition]] = None,
        manager: Optional[BDDManager] = None,
        artifact_cache: Optional[object] = None,
        bdd_backend: Optional[str] = None,
    ):
        #: resolved BDD kernel name (argument > ``REPRO_BDD_BACKEND`` > default)
        #: used for the shared clock-calculus manager and every private
        #: compiled-relation manager this context creates.  An explicitly
        #: passed ``manager`` wins over the name for the shared manager.
        self.bdd_backend = (
            getattr(manager, "backend_name", None)
            if manager is not None
            else resolve_backend(bdd_backend)
        )
        self.manager = manager or create_manager(backend=self.bdd_backend)
        #: the artifact graph every stage of this context resolves through
        self.graph = ArtifactGraph(store=artifact_cache)
        self.registry: Dict[str, ProcessDefinition] = dict(registry or {})
        # id() keys need the keyed objects kept alive, hence the paired dicts.
        self._processes: Dict[int, NormalizedProcess] = {}
        self._digests: Dict[int, str] = {}
        self._fingerprints: Dict[int, str] = {}
        self._canonical_forms: Dict[int, str] = {}
        # product components are retyped under the composition's unified
        # types and re-created per product construction; (equation tuple
        # identity, effective types) picks one stable representative
        self._retyped: Dict[Tuple, NormalizedProcess] = {}
        # digest -> number of live designs addressing it (see retain_digest)
        self._digest_refs: Dict[str, int] = {}

    @property
    def artifact_cache(self) -> Optional[object]:
        """The persistent tier of the artifact graph (an
        :class:`~repro.service.store.ArtifactStore` or anything with
        ``get(digest, kind)`` / ``put(digest, kind, payload)``)."""
        return self.graph.store

    @artifact_cache.setter
    def artifact_cache(self, store: Optional[object]) -> None:
        self.graph.store = store

    @property
    def hits(self) -> int:
        """Memory-tier hits across all stages (historical counter name)."""
        return self.graph.hits

    @property
    def misses(self) -> int:
        """Artifacts actually computed across all stages (historical name)."""
        return self.graph.computed

    # -- registry ---------------------------------------------------------------
    def register(
        self, definitions: Union[ProcessDefinition, Mapping[str, ProcessDefinition]]
    ) -> None:
        """Add definitions that instantiations may reference during normalization."""
        if isinstance(definitions, ProcessDefinition):
            self.registry[definitions.name] = definitions
        else:
            self.registry.update(definitions)

    # -- content identities -------------------------------------------------------
    def digest_of(self, process: ProcessLike) -> str:
        """The α-invariant content digest of a process, memoized by identity."""
        normalized_process = self.normalized(process)
        key = id(normalized_process)
        digest = self._digests.get(key)
        if digest is None:
            digest = process_digest(normalized_process)
            self._processes[key] = normalized_process
            self._digests[key] = digest
        return digest

    def fingerprint_of(self, process: ProcessLike) -> str:
        """The exact (α-sensitive) fingerprint of a process, memoized by identity."""
        normalized_process = self.normalized(process)
        key = id(normalized_process)
        fingerprint = self._fingerprints.get(key)
        if fingerprint is None:
            fingerprint = process_fingerprint(normalized_process)
            self._processes[key] = normalized_process
            self._fingerprints[key] = fingerprint
        return fingerprint

    def canonical_form_of(self, process: ProcessLike) -> str:
        """The canonical printed form of a process, memoized by identity."""
        normalized_process = self.normalized(process)
        key = id(normalized_process)
        form = self._canonical_forms.get(key)
        if form is None:
            form = format_canonical(normalized_process)
            self._processes[key] = normalized_process
            self._canonical_forms[key] = form
        return form

    def design_digest(
        self, components: Sequence[ProcessLike], extra: Optional[str] = None
    ) -> str:
        """The content digest of a set of components.

        Identical to :func:`repro.lang.printer.canonical_digest` over the
        same components (the identity registries and stores key on) — both
        hash through :func:`repro.lang.printer.digest_of_forms` — but built
        from the per-component canonical forms this context has already
        memoized.
        """
        return digest_of_forms(
            (self.canonical_form_of(component) for component in components), extra
        )

    # -- digest liveness across the context's designs -----------------------------
    def retain_digest(self, digest: str) -> None:
        """Record that a live design addresses artifacts of ``digest``."""
        self._digest_refs[digest] = self._digest_refs.get(digest, 0) + 1

    def release_digest(self, digest: str) -> int:
        """Drop one reference; returns how many live references remain.

        Invalidation is gated on this: a context shared by several designs
        (the documented ``context=`` pattern) must not drop artifacts one
        design stopped using while another still addresses them.
        """
        remaining = self._digest_refs.get(digest, 0) - 1
        if remaining <= 0:
            self._digest_refs.pop(digest, None)
            return 0
        self._digest_refs[digest] = remaining
        return remaining

    # -- memoized pipeline stages -----------------------------------------------
    def normalized(self, process: ProcessLike) -> NormalizedProcess:
        """The normalized form of any process-like value, memoized.

        Normalization is the stage that *produces* content digests, so its
        node is keyed by definition identity (kept alive through the
        graph), not by digest — it resolves through the graph like every
        other stage, so its counters and dependency edges are recorded
        uniformly.
        """
        if isinstance(process, NormalizedProcess):
            return process
        if isinstance(process, str):
            return self.normalized(self._definition_from_source(process))
        if isinstance(process, ProcessBuilder):
            process = process.build()
        definition = process
        return self.graph.resolve(
            "normalize",
            f"definition:{id(definition)}",
            compute=lambda: normalize(definition, self.registry or None),
            keep=(definition,),
        )

    def analysis(self, process: ProcessLike) -> ProcessAnalysis:
        """The :class:`ProcessAnalysis` of a process, memoized on this context."""
        normalized_process = self.normalized(process)
        return self.graph.resolve(
            "analysis",
            self.digest_of(normalized_process),
            self.fingerprint_of(normalized_process),
            compute=lambda: ProcessAnalysis(normalized_process, manager=self.manager),
            keep=(normalized_process,),
        )

    def hierarchy(self, process: ProcessLike):
        """The clock hierarchy of a process — an artifact node of its own, so
        hierarchy-only consumers (variable-order seeding, lazy engines) are
        tracked and reused independently of the full analysis."""
        normalized_process = self.normalized(process)
        return self.graph.resolve(
            "hierarchy",
            self.digest_of(normalized_process),
            self.fingerprint_of(normalized_process),
            compute=lambda: self.analysis(normalized_process).hierarchy,
            keep=(normalized_process,),
        )

    def compiled(self, process: ProcessLike) -> Optional[CompiledAbstraction]:
        """The compiled step relation of a process, memoized on this context.

        Returns ``None`` when the process falls outside the boolean-definable
        fragment of :mod:`repro.mc.compiled` (the engines then fall back to
        the interpreter-backed enumeration); the negative answer is itself
        persisted so warm starts skip the recompile attempt.  The
        abstraction owns a private BDD manager — its variable order is
        seeded from the process's clock hierarchy and may be resifted,
        which a shared manager cannot allow.
        """
        normalized_process = self.normalized(process)
        return self._compiled_node(normalized_process, hierarchy_from_analysis=True)

    def _compiled_node(
        self,
        normalized_process: NormalizedProcess,
        hierarchy=None,
        hierarchy_from_analysis: bool = False,
    ) -> Optional[CompiledAbstraction]:
        def compute() -> Optional[CompiledAbstraction]:
            seed = (
                self.hierarchy(normalized_process)
                if hierarchy_from_analysis
                else hierarchy
            )
            return CompiledAbstraction.try_compile(
                normalized_process, seed, backend=self.bdd_backend
            )

        return self.graph.resolve(
            "compiled",
            self.digest_of(normalized_process),
            self.fingerprint_of(normalized_process),
            kind="compiled",
            compute=compute,
            encode=lambda value: compiled_artifact_payload(normalized_process, value),
            decode=lambda payload: compiled_from_artifact(
                normalized_process, payload, backend=self.bdd_backend
            ),
            keep=(normalized_process,),
        )

    def _compile_product_component(self, component, hierarchy=None):
        """Memoized compile for (possibly retyped) product components.

        :class:`~repro.mc.onthefly.ProductLTS` re-creates its retyped
        component objects per construction; the equations tuple is shared
        with the original process, making (equations identity, effective
        types) a stable key for one *representative* object whose digest
        then addresses the artifact node (retyped components have their own
        content digest — the canonical form covers types)."""
        key = (
            id(component.equations),
            tuple(component.inputs),
            tuple(sorted(component.types.items())),
        )
        representative = self._retyped.get(key)
        if representative is None:
            # keep the component alive so the id() in the key stays valid
            self._retyped[key] = representative = component
        return self._compiled_node(representative, hierarchy=hierarchy)

    def lts(
        self, process: ProcessLike, max_states: int = 512, engine: str = "compiled"
    ) -> ReactionLTS:
        """The explored reaction LTS of a process, memoized per state bound.

        ``engine="compiled"`` (the default) drives the exploration from the
        compiled step relation when the process fits its fragment — same
        states, same transitions, no interpreter on the per-state path;
        ``engine="interpreter"`` forces the historical eager enumeration.
        """
        normalized_process = self.normalized(process)
        abstraction = self.compiled(normalized_process) if engine == "compiled" else None
        effective = "compiled" if abstraction is not None else "interpreter"

        def compute() -> ReactionLTS:
            if abstraction is not None:
                # the compiled relation already encodes the clock structure;
                # the hierarchy (and the whole ProcessAnalysis) is not
                # needed, which keeps an artifact-store warm start free of
                # analysis work — re-resolving the node records the edge
                self.compiled(normalized_process)
                lazy = LazyReactionLTS(normalized_process, abstraction=abstraction)
                return OnTheFlyChecker(lazy, max_states=max_states).materialize()
            return build_lts(
                normalized_process,
                self.hierarchy(normalized_process),
                max_states=max_states,
            )

        fingerprint = (
            f"{self.fingerprint_of(normalized_process)}"
            f"|max_states={max_states}|engine={effective}"
        )
        return self.graph.resolve(
            "lts",
            self.digest_of(normalized_process),
            fingerprint,
            compute=compute,
            keep=(normalized_process,),
        )

    def onthefly(
        self,
        components: Sequence[ProcessLike],
        max_states: int = 512,
        name: Optional[str] = None,
        types: Optional[Mapping[str, str]] = None,
        engine: str = "compiled",
    ) -> OnTheFlyChecker:
        """An on-the-fly engine over the components, memoized per state bound.

        With one component this is a lazy view of its reaction LTS; with
        several it is the lazy synchronous :class:`ProductLTS` that joins
        per-component reactions on demand and never materializes the
        composed state space.  The engine is a monotone cache: queries
        issued through the same context keep extending one exploration.

        ``engine`` selects the per-component reaction source: ``"compiled"``
        (the default) enumerates admissible reactions from each component's
        compiled step relation, transparently falling back per component to
        the interpreter-backed abstraction outside the compiled fragment;
        ``"interpreter"`` opts out of compilation entirely.  Component
        hierarchies are resolved lazily — a product whose components all
        reload compiled relations from the store builds no
        :class:`ProcessAnalysis` at all.
        """
        normalized_components = [self.normalized(component) for component in components]
        types_key = tuple(sorted(types.items())) if types is not None else None

        def compute() -> OnTheFlyChecker:
            if len(normalized_components) == 1:
                abstraction = (
                    self.compiled(normalized_components[0])
                    if engine == "compiled"
                    else None
                )
                # a compiled (possibly store-loaded) relation makes the
                # hierarchy — and the whole ProcessAnalysis — unnecessary
                hierarchy = (
                    None
                    if abstraction is not None
                    else self.hierarchy(normalized_components[0])
                )
                lazy = LazyReactionLTS(
                    normalized_components[0], hierarchy, abstraction=abstraction
                )
            else:
                lazy = ProductLTS(
                    normalized_components,
                    name=name,
                    types=types,
                    engine=engine,
                    compile_component=self._compile_product_component,
                    hierarchy_for=self.hierarchy,
                )
            return OnTheFlyChecker(lazy, max_states=max_states)

        fingerprint = "|".join(
            [self.fingerprint_of(component) for component in normalized_components]
            + [f"max_states={max_states}", f"name={name}", f"types={types_key}", engine]
        )
        return self.graph.resolve(
            "engine",
            self.design_digest(normalized_components),
            fingerprint,
            compute=compute,
            keep=tuple(normalized_components),
        )

    def _definition_from_source(self, source: str) -> ProcessDefinition:
        definitions = parse_program(source)
        self.register(definitions)
        roots = _root_definitions(definitions)
        if len(roots) != 1:
            raise ValueError(
                f"source defines {len(roots)} top-level processes "
                f"({', '.join(sorted(d.name for d in roots))}); add them one by one "
                "or use Design.from_source()"
            )
        return roots[0]

    def stats(self) -> Dict[str, object]:
        """Aggregate and per-stage counters (historical keys preserved)."""
        graph_stats = self.graph.stats()
        return {
            "hits": self.graph.hits,
            "misses": self.graph.computed,
            "store_hits": self.graph.store_hits,
            "analyses": len(self.graph.nodes("analysis")),
            "ltss": len(self.graph.nodes("lts")),
            "engines": len(self.graph.nodes("engine")),
            "compiled": sum(
                1 for _key, value in self.graph.nodes("compiled") if value is not None
            ),
            "bdd_variables": len(self.manager.variables()),
            "bdd_backend": self.bdd_backend,
            "stages": graph_stats["stages"],
            "nodes": graph_stats["nodes"],
        }

    def store_root(self) -> Optional[str]:
        """The directory of the attached artifact store, when it has one —
        how worker processes re-open the same store."""
        root = getattr(self.graph.store, "root", None)
        return str(root) if root is not None else None


def _instantiated_names(statement: Statement) -> Iterable[str]:
    if isinstance(statement, Instantiation):
        yield statement.process
    elif isinstance(statement, Composition):
        for child in statement.statements:
            yield from _instantiated_names(child)
    elif isinstance(statement, Restriction):
        yield from _instantiated_names(statement.body)


def _root_definitions(definitions: Mapping[str, ProcessDefinition]) -> List[ProcessDefinition]:
    """The processes of a parsed program that no other parsed process instantiates."""
    instantiated: set = set()
    for definition in definitions.values():
        instantiated.update(_instantiated_names(definition.body))
    roots = [d for name, d in definitions.items() if name not in instantiated]
    return roots or list(definitions.values())


def analyze(
    process: Union[ProcessLike, ProcessAnalysis],
    registry: Optional[Mapping[str, ProcessDefinition]] = None,
    *,
    context: Optional[AnalysisContext] = None,
) -> ProcessAnalysis:
    """Analyse a process — the single canonical code path.

    Normalizes the input if needed (resolving instantiations against
    ``registry``) and builds the :class:`ProcessAnalysis` pipeline.  With a
    ``context`` the result is memoized and shares the context's BDD manager;
    without one, a fresh standalone analysis is returned.  ``repro.analyze``
    and the deprecated ``ProcessAnalysis.of`` both resolve here, as does
    every analysis issued by a :class:`Design`.
    """
    if isinstance(process, ProcessAnalysis):
        return process
    if context is None:
        context = AnalysisContext(registry)
        return ProcessAnalysis(context.normalized(process))
    if registry:
        context.register(registry)
    return context.analysis(process)


class Design:
    """A session over one design: components, shared analyses, verdicts, code.

    Components can be added as :class:`ProcessDefinition`,
    :class:`NormalizedProcess`, :class:`ProcessBuilder` or Signal source text;
    all analysis work is shared through :attr:`context` and survives across
    ``verify()`` / ``compile()`` calls, so checking several properties of an
    N-component composition normalizes and hierarchizes each component once.
    """

    def __init__(
        self,
        name: str = "design",
        components: Iterable[ProcessLike] = (),
        context: Optional[AnalysisContext] = None,
        registry: Optional[Mapping[str, ProcessDefinition]] = None,
        composition: Optional[ProcessLike] = None,
        bdd_backend: Optional[str] = None,
    ):
        self.name = name
        self.context = context or AnalysisContext(bdd_backend=bdd_backend)
        if registry:
            self.context.register(registry)
        self._components: List[NormalizedProcess] = []
        self._composition: Optional[NormalizedProcess] = None
        self._custom_composition = False
        self._criterion: Optional[CompositionVerdict] = None
        self._digest: Optional[str] = None
        #: digests this design holds live references to on the context (its
        #: current design digest and composition digest); superseded values
        #: are released — and invalidated once no design addresses them
        self._retained_digest: Optional[str] = None
        self._retained_composition_digest: Optional[str] = None
        self._component_designs: Dict[int, "Design"] = {}
        for component in components:
            self.add_component(component)
        if composition is not None:
            # A pre-built composition (e.g. from a generator) used as-is; it is
            # discarded if the component list changes afterwards.  It is part
            # of the design's identity: a custom composition can differ
            # semantically from the plain compose of the components, so the
            # design digest mixes it in (see :meth:`digest`).
            self._composition = self.context.normalized(composition)
            self._custom_composition = True
            self._track_composition(self._composition)

    # -- constructors ------------------------------------------------------------
    @classmethod
    def from_source(
        cls,
        source: str,
        name: Optional[str] = None,
        components: Optional[Sequence[str]] = None,
        context: Optional[AnalysisContext] = None,
        bdd_backend: Optional[str] = None,
    ) -> "Design":
        """Build a design from Signal source text.

        Every process defined in ``source`` joins the design's registry (so
        instantiations resolve); the design's components are the processes
        named in ``components``, or, by default, the *root* processes — those
        not instantiated by any other process of the program.
        """
        definitions = parse_program(source)
        context = context or AnalysisContext(bdd_backend=bdd_backend)
        context.register(definitions)
        if components is not None:
            missing = [n for n in components if n not in definitions]
            if missing:
                raise ValueError(f"source does not define {', '.join(missing)}")
            selected = [definitions[n] for n in components]
        else:
            selected = _root_definitions(definitions)
        design_name = name or (selected[0].name if len(selected) == 1 else "design")
        return cls(name=design_name, components=selected, context=context)

    @classmethod
    def from_builder(
        cls, builder: ProcessBuilder, context: Optional[AnalysisContext] = None
    ) -> "Design":
        """Build a single-component design from a :class:`ProcessBuilder`."""
        definition = builder.build()
        return cls(name=definition.name, components=[definition], context=context)

    @classmethod
    def from_process(
        cls,
        process: ProcessLike,
        context: Optional[AnalysisContext] = None,
        registry: Optional[Mapping[str, ProcessDefinition]] = None,
    ) -> "Design":
        """Build a single-component design from any process-like value."""
        design = cls(context=context, registry=registry, components=[process])
        design.name = design._components[0].name
        return design

    @classmethod
    def from_generated(
        cls, generated, context: Optional[AnalysisContext] = None
    ) -> "Design":
        """Build a design from a :class:`repro.gen.topologies.GeneratedDesign`.

        The generated components become the design's components; the design
        digest is then the content digest of exactly what the generator
        produced (the generator's composition is the plain compose of its
        components, so no custom ``composition=`` is needed — and the digest
        stays equal to a design rebuilt from the components' printed
        sources, which is what lets corpus entries re-address the same
        verdict artifacts).  This is the bridge between the scenario
        generator (:mod:`repro.gen`) and the verification facade —
        differential runs, corpus entries and sweeps all go through here.
        """
        return cls(
            name=generated.name,
            components=list(generated.components),
            context=context,
        )

    # -- composition -------------------------------------------------------------
    def _coerce_component(
        self, process: ProcessLike, name: Optional[str] = None
    ) -> NormalizedProcess:
        if isinstance(process, ProcessDefinition):
            self.context.register(process)
        component = self.context.normalized(process)
        if name:
            component = NormalizedProcess(
                name=name,
                inputs=component.inputs,
                outputs=component.outputs,
                locals=component.locals,
                equations=component.equations,
                types=dict(component.types),
            )
        return component

    def _release_and_maybe_invalidate(self, digest: str) -> None:
        if self.context.release_digest(digest) == 0:
            self.context.graph.invalidate(digest)

    def _track_composition(self, composed: NormalizedProcess) -> None:
        """Retain the (re)built composition's digest; supersede the old one.

        Releasing the previous composition digest — and invalidating it once
        no design addresses it — is what keeps repeated edits from
        accumulating stale composed analyses in the memory tier.
        """
        digest = self.context.digest_of(composed)
        if digest == self._retained_composition_digest:
            return
        previous = self._retained_composition_digest
        self.context.retain_digest(digest)
        self._retained_composition_digest = digest
        if previous is not None:
            self._release_and_maybe_invalidate(previous)

    def _release_tracked(self) -> None:
        """Give up every digest reference this design holds (cached
        sub-designs release through here when the parent discards them)."""
        for component in self._components:
            self._release_and_maybe_invalidate(self.context.digest_of(component))
        for digest in (self._retained_digest, self._retained_composition_digest):
            if digest is not None:
                self._release_and_maybe_invalidate(digest)
        self._retained_digest = None
        self._retained_composition_digest = None

    def _invalidate_composed(self, changed: Optional[NormalizedProcess] = None) -> None:
        """Reset design-level caches after a component change.

        Artifact nodes are keyed by content digest, so an edit invalidates
        by construction — untouched components keep addressing their
        existing artifacts, and composition-level nodes simply move to the
        new design digest.  Digest liveness is reference-counted on the
        context, so sessions sharing one context never lose each other's
        warm artifacts: when ``changed`` names a replaced/removed component
        whose digest no live design addresses anymore, its in-memory
        artifacts and everything that depended on them (old design
        verdicts, product engines) are dropped, dependency-tracked, from
        the graph.  The old design digest and old composition digest are
        superseded lazily — at the next :meth:`digest` computation and the
        next composition rebuild — which is where their stale obligations,
        engines and composed analyses get dropped.
        """
        for sub_design in self._component_designs.values():
            sub_design._release_tracked()
        self._component_designs.clear()
        self._composition = None
        self._custom_composition = False
        self._criterion = None
        self._digest = None
        if changed is not None:
            self._release_and_maybe_invalidate(self.context.digest_of(changed))

    def add_component(self, process: ProcessLike, name: Optional[str] = None) -> "Design":
        """Add a component (chainable); invalidates composed artefacts only."""
        component = self._coerce_component(process, name)
        self._components.append(component)
        self.context.retain_digest(self.context.digest_of(component))
        self._invalidate_composed()
        return self

    def replace_component(
        self, index: int, process: ProcessLike, name: Optional[str] = None
    ) -> "Design":
        """Replace component ``index`` (chainable) — the incremental edit.

        Only the digest that actually changed is invalidated: artifacts of
        every untouched component stay addressed (and warm), while the old
        component's in-memory artifacts and their dependents are dropped —
        unless another design on the same context still uses the old
        digest.  Re-verifying after a one-component edit therefore
        recomputes the changed component's stages and the composition-level
        obligations, nothing else — pinned by the stage counters in
        ``tests/test_incremental.py``.
        """
        old = self._components[index]
        component = self._coerce_component(process, name)
        self._components[index] = component
        self.context.retain_digest(self.context.digest_of(component))
        self._invalidate_composed(changed=old)
        return self

    def remove_component(self, index: int) -> "Design":
        """Remove component ``index`` (chainable); same invalidation contract
        as :meth:`replace_component`."""
        old = self._components.pop(index)
        self._invalidate_composed(changed=old)
        return self

    @property
    def components(self) -> Tuple[NormalizedProcess, ...]:
        return tuple(self._components)

    def digest(self) -> str:
        """The content digest of this design's components.

        The SHA-256 of the canonical printed source of every component (see
        :func:`repro.lang.printer.canonical_digest`): stable across sessions
        and processes, independent of component order and of how the
        components were constructed.  This is the identity the verification
        service content-addresses designs, artifacts and verdicts by, and
        the key every composition-level artifact node of this design lives
        under.  A design constructed with an explicit ``composition=`` (one
        that may differ semantically from the plain compose of the
        components) mixes that composition's content into the digest, so
        its verdicts never collide with the default-composition design's.
        """
        if not self._components:
            raise ValueError(f"design {self.name!r} has no components")
        if self._digest is None:
            extra = None
            if self._custom_composition and self._composition is not None:
                extra = "composition:" + self.context.digest_of(self._composition)
            self._digest = self.context.design_digest(self._components, extra=extra)
            if self._digest != self._retained_digest:
                previous = self._retained_digest
                self.context.retain_digest(self._digest)
                self._retained_digest = self._digest
                if previous is not None:
                    # the pre-edit design digest: drop its verdicts,
                    # obligations and engines once no design addresses it
                    self._release_and_maybe_invalidate(previous)
        return self._digest

    @property
    def composition(self) -> NormalizedProcess:
        """The synchronous composition of the components (cached)."""
        if not self._components:
            raise ValueError(f"design {self.name!r} has no components")
        if self._composition is None:
            composed = self._components[0]
            for component in self._components[1:]:
                composed = composed.compose(component)
            if composed.name != self.name:
                composed = NormalizedProcess(
                    name=self.name,
                    inputs=composed.inputs,
                    outputs=composed.outputs,
                    locals=composed.locals,
                    equations=composed.equations,
                    types=dict(composed.types),
                )
            self._composition = composed
            self._track_composition(composed)
        return self._composition

    @property
    def analysis(self) -> ProcessAnalysis:
        """The shared :class:`ProcessAnalysis` of the composition."""
        return self.context.analysis(self.composition)

    def component_analyses(self) -> List[ProcessAnalysis]:
        return [self.context.analysis(component) for component in self._components]

    def criterion(self) -> CompositionVerdict:
        """The weakly hierarchic criterion (Definition 12) over the components, cached."""
        if self._criterion is None:
            self._criterion = check_weakly_hierarchic(
                self._components, self.composition, context=self.context
            )
        return self._criterion

    # -- the pipeline: verify and compile ------------------------------------------
    def verify(self, prop: str, method: str = "auto", **options):
        """Check a property of the design; returns a :class:`~repro.api.results.Verdict`.

        ``method`` selects the backend: ``"static"`` (the clock calculus /
        Theorem 1), ``"explicit"`` (reaction LTS exploration), ``"symbolic"``
        (the invariant formulation of Section 4.1 with BDD reachability) or
        ``"auto"`` — prefer the static criterion, fall back to model checking
        when the criterion does not apply.

        Verdicts are artifact nodes keyed by ``(design digest, prop, method,
        options)``: repeated queries return the same object from the memory
        tier, and with an artifact store attached a verification query of a
        content-addressed design is deterministic, so completed verdicts
        reload across sessions (reloaded verdicts carry no ``report`` — the
        same sanitization as crossing a process boundary).
        """
        from repro.api.backends import canonical_property, verify as dispatch
        from repro.api.results import Verdict

        prop = canonical_property(prop)
        options_key = options_fingerprint(options)

        def compute() -> Verdict:
            if not obs_trace.TRACING:
                return dispatch(self, prop, method, **options)
            # tracing on: collect the per-stage self-time breakdown across
            # this query's dispatch and pin the kernel counters' delta to
            # the enclosing artifact.verdict span
            graph = self.context.graph
            seconds_before = dict(graph.stage_seconds)
            bdd_before = obs_profile.bdd_tags(self.context.manager)
            started = time.perf_counter()
            verdict = dispatch(self, prop, method, **options)
            elapsed = time.perf_counter() - started
            stages = {
                stage: round(total - seconds_before.get(stage, 0.0), 6)
                for stage, total in graph.stage_seconds.items()
                if total - seconds_before.get(stage, 0.0) > 0.0
            }
            stages["verify"] = round(max(elapsed - sum(stages.values()), 0.0), 6)
            verdict.cost = dataclasses.replace(verdict.cost, stages=stages)
            obs_trace.tag_current(
                outcome=bool(verdict.holds),
                **obs_profile.bdd_tag_delta(bdd_before, self.context.manager),
            )
            return verdict

        return self.context.graph.resolve(
            "verdict",
            self.digest(),
            f"{prop}|{method}|{options_key}",
            kind=verdict_kind(prop, method, options_key),
            compute=compute,
            encode=lambda verdict: verdict.to_dict(),
            decode=Verdict.from_dict,
        )

    @staticmethod
    def _query_spec(spec, default_method: str, common: Mapping[str, object]):
        """Normalize one ``verify_many`` spec to ``(prop, method, options)``.

        Accepted forms: ``"prop"``, ``("prop", "method")``,
        ``("prop", "method", {options})`` and
        ``{"prop": ..., "method": ..., **options}``.
        """
        if isinstance(spec, str):
            return spec, default_method, dict(common)
        if isinstance(spec, Mapping):
            options = {**common, **spec}
            prop = options.pop("prop")
            method = options.pop("method", default_method)
            return prop, method, options
        spec = tuple(spec)
        if len(spec) == 2:
            prop, method = spec
            return prop, method, dict(common)
        if len(spec) == 3:
            prop, method, options = spec
            return prop, method, {**common, **options}
        raise ValueError(f"unsupported verify_many spec {spec!r}")

    def verify_many(
        self, props: Iterable[object], parallel: Optional[int] = None,
        method: str = "auto", **common_options
    ) -> List[object]:
        """Check several properties of the design; one Verdict per spec, in order.

        ``props`` is a list of property specs (see :meth:`_query_spec`);
        ``method`` and ``common_options`` apply to every spec that does not
        override them.  With ``parallel=N > 1`` the independent queries are
        sharded over ``N`` worker processes, each holding its own memoized
        :class:`AnalysisContext`; the returned verdicts are then *sanitized*
        (``report`` dropped, unpicklable witnesses stringified — see
        :mod:`repro.api.parallel`).  Sequentially (the default), queries
        share this design's context and cache, and verdicts are complete.
        """
        specs = [self._query_spec(spec, method, common_options) for spec in props]
        if not parallel or parallel <= 1 or len(specs) <= 1:
            return [self.verify(prop, m, **options) for prop, m, options in specs]
        from repro.api.parallel import run_queries

        tasks = [(None, prop, m, options) for prop, m, options in specs]
        return run_queries(
            self._components, self.name, tasks, parallel,
            store_root=self.context.store_root(),
        )

    def component_design(self, index: int) -> "Design":
        """A cached single-component design over component ``index``, sharing
        this design's :class:`AnalysisContext`."""
        design = self._component_designs.get(index)
        if design is None:
            design = Design.from_process(self._components[index], context=self.context)
            self._component_designs[index] = design
        return design

    def map_components(
        self, prop: str, method: str = "auto", parallel: Optional[int] = None, **options
    ) -> List[object]:
        """Check ``prop`` on every component separately; one Verdict per component.

        The per-component queries are independent, which makes this the
        natural sharding unit of the compositional criterion: with
        ``parallel=N`` they run over ``N`` worker processes (verdicts
        sanitized as in :meth:`verify_many`), otherwise sequentially through
        this design's shared context.
        """
        indices = range(len(self._components))
        if not parallel or parallel <= 1 or len(self._components) <= 1:
            return [
                self.component_design(index).verify(prop, method, **options)
                for index in indices
            ]
        from repro.api.parallel import run_queries

        tasks = [(index, prop, method, dict(options)) for index in indices]
        return run_queries(
            self._components, self.name, tasks, parallel,
            store_root=self.context.store_root(),
        )

    def compile(self, strategy: str = "sequential", runtime: str = "compiled", **options):
        """Deploy the design; returns a :class:`~repro.api.deploy.Deployment`.

        ``strategy`` is ``"sequential"`` (Section 3.6 / 5.1), ``"controlled"``
        (the synthesized controller of Section 5.2), ``"concurrent"`` (threads
        and barriers) or ``"ltta"`` (quasi-synchronous execution with sustained
        shared signals, Section 4.2).

        ``runtime`` selects the execution tier behind the step functions:
        ``"compiled"`` (the exec-compiled code of Section 3.6, the default),
        ``"specialized"`` (IO and delay registers bound into closures — no
        per-step dictionary lookups), ``"interpreter"`` (one dispatch per
        scheduled operation; the measured baseline) or ``"batched"`` (the
        numpy fleet runtime of :mod:`repro.codegen.batch`, sequential
        strategy only — its deployment adds ``run_many(instances)``).
        """
        from repro.api.deploy import build_deployment

        return build_deployment(self, strategy, runtime=runtime, **options)

    # -- reporting ----------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Per-stage artifact-graph counters of this design's context.

        ``stages`` maps each pipeline stage (``normalize``, ``analysis``,
        ``hierarchy``, ``compiled``, ``lts``, ``engine``, ``diagnosis``,
        ``obligations``, ``verdict``) to its ``hits`` / ``store_hits`` /
        ``computed`` / ``stored`` / ``invalid`` / ``invalidated`` counters —
        the instrumentation behind the incremental-reverification claims.
        JSON-safe throughout.
        """
        graph_stats = self.context.graph.stats()
        store = self.context.graph.store
        store_stats = getattr(store, "stats", None)
        return {
            "design": self.name,
            "components": len(self._components),
            "digest": self.digest() if self._components else None,
            "stages": graph_stats["stages"],
            "nodes": graph_stats["nodes"],
            "edges": graph_stats["edges"],
            "hits": graph_stats["hits"],
            "store_hits": graph_stats["store_hits"],
            "computed": graph_stats["computed"],
            "store": store_stats() if callable(store_stats) else None,
        }

    def summary(self) -> Dict[str, object]:
        """Composition summary plus per-component endochrony, uniform with reports."""
        summary = self.analysis.summary()
        summary["design"] = self.name
        summary["components"] = {
            analysis.process.name: {
                "compilable": analysis.is_compilable(),
                "roots": analysis.root_count(),
            }
            for analysis in self.component_analyses()
        }
        return summary

    def describe(self) -> str:
        lines = [f"design {self.name}: {len(self._components)} component(s)"]
        for analysis in self.component_analyses():
            lines.append(
                f"  {analysis.process.name}: compilable={analysis.is_compilable()} "
                f"roots={analysis.root_count()}"
            )
        analysis = self.analysis
        lines.append(
            f"  composition: well-clocked={analysis.is_well_clocked()} "
            f"acyclic={analysis.is_acyclic()} roots={analysis.root_count()}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Design({self.name!r}, components={[c.name for c in self._components]})"
