"""The :class:`Design` session — one entry point for the paper's pipeline.

The paper's flow is a single story: normalize a Signal process, build its
clock hierarchy, check the weakly hierarchic criterion of Definition 12 /
Theorem 1, then generate sequential, controlled or concurrent code.  A
:class:`Design` holds that story as a session: components are added once,
every analysis artefact (normalization, timing relations, clock algebra,
hierarchy, scheduling graph, reaction LTS) is computed once and shared by
all subsequent queries through an :class:`AnalysisContext`, and one BDD
manager backs every clock calculus of the session.

    design = Design.from_source(source)
    design.verify("weak-endochrony")          # static criterion, MC fallback
    design.compile("controlled").run(inputs)  # Section 5.2 deployment

The same context makes composing N components cheap: the per-component
analyses built for the compositional criterion are the very objects reused
by code generation and by later verification calls, instead of being
re-derived per query as with the historical flat entry points.

Batched workloads go through :meth:`Design.verify_many` (several properties
in one call) and :meth:`Design.map_components` (one property on every
component); both accept ``parallel=N`` to shard the independent queries
over a process pool (see :mod:`repro.api.parallel`).  Model-checking
queries run on the on-the-fly engine of :mod:`repro.mc.onthefly`, served
and memoized by :meth:`AnalysisContext.onthefly`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.bdd.bdd import BDDManager
from repro.lang.ast import Composition, Instantiation, ProcessDefinition, Restriction, Statement
from repro.lang.builder import ProcessBuilder
from repro.lang.normalize import NormalizedProcess, normalize
from repro.lang.parser import parse_program
from repro.mc.compiled import CompiledAbstraction
from repro.mc.onthefly import LazyReactionLTS, OnTheFlyChecker, ProductLTS
from repro.mc.transition import ReactionLTS, build_lts
from repro.properties.compilable import ProcessAnalysis
from repro.properties.composition import CompositionVerdict, check_weakly_hierarchic

#: everything a Design accepts as a component
ProcessLike = Union[ProcessDefinition, NormalizedProcess, ProcessBuilder, str]


class AnalysisContext:
    """Shared memo of normalizations, analyses, LTSs and one BDD manager.

    All queries issued through the same context — by one :class:`Design` or by
    several designs sharing the context — reuse each other's work:

    * ``normalized()`` caches the expansion of a :class:`ProcessDefinition`
      into primitive equations (keyed by definition identity);
    * ``analysis()`` caches the :class:`ProcessAnalysis` of a normalized
      process, all built over the *same* :class:`BDDManager`, so clock BDDs
      are hash-consed across components and across repeated queries;
    * ``lts()`` caches the explored reaction LTS used by the explicit and
      symbolic model-checking backends.
    """

    def __init__(
        self,
        registry: Optional[Mapping[str, ProcessDefinition]] = None,
        manager: Optional[BDDManager] = None,
        artifact_cache: Optional[object] = None,
    ):
        self.manager = manager or BDDManager()
        #: optional persistence hook (see :class:`repro.service.store.ArtifactStore`):
        #: an object with ``load_compiled(process) -> (found, abstraction)`` and
        #: ``store_compiled(process, abstraction)``.  When set, compiled step
        #: relations are reloaded from storage instead of being recompiled,
        #: and fresh compilations are persisted for the next session.
        self.artifact_cache = artifact_cache
        self.registry: Dict[str, ProcessDefinition] = dict(registry or {})
        # id() keys need the keyed objects kept alive, hence the paired dicts.
        self._definitions: Dict[int, ProcessDefinition] = {}
        self._normalized: Dict[int, NormalizedProcess] = {}
        self._processes: Dict[int, NormalizedProcess] = {}
        self._analyses: Dict[int, ProcessAnalysis] = {}
        self._ltss: Dict[Tuple[int, int, str], ReactionLTS] = {}
        self._engines: Dict[Tuple, OnTheFlyChecker] = {}
        self._compiled: Dict[int, Optional[CompiledAbstraction]] = {}
        # product components are retyped under the composition's unified
        # types, so their compilations are memoized by (equation tuple
        # identity, effective types) — stable across product constructions
        self._compiled_retyped: Dict[Tuple, Tuple[NormalizedProcess, Optional[CompiledAbstraction]]] = {}
        self.hits = 0
        self.misses = 0

    # -- registry ---------------------------------------------------------------
    def register(
        self, definitions: Union[ProcessDefinition, Mapping[str, ProcessDefinition]]
    ) -> None:
        """Add definitions that instantiations may reference during normalization."""
        if isinstance(definitions, ProcessDefinition):
            self.registry[definitions.name] = definitions
        else:
            self.registry.update(definitions)

    # -- memoized pipeline stages -----------------------------------------------
    def normalized(self, process: ProcessLike) -> NormalizedProcess:
        """The normalized form of any process-like value, memoized."""
        if isinstance(process, NormalizedProcess):
            return process
        if isinstance(process, str):
            return self.normalized(self._definition_from_source(process))
        if isinstance(process, ProcessBuilder):
            process = process.build()
        key = id(process)
        cached = self._normalized.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = normalize(process, self.registry or None)
        self._definitions[key] = process
        self._normalized[key] = result
        return result

    def analysis(self, process: ProcessLike) -> ProcessAnalysis:
        """The :class:`ProcessAnalysis` of a process, memoized on this context."""
        normalized_process = self.normalized(process)
        key = id(normalized_process)
        cached = self._analyses.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        analysis = ProcessAnalysis(normalized_process, manager=self.manager)
        self._processes[key] = normalized_process
        self._analyses[key] = analysis
        return analysis

    def compiled(self, process: ProcessLike) -> Optional[CompiledAbstraction]:
        """The compiled step relation of a process, memoized on this context.

        Returns ``None`` when the process falls outside the boolean-definable
        fragment of :mod:`repro.mc.compiled` (the engines then fall back to
        the interpreter-backed enumeration).  The abstraction owns a private
        BDD manager — its variable order is seeded from the process's clock
        hierarchy and may be resifted, which a shared manager cannot allow.
        """
        normalized_process = self.normalized(process)
        key = id(normalized_process)
        if key in self._compiled:
            self.hits += 1
            return self._compiled[key]
        self.misses += 1
        found, abstraction = self._load_compiled_artifact(normalized_process)
        if not found:
            analysis = self.analysis(normalized_process)
            abstraction = CompiledAbstraction.try_compile(
                normalized_process, analysis.hierarchy
            )
            self._store_compiled_artifact(normalized_process, abstraction)
        self._processes[key] = normalized_process
        self._compiled[key] = abstraction
        return abstraction

    def _load_compiled_artifact(self, process: NormalizedProcess):
        """``(found, abstraction)`` from the artifact cache; ``(False, None)``
        when there is no cache or it has nothing for this process.  A found
        ``None`` is the persisted *negative* answer (process known to be
        outside the compiled fragment), which skips the recompile attempt —
        and its hierarchy construction — entirely."""
        if self.artifact_cache is None:
            return False, None
        return self.artifact_cache.load_compiled(process)

    def _store_compiled_artifact(
        self, process: NormalizedProcess, abstraction: Optional[CompiledAbstraction]
    ) -> None:
        if self.artifact_cache is not None:
            self.artifact_cache.store_compiled(process, abstraction)

    def _compile_product_component(self, component, hierarchy=None):
        """Memoized compile for (possibly retyped) product components.

        :class:`~repro.mc.onthefly.ProductLTS` re-creates its retyped
        component objects per construction, so the id-keyed
        :meth:`compiled` memo would always miss; the equations tuple is
        shared with the original process, making (equations identity,
        effective types) a stable key across product instances.
        """
        key = (
            id(component.equations),
            tuple(component.inputs),
            tuple(sorted(component.types.items())),
        )
        cached = self._compiled_retyped.get(key)
        if cached is not None:
            self.hits += 1
            return cached[1]
        self.misses += 1
        # retyped components have their own content digest (the canonical
        # form covers types), so they get their own artifact-store entries
        found, abstraction = self._load_compiled_artifact(component)
        if not found:
            abstraction = CompiledAbstraction.try_compile(component, hierarchy)
            self._store_compiled_artifact(component, abstraction)
        # keep the component alive so the id() in the key stays valid
        self._compiled_retyped[key] = (component, abstraction)
        return abstraction

    def lts(
        self, process: ProcessLike, max_states: int = 512, engine: str = "compiled"
    ) -> ReactionLTS:
        """The explored reaction LTS of a process, memoized per state bound.

        ``engine="compiled"`` (the default) drives the exploration from the
        compiled step relation when the process fits its fragment — same
        states, same transitions, no interpreter on the per-state path;
        ``engine="interpreter"`` forces the historical eager enumeration.
        """
        normalized_process = self.normalized(process)
        abstraction = self.compiled(normalized_process) if engine == "compiled" else None
        effective = "compiled" if abstraction is not None else "interpreter"
        key = (id(normalized_process), max_states, effective)
        cached = self._ltss.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if abstraction is not None:
            # the compiled relation already encodes the clock structure; the
            # hierarchy (and the whole ProcessAnalysis) is not needed, which
            # keeps an artifact-store warm start free of analysis work
            lazy = LazyReactionLTS(normalized_process, abstraction=abstraction)
            lts = OnTheFlyChecker(lazy, max_states=max_states).materialize()
        else:
            analysis = self.analysis(normalized_process)
            lts = build_lts(normalized_process, analysis.hierarchy, max_states=max_states)
        self._ltss[key] = lts
        return lts

    def onthefly(
        self,
        components: Sequence[ProcessLike],
        max_states: int = 512,
        name: Optional[str] = None,
        types: Optional[Mapping[str, str]] = None,
        engine: str = "compiled",
    ) -> OnTheFlyChecker:
        """An on-the-fly engine over the components, memoized per state bound.

        With one component this is a lazy view of its reaction LTS; with
        several it is the lazy synchronous :class:`ProductLTS` that joins
        per-component reactions on demand and never materializes the
        composed state space.  The engine is a monotone cache: queries
        issued through the same context keep extending one exploration.

        ``engine`` selects the per-component reaction source: ``"compiled"``
        (the default) enumerates admissible reactions from each component's
        compiled step relation, transparently falling back per component to
        the interpreter-backed abstraction outside the compiled fragment;
        ``"interpreter"`` opts out of compilation entirely.
        """
        normalized_components = [self.normalized(component) for component in components]
        types_key = tuple(sorted(types.items())) if types is not None else None
        key = (tuple(id(c) for c in normalized_components), max_states, name, types_key, engine)
        cached = self._engines.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        if len(normalized_components) == 1:
            abstraction = (
                self.compiled(normalized_components[0]) if engine == "compiled" else None
            )
            # a compiled (possibly artifact-store-loaded) relation makes the
            # hierarchy — and the whole ProcessAnalysis — unnecessary here
            hierarchy = (
                None
                if abstraction is not None
                else self.analysis(normalized_components[0]).hierarchy
            )
            lazy = LazyReactionLTS(
                normalized_components[0], hierarchy, abstraction=abstraction
            )
        else:
            hierarchies = [self.analysis(c).hierarchy for c in normalized_components]
            lazy = ProductLTS(
                normalized_components,
                hierarchies,
                name=name,
                types=types,
                engine=engine,
                compile_component=self._compile_product_component,
            )
        engine_checker = OnTheFlyChecker(lazy, max_states=max_states)
        self._engines[key] = engine_checker
        return engine_checker

    def _definition_from_source(self, source: str) -> ProcessDefinition:
        definitions = parse_program(source)
        self.register(definitions)
        roots = _root_definitions(definitions)
        if len(roots) != 1:
            raise ValueError(
                f"source defines {len(roots)} top-level processes "
                f"({', '.join(sorted(d.name for d in roots))}); add them one by one "
                "or use Design.from_source()"
            )
        return roots[0]

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "analyses": len(self._analyses),
            "ltss": len(self._ltss),
            "engines": len(self._engines),
            "compiled": sum(1 for a in self._compiled.values() if a is not None),
            "bdd_variables": len(self.manager.variables()),
        }


def _instantiated_names(statement: Statement) -> Iterable[str]:
    if isinstance(statement, Instantiation):
        yield statement.process
    elif isinstance(statement, Composition):
        for child in statement.statements:
            yield from _instantiated_names(child)
    elif isinstance(statement, Restriction):
        yield from _instantiated_names(statement.body)


def _root_definitions(definitions: Mapping[str, ProcessDefinition]) -> List[ProcessDefinition]:
    """The processes of a parsed program that no other parsed process instantiates."""
    instantiated: set = set()
    for definition in definitions.values():
        instantiated.update(_instantiated_names(definition.body))
    roots = [d for name, d in definitions.items() if name not in instantiated]
    return roots or list(definitions.values())


def analyze(
    process: Union[ProcessLike, ProcessAnalysis],
    registry: Optional[Mapping[str, ProcessDefinition]] = None,
    *,
    context: Optional[AnalysisContext] = None,
) -> ProcessAnalysis:
    """Analyse a process — the single canonical code path.

    Normalizes the input if needed (resolving instantiations against
    ``registry``) and builds the :class:`ProcessAnalysis` pipeline.  With a
    ``context`` the result is memoized and shares the context's BDD manager;
    without one, a fresh standalone analysis is returned.  ``repro.analyze``
    and the deprecated ``ProcessAnalysis.of`` both resolve here, as does
    every analysis issued by a :class:`Design`.
    """
    if isinstance(process, ProcessAnalysis):
        return process
    if context is None:
        context = AnalysisContext(registry)
        return ProcessAnalysis(context.normalized(process))
    if registry:
        context.register(registry)
    return context.analysis(process)


class Design:
    """A session over one design: components, shared analyses, verdicts, code.

    Components can be added as :class:`ProcessDefinition`,
    :class:`NormalizedProcess`, :class:`ProcessBuilder` or Signal source text;
    all analysis work is shared through :attr:`context` and survives across
    ``verify()`` / ``compile()`` calls, so checking several properties of an
    N-component composition normalizes and hierarchizes each component once.
    """

    def __init__(
        self,
        name: str = "design",
        components: Iterable[ProcessLike] = (),
        context: Optional[AnalysisContext] = None,
        registry: Optional[Mapping[str, ProcessDefinition]] = None,
        composition: Optional[ProcessLike] = None,
    ):
        self.name = name
        self.context = context or AnalysisContext()
        if registry:
            self.context.register(registry)
        self._components: List[NormalizedProcess] = []
        self._composition: Optional[NormalizedProcess] = None
        self._criterion: Optional[CompositionVerdict] = None
        self._verdicts: Dict[Tuple[str, str, str], object] = {}
        self._component_designs: Dict[int, "Design"] = {}
        for component in components:
            self.add_component(component)
        if composition is not None:
            # A pre-built composition (e.g. from a generator) used as-is; it is
            # discarded if the component list changes afterwards.
            self._composition = self.context.normalized(composition)

    # -- constructors ------------------------------------------------------------
    @classmethod
    def from_source(
        cls,
        source: str,
        name: Optional[str] = None,
        components: Optional[Sequence[str]] = None,
        context: Optional[AnalysisContext] = None,
    ) -> "Design":
        """Build a design from Signal source text.

        Every process defined in ``source`` joins the design's registry (so
        instantiations resolve); the design's components are the processes
        named in ``components``, or, by default, the *root* processes — those
        not instantiated by any other process of the program.
        """
        definitions = parse_program(source)
        context = context or AnalysisContext()
        context.register(definitions)
        if components is not None:
            missing = [n for n in components if n not in definitions]
            if missing:
                raise ValueError(f"source does not define {', '.join(missing)}")
            selected = [definitions[n] for n in components]
        else:
            selected = _root_definitions(definitions)
        design_name = name or (selected[0].name if len(selected) == 1 else "design")
        return cls(name=design_name, components=selected, context=context)

    @classmethod
    def from_builder(
        cls, builder: ProcessBuilder, context: Optional[AnalysisContext] = None
    ) -> "Design":
        """Build a single-component design from a :class:`ProcessBuilder`."""
        definition = builder.build()
        return cls(name=definition.name, components=[definition], context=context)

    @classmethod
    def from_process(
        cls,
        process: ProcessLike,
        context: Optional[AnalysisContext] = None,
        registry: Optional[Mapping[str, ProcessDefinition]] = None,
    ) -> "Design":
        """Build a single-component design from any process-like value."""
        design = cls(context=context, registry=registry, components=[process])
        design.name = design._components[0].name
        return design

    # -- composition -------------------------------------------------------------
    def add_component(self, process: ProcessLike, name: Optional[str] = None) -> "Design":
        """Add a component (chainable); invalidates composed artefacts only."""
        if isinstance(process, ProcessDefinition):
            self.context.register(process)
        component = self.context.normalized(process)
        if name:
            component = NormalizedProcess(
                name=name,
                inputs=component.inputs,
                outputs=component.outputs,
                locals=component.locals,
                equations=component.equations,
                types=dict(component.types),
            )
        self._components.append(component)
        self._composition = None
        self._criterion = None
        self._verdicts.clear()
        self._component_designs.clear()
        return self

    @property
    def components(self) -> Tuple[NormalizedProcess, ...]:
        return tuple(self._components)

    def digest(self) -> str:
        """The content digest of this design's components.

        The SHA-256 of the canonical printed source of every component (see
        :func:`repro.lang.printer.canonical_digest`): stable across sessions
        and processes, independent of component order and of how the
        components were constructed.  This is the identity the verification
        service content-addresses designs, artifacts and verdicts by.
        """
        from repro.lang.printer import canonical_digest

        if not self._components:
            raise ValueError(f"design {self.name!r} has no components")
        return canonical_digest(self._components)

    @property
    def composition(self) -> NormalizedProcess:
        """The synchronous composition of the components (cached)."""
        if not self._components:
            raise ValueError(f"design {self.name!r} has no components")
        if self._composition is None:
            composed = self._components[0]
            for component in self._components[1:]:
                composed = composed.compose(component)
            if composed.name != self.name:
                composed = NormalizedProcess(
                    name=self.name,
                    inputs=composed.inputs,
                    outputs=composed.outputs,
                    locals=composed.locals,
                    equations=composed.equations,
                    types=dict(composed.types),
                )
            self._composition = composed
        return self._composition

    @property
    def analysis(self) -> ProcessAnalysis:
        """The shared :class:`ProcessAnalysis` of the composition."""
        return self.context.analysis(self.composition)

    def component_analyses(self) -> List[ProcessAnalysis]:
        return [self.context.analysis(component) for component in self._components]

    def criterion(self) -> CompositionVerdict:
        """The weakly hierarchic criterion (Definition 12) over the components, cached."""
        if self._criterion is None:
            self._criterion = check_weakly_hierarchic(
                self._components, self.composition, context=self.context
            )
        return self._criterion

    # -- the pipeline: verify and compile ------------------------------------------
    def verify(self, prop: str, method: str = "auto", **options):
        """Check a property of the design; returns a :class:`~repro.api.results.Verdict`.

        ``method`` selects the backend: ``"static"`` (the clock calculus /
        Theorem 1), ``"explicit"`` (reaction LTS exploration), ``"symbolic"``
        (the invariant formulation of Section 4.1 with BDD reachability) or
        ``"auto"`` — prefer the static criterion, fall back to model checking
        when the criterion does not apply.  Verdicts are cached per
        ``(prop, method, options)``.
        """
        from repro.api.backends import canonical_property, verify as dispatch

        prop = canonical_property(prop)
        key = (prop, method, repr(sorted(options.items(), key=repr)))
        cached = self._verdicts.get(key)
        if cached is not None:
            self.context.hits += 1
            return cached
        verdict = dispatch(self, prop, method, **options)
        self._verdicts[key] = verdict
        return verdict

    @staticmethod
    def _query_spec(spec, default_method: str, common: Mapping[str, object]):
        """Normalize one ``verify_many`` spec to ``(prop, method, options)``.

        Accepted forms: ``"prop"``, ``("prop", "method")``,
        ``("prop", "method", {options})`` and
        ``{"prop": ..., "method": ..., **options}``.
        """
        if isinstance(spec, str):
            return spec, default_method, dict(common)
        if isinstance(spec, Mapping):
            options = {**common, **spec}
            prop = options.pop("prop")
            method = options.pop("method", default_method)
            return prop, method, options
        spec = tuple(spec)
        if len(spec) == 2:
            prop, method = spec
            return prop, method, dict(common)
        if len(spec) == 3:
            prop, method, options = spec
            return prop, method, {**common, **options}
        raise ValueError(f"unsupported verify_many spec {spec!r}")

    def verify_many(
        self, props: Iterable[object], parallel: Optional[int] = None,
        method: str = "auto", **common_options
    ) -> List[object]:
        """Check several properties of the design; one Verdict per spec, in order.

        ``props`` is a list of property specs (see :meth:`_query_spec`);
        ``method`` and ``common_options`` apply to every spec that does not
        override them.  With ``parallel=N > 1`` the independent queries are
        sharded over ``N`` worker processes, each holding its own memoized
        :class:`AnalysisContext`; the returned verdicts are then *sanitized*
        (``report`` dropped, unpicklable witnesses stringified — see
        :mod:`repro.api.parallel`).  Sequentially (the default), queries
        share this design's context and cache, and verdicts are complete.
        """
        specs = [self._query_spec(spec, method, common_options) for spec in props]
        if not parallel or parallel <= 1 or len(specs) <= 1:
            return [self.verify(prop, m, **options) for prop, m, options in specs]
        from repro.api.parallel import run_queries

        tasks = [(None, prop, m, options) for prop, m, options in specs]
        return run_queries(self._components, self.name, tasks, parallel)

    def component_design(self, index: int) -> "Design":
        """A cached single-component design over component ``index``, sharing
        this design's :class:`AnalysisContext`."""
        design = self._component_designs.get(index)
        if design is None:
            design = Design.from_process(self._components[index], context=self.context)
            self._component_designs[index] = design
        return design

    def map_components(
        self, prop: str, method: str = "auto", parallel: Optional[int] = None, **options
    ) -> List[object]:
        """Check ``prop`` on every component separately; one Verdict per component.

        The per-component queries are independent, which makes this the
        natural sharding unit of the compositional criterion: with
        ``parallel=N`` they run over ``N`` worker processes (verdicts
        sanitized as in :meth:`verify_many`), otherwise sequentially through
        this design's shared context.
        """
        indices = range(len(self._components))
        if not parallel or parallel <= 1 or len(self._components) <= 1:
            return [
                self.component_design(index).verify(prop, method, **options)
                for index in indices
            ]
        from repro.api.parallel import run_queries

        tasks = [(index, prop, method, dict(options)) for index in indices]
        return run_queries(self._components, self.name, tasks, parallel)

    def compile(self, strategy: str = "sequential", **options):
        """Deploy the design; returns a :class:`~repro.api.deploy.Deployment`.

        ``strategy`` is ``"sequential"`` (Section 3.6 / 5.1), ``"controlled"``
        (the synthesized controller of Section 5.2), ``"concurrent"`` (threads
        and barriers) or ``"ltta"`` (quasi-synchronous execution with sustained
        shared signals, Section 4.2).
        """
        from repro.api.deploy import build_deployment

        return build_deployment(self, strategy, **options)

    # -- reporting ----------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Composition summary plus per-component endochrony, uniform with reports."""
        summary = self.analysis.summary()
        summary["design"] = self.name
        summary["components"] = {
            analysis.process.name: {
                "compilable": analysis.is_compilable(),
                "roots": analysis.root_count(),
            }
            for analysis in self.component_analyses()
        }
        return summary

    def describe(self) -> str:
        lines = [f"design {self.name}: {len(self._components)} component(s)"]
        for analysis in self.component_analyses():
            lines.append(
                f"  {analysis.process.name}: compilable={analysis.is_compilable()} "
                f"roots={analysis.root_count()}"
            )
        analysis = self.analysis
        lines.append(
            f"  composition: well-clocked={analysis.is_well_clocked()} "
            f"acyclic={analysis.is_acyclic()} roots={analysis.root_count()}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Design({self.name!r}, components={[c.name for c in self._components]})"
