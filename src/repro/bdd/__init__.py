"""Reduced Ordered Binary Decision Diagrams.

A small, dependency-free ROBDD engine used by the clock calculus (to decide
entailment between synchronization relations, ``R |= S``) and by the symbolic
model checker — the role Sigali plays in the Polychrony toolset.
"""

from repro.bdd.bdd import BDD, BDDManager
from repro.bdd.expr import BoolExpr, Var, TRUE, FALSE, And, Or, Not, Implies, Iff, Xor

__all__ = [
    "BDD",
    "BDDManager",
    "BoolExpr",
    "Var",
    "TRUE",
    "FALSE",
    "And",
    "Or",
    "Not",
    "Implies",
    "Iff",
    "Xor",
]
