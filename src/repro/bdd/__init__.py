"""Reduced Ordered Binary Decision Diagrams.

A small, dependency-free ROBDD engine used by the clock calculus (to decide
entailment between synchronization relations, ``R |= S``) and by the symbolic
model checker — the role Sigali plays in the Polychrony toolset.
"""

from repro.bdd.backend import (
    BACKEND_ENV,
    BDDBackend,
    available_backends,
    backend_class,
    create_manager,
    load_manager,
    resolve_backend,
)
from repro.bdd.bdd import BDD, BDDManager
from repro.bdd.expr import BoolExpr, Var, TRUE, FALSE, And, Or, Not, Implies, Iff, Xor

__all__ = [
    "BACKEND_ENV",
    "BDD",
    "BDDBackend",
    "BDDManager",
    "available_backends",
    "backend_class",
    "create_manager",
    "load_manager",
    "resolve_backend",
    "BoolExpr",
    "Var",
    "TRUE",
    "FALSE",
    "And",
    "Or",
    "Not",
    "Implies",
    "Iff",
    "Xor",
]
