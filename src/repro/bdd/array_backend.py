"""The vectorized BDD backend: packed numpy node arrays behind the manager API.

:class:`ArrayBackend` subclasses the reference
:class:`~repro.bdd.bdd.BDDManager` and keeps its Python node lists and
unique-table dict *authoritative* — every inherited operation stays correct
verbatim.  What changes is the hot paths:

* the node table is mirrored into packed numpy columns (``var``/``lo``/``hi``
  as int32 arrays) synced lazily by a watermark, plus an open-addressed
  unique table over the same columns with vectorized batch probe/insert;
* ``apply`` is hybrid: a budgeted scalar descent (identical to the
  reference, so small operands never pay numpy call overhead) that falls
  back to a level-synchronized breadth-first vectorized expansion with an
  array-backed computed cache when the operand graphs are large;
* ``restrict`` gets the same treatment (unary version of the same
  machinery);
* ``satisfy_matrix`` is a vectorized level-ordered row expansion — the
  compiled reaction sweep's enumeration loop becomes a handful of numpy
  calls per variable instead of a Python generator frame per branch.

Nothing observable changes: assignments and their order, counts, supports
and ``dump`` bytes are identical to the reference backend (the canonical
postorder dump is inherited, and node *indices* — the one thing the
vectorized paths do permute — are never part of any contract).  The
backend-differential suite pins all of this.

The scalar/vector interplay relies on two watermarks:

* ``_unique_synced_to`` — the dict unique table is complete for node
  indices below it; vectorized interning appends nodes without touching
  the dict, and the next scalar ``_make_node`` resyncs the tail in one
  pass before relying on it;
* ``_msize`` — the numpy mirrors (and the open-addressed table) are
  complete below it; vectorized entry points resync the tail first.

Structural rebuilds (``collect_garbage``, ``reorder``, ``load``) reset the
mirrors and caches outright — the base class rebuilds lists and dict, and
the arrays are rebuilt on the next vectorized call.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - numpy is present in CI
    raise ImportError(
        "the 'array' BDD backend requires numpy; use backend='reference' "
        "on interpreters without it"
    ) from exc

from repro.bdd.bdd import BDD, BDDManager


class _BudgetExhausted(Exception):
    """Raised by the budgeted scalar paths to trigger the vectorized fallback."""


#: operation codes for the array-backed computed cache
_OPS = {"and": 0, "or": 1, "xor": 2, "implies": 3, "iff": 4}

_U64 = np.uint64

#: packed-key field widths: ``level << 48 | low << 24 | high``.  24 bits per
#: child index caps the table at ~16.7M nodes and 64K variable levels —
#: orders of magnitude above any workload here, and guarded loudly below.
_NODE_LIMIT = 1 << 24
_LEVEL_LIMIT = 1 << 16


def _mix64(x):
    """Vectorized 64-bit finalizer (splitmix64) over uint64 arrays."""
    x = x.astype(_U64) * _U64(0x9E3779B97F4A7C15)
    x ^= x >> _U64(31)
    x *= _U64(0xD6E8FEB86659FD93)
    x ^= x >> _U64(29)
    return x


class ArrayBackend(BDDManager):
    """Packed-array BDD kernel; same answers as the reference, vectorized."""

    backend_name = "array"

    def __init__(
        self,
        variables: Iterable[str] = (),
        computed_table_limit: int = 1 << 20,
        scalar_budget: int = 1500,
        computed_cache_bits: int = 17,
    ):
        super().__init__(variables, computed_table_limit)
        #: scalar expansions allowed before an apply/restrict goes vectorized
        self.scalar_budget = scalar_budget
        self._budget_left = 0
        self._unique_synced_to = len(self._levels)
        # packed mirrors of the node columns (int32: var/lo/hi), lazily synced
        self._msize = 0
        self._mlv = np.zeros(0, dtype=np.int32)
        self._mlo = np.zeros(0, dtype=np.int32)
        self._mhi = np.zeros(0, dtype=np.int32)
        # open-addressed unique table over the mirrored nodes
        self._ut_init(1 << 16)
        # direct-mapped computed cache keyed (op, left, right)
        self._cc_mask = (1 << computed_cache_bits) - 1
        self._cc_init()
        # instrumentation: how often each path ran
        self.scalar_applies = 0
        self.vector_applies = 0
        self.scalar_restricts = 0
        self.vector_restricts = 0
        self.vector_enumerations = 0

    # -- unique-table dict watermark ------------------------------------------
    def _sync_unique_dict(self) -> None:
        levels, lows, highs = self._levels, self._lows, self._highs
        unique = self._unique
        for index in range(self._unique_synced_to, len(levels)):
            unique[(levels[index], lows[index], highs[index])] = index
        self._unique_synced_to = len(levels)

    def _make_node(self, level: int, low: int, high: int) -> int:
        if self._unique_synced_to < len(self._levels):
            self._sync_unique_dict()
        result = super()._make_node(level, low, high)
        self._unique_synced_to = len(self._levels)
        return result

    # -- numpy mirrors ---------------------------------------------------------
    def _mirror_reserve(self, needed: int) -> None:
        capacity = len(self._mlv)
        if needed <= capacity:
            return
        new_capacity = max(needed, capacity * 2, 1024)
        for name in ("_mlv", "_mlo", "_mhi"):
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=np.int32)
            grown[: self._msize] = old[: self._msize]
            setattr(self, name, grown)

    def _sync_mirrors(self) -> None:
        total = len(self._levels)
        synced = self._msize
        if synced == total:
            return
        self._mirror_reserve(total)
        self._mlv[synced:total] = self._levels[synced:total]
        self._mlo[synced:total] = self._lows[synced:total]
        self._mhi[synced:total] = self._highs[synced:total]
        self._msize = total
        start = max(synced, 2)
        if total > start:
            if total >= _NODE_LIMIT or len(self._names) >= _LEVEL_LIMIT:
                raise OverflowError(
                    "array backend supports up to 2^24 nodes and 2^16 levels"
                )
            keys = (
                (self._mlv[start:total].astype(_U64) << _U64(48))
                | (self._mlo[start:total].astype(_U64) << _U64(24))
                | self._mhi[start:total].astype(_U64)
            )
            self._ut_insert_packed(keys, np.arange(start, total, dtype=np.int64))

    def _reset_derived(self) -> None:
        """After a structural rebuild: mirrors, hash table and cache restart."""
        self._unique_synced_to = len(self._levels)
        self._msize = 0
        self._ut_init(max(1 << 16, 1 << (2 * len(self._levels)).bit_length()))
        self._cc_init()

    # -- open-addressed unique table -------------------------------------------
    # Keys are exact packed triples (``level << 48 | low << 24 | high``), one
    # uint64 gather + compare per probe round instead of three.  The packing
    # is lossless within the guarded limits, so this is a plain hash table,
    # not a lossy fingerprint.
    def _ut_init(self, size: int) -> None:
        self._ut_mask = size - 1
        self._ut_used = 0
        self._ut_key = np.zeros(size, dtype=np.uint64)
        self._ut_val = np.full(size, -1, dtype=np.int64)

    @staticmethod
    def _pack_triples(level: int, los, his):
        if len(los) and (los.max() >= _NODE_LIMIT or his.max() >= _NODE_LIMIT):
            raise OverflowError(
                "array backend unique table supports up to 2^24 nodes"
            )
        return (
            (_U64(level) << _U64(48))
            | (los.astype(_U64) << _U64(24))
            | his.astype(_U64)
        )

    def _ut_grow(self, needed: int) -> None:
        size = (self._ut_mask + 1) * 2
        while (self._ut_used + needed) * 3 > size * 2:
            size *= 2
        old_key, old_val = self._ut_key, self._ut_val
        self._ut_init(size)
        live = old_val != -1
        if live.any():
            self._ut_insert_packed(old_key[live], old_val[live])

    def _ut_insert_packed(self, keys, ids) -> None:
        """Batch insert; keys must be mutually distinct and absent."""
        count = len(ids)
        if (self._ut_used + count) * 3 > (self._ut_mask + 1) * 2:
            self._ut_grow(count)
        mask = self._ut_mask
        slots = (_mix64(keys) & _U64(mask)).astype(np.int64)
        pending = np.arange(count)
        while pending.size:
            probe = slots[pending]
            occupied = self._ut_val[probe] != -1
            free = ~occupied
            advance = pending[occupied]
            if free.any():
                candidates = pending[free]
                candidate_slots = probe[free]
                # winner-per-slot: last scatter wins, gather-back identifies it
                self._ut_val[candidate_slots] = ids[candidates]
                won = self._ut_val[candidate_slots] == ids[candidates]
                winners = candidates[won]
                self._ut_key[candidate_slots[won]] = keys[winners]
                self._ut_used += len(winners)
                advance = np.concatenate([advance, candidates[~won]])
            slots[advance] = (slots[advance] + 1) & mask
            pending = advance

    def _ut_find_packed(self, keys):
        """Batch probe; -1 where the triple is not interned."""
        count = len(keys)
        out = np.full(count, -1, dtype=np.int64)
        if count == 0 or self._ut_used == 0:
            return out
        mask = self._ut_mask
        slots = (_mix64(keys) & _U64(mask)).astype(np.int64)
        pending = np.arange(count)
        while pending.size:
            probe = slots[pending]
            values = self._ut_val[probe]
            empty = values == -1
            match = ~empty & (self._ut_key[probe] == keys[pending])
            if match.any():
                out[pending[match]] = values[match]
            keep = ~(empty | match)
            pending = pending[keep]
            slots[pending] = (slots[pending] + 1) & mask
        return out

    # -- vectorized node interning ----------------------------------------------
    def _make_nodes_batch(self, level: int, lows, highs):
        """Vectorized ``_make_node`` for one level: returns result indices."""
        result = np.empty(len(lows), dtype=np.int64)
        equal = lows == highs
        result[equal] = lows[equal]
        distinct = ~equal
        if not distinct.any():
            return result
        lo = lows[distinct]
        hi = highs[distinct]
        keys = self._pack_triples(level, lo, hi)
        found = self._ut_find_packed(keys)
        missing = found == -1
        if missing.any():
            uniq_keys, first, inverse = np.unique(
                keys[missing], return_index=True, return_inverse=True
            )
            miss_lo = lo[missing]
            miss_hi = hi[missing]
            uniq_lo = miss_lo[first]
            uniq_hi = miss_hi[first]
            base = len(self._levels)
            fresh = len(uniq_keys)
            ids = np.arange(base, base + fresh, dtype=np.int64)
            # authoritative Python lists first (the dict stays stale by
            # watermark; scalar paths resync before trusting it) ...
            self._levels.extend([level] * fresh)
            self._lows.extend(uniq_lo.tolist())
            self._highs.extend(uniq_hi.tolist())
            # ... then the mirrors and the hash table, kept exactly in step
            self._mirror_reserve(base + fresh)
            self._mlv[base : base + fresh] = level
            self._mlo[base : base + fresh] = uniq_lo
            self._mhi[base : base + fresh] = uniq_hi
            self._msize = base + fresh
            self._ut_insert_packed(uniq_keys, ids)
            found[np.nonzero(missing)[0]] = ids[inverse]
        result[distinct] = found
        return result

    # -- array-backed computed cache ---------------------------------------------
    # Direct-mapped and lossy (a colliding insert overwrites), keyed by the
    # exact packed request ``op << 58 | left << 29 | right`` — a miss only
    # costs recomputation, but a false hit would be wrong, hence the exact
    # key compare.  Key 0 is never a real request (left would be the FALSE
    # terminal, which the shortcut layer already resolved), so zeroed slots
    # read as empty.
    def _cc_init(self) -> None:
        size = self._cc_mask + 1
        self._cc_key = np.zeros(size, dtype=np.uint64)
        self._cc_res = np.zeros(size, dtype=np.int64)

    @staticmethod
    def _cc_pack(opcode: int, left, right):
        return (
            (_U64(opcode + 1) << _U64(58))
            | (left.astype(_U64) << _U64(29))
            | right.astype(_U64)
        )

    def _cc_probe(self, opcode: int, left, right):
        keys = self._cc_pack(opcode, left, right)
        idx = (_mix64(keys) & _U64(self._cc_mask)).astype(np.int64)
        hit = self._cc_key[idx] == keys
        return self._cc_res[idx], hit

    def _cc_insert(self, opcode: int, left, right, result) -> None:
        keys = self._cc_pack(opcode, left, right)
        idx = (_mix64(keys) & _U64(self._cc_mask)).astype(np.int64)
        self._cc_key[idx] = keys
        self._cc_res[idx] = result

    # -- vectorized terminal/identity rules ---------------------------------------
    @staticmethod
    def _shortcut_batch(opcode: int, left, right):
        """The reference fast paths, vectorized; -1 where unresolved."""
        result = np.full(left.shape, -1, dtype=np.int64)
        if opcode == 0:  # and
            result[(left == 0) | (right == 0)] = 0
            mask = (result == -1) & (left == 1)
            result[mask] = right[mask]
            mask = (result == -1) & (right == 1)
            result[mask] = left[mask]
            mask = (result == -1) & (left == right)
            result[mask] = left[mask]
        elif opcode == 1:  # or
            result[(left == 1) | (right == 1)] = 1
            mask = (result == -1) & (left == 0)
            result[mask] = right[mask]
            mask = (result == -1) & (right == 0)
            result[mask] = left[mask]
            mask = (result == -1) & (left == right)
            result[mask] = left[mask]
        elif opcode == 2:  # xor
            mask = left == 0
            result[mask] = right[mask]
            mask = (result == -1) & (right == 0)
            result[mask] = left[mask]
            result[(result == -1) & (left == right)] = 0
        elif opcode == 3:  # implies
            result[(left == 0) | (right == 1)] = 1
            mask = (result == -1) & (left == 1)
            result[mask] = right[mask]
            result[(result == -1) & (left == right)] = 1
        else:  # iff
            mask = left == 1
            result[mask] = right[mask]
            mask = (result == -1) & (right == 1)
            result[mask] = left[mask]
            result[(result == -1) & (left == right)] = 1
        return result

    # -- the hybrid apply ----------------------------------------------------------
    def _apply(self, operation: str, left: int, right: int) -> int:
        self._budget_left = self.scalar_budget
        try:
            result = self._apply_scalar(operation, left, right)
            self.scalar_applies += 1
            return result
        except _BudgetExhausted:
            self.vector_applies += 1
            return self._apply_vectorized(operation, left, right)

    def _apply_scalar(self, operation: str, left: int, right: int) -> int:
        """The reference ``_apply`` with an expansion budget (see ``_apply``)."""
        if left == right:
            if operation in ("and", "or"):
                return left
            if operation == "xor":
                return self.FALSE_INDEX
            if operation in ("iff", "implies"):
                return self.TRUE_INDEX
        if operation == "and":
            if left == self.TRUE_INDEX:
                return right
            if right == self.TRUE_INDEX:
                return left
        elif operation == "or":
            if left == self.FALSE_INDEX:
                return right
            if right == self.FALSE_INDEX:
                return left
        elif operation == "xor":
            if left == self.FALSE_INDEX:
                return right
            if right == self.FALSE_INDEX:
                return left
        elif operation == "implies" and left == self.TRUE_INDEX:
            return right
        elif operation == "iff":
            if left == self.TRUE_INDEX:
                return right
            if right == self.TRUE_INDEX:
                return left
        terminal = self._terminal_op(
            operation, self._as_terminal(left), self._as_terminal(right)
        )
        if terminal is not None:
            return self.TRUE_INDEX if terminal else self.FALSE_INDEX
        if operation in ("and", "or", "xor", "iff") and left > right:
            left, right = right, left
        key = (operation, left, right)
        self.apply_cache_lookups += 1
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.apply_cache_hits += 1
            return cached
        self._budget_left -= 1
        if self._budget_left < 0:
            raise _BudgetExhausted()
        left_level = self._levels[left]
        right_level = self._levels[right]
        level = min(left_level, right_level)
        left_low, left_high = (
            (self._lows[left], self._highs[left]) if left_level == level else (left, left)
        )
        right_low, right_high = (
            (self._lows[right], self._highs[right]) if right_level == level else (right, right)
        )
        low = self._apply_scalar(operation, left_low, right_low)
        high = self._apply_scalar(operation, left_high, right_high)
        result = self._make_node(level, low, high)
        if len(self._apply_cache) >= self.computed_table_limit:
            self._apply_cache.clear()
            self.cache_evictions += 1
        self._apply_cache[key] = result
        return result

    def _screen_and_bucket(
        self, opcode, commutative, child_l, child_r, buckets_l, buckets_r, sizes
    ):
        """Resolve child requests via shortcut/cache; bucket the remainder.

        Returns ``(value, level, position)`` arrays aligned with the input:
        resolved requests carry their result in ``value``; unresolved ones
        carry ``-1`` there and the bucket coordinates of where their result
        will appear after that level is reduced.
        """
        value = self._shortcut_batch(opcode, child_l, child_r)
        level = np.full(len(child_l), -1, dtype=np.int32)
        position = np.full(len(child_l), -1, dtype=np.int64)
        open_idx = np.nonzero(value == -1)[0]
        if open_idx.size:
            pair_l = child_l[open_idx]
            pair_r = child_r[open_idx]
            if commutative:
                swap = pair_l > pair_r
                pair_l, pair_r = (
                    np.where(swap, pair_r, pair_l),
                    np.where(swap, pair_l, pair_r),
                )
            cached, hit = self._cc_probe(opcode, pair_l, pair_r)
            # batch probes count element-wise so the hit ratio is comparable
            # across the scalar and vectorized paths
            self.apply_cache_lookups += int(len(pair_l))
            self.apply_cache_hits += int(hit.sum())
            if hit.any():
                value[open_idx[hit]] = cached[hit]
            miss = ~hit
            open_idx = open_idx[miss]
            pair_l = pair_l[miss]
            pair_r = pair_r[miss]
            if open_idx.size:
                request_level = np.minimum(self._mlv[pair_l], self._mlv[pair_r])
                for lvl in np.unique(request_level):
                    lvl = int(lvl)
                    members = request_level == lvl
                    count = int(members.sum())
                    buckets_l[lvl].append(pair_l[members])
                    buckets_r[lvl].append(pair_r[members])
                    level[open_idx[members]] = lvl
                    position[open_idx[members]] = sizes[lvl] + np.arange(count)
                    sizes[lvl] += count
        return value, level, position

    @staticmethod
    def _resolve_children(value, level, position, results):
        resolved = value.copy()
        open_mask = level >= 0
        if open_mask.any():
            for lvl in np.unique(level[open_mask]):
                members = level == lvl
                resolved[members] = results[int(lvl)][position[members]]
        return resolved

    def _apply_vectorized(self, operation: str, left: int, right: int) -> int:
        """Level-synchronized BFS apply over the packed arrays."""
        self._sync_mirrors()
        opcode = _OPS[operation]
        commutative = opcode != 3
        variable_count = len(self._names)
        buckets_l = [[] for _ in range(variable_count)]
        buckets_r = [[] for _ in range(variable_count)]
        sizes = [0] * variable_count
        root_value, root_level, root_position = self._screen_and_bucket(
            opcode,
            commutative,
            np.array([left], dtype=np.int64),
            np.array([right], dtype=np.int64),
            buckets_l,
            buckets_r,
            sizes,
        )
        if root_value[0] != -1:
            return int(root_value[0])
        records = {}
        for lvl in range(variable_count):
            if not buckets_l[lvl]:
                continue
            raw_l = np.concatenate(buckets_l[lvl])
            raw_r = np.concatenate(buckets_r[lvl])
            packed = (raw_l.astype(np.int64) << np.int64(32)) | raw_r
            _uniq, first, inverse = np.unique(
                packed, return_index=True, return_inverse=True
            )
            uniq_l = raw_l[first]
            uniq_r = raw_r[first]
            at_l = self._mlv[uniq_l] == lvl
            at_r = self._mlv[uniq_r] == lvl
            low_l = np.where(at_l, self._mlo[uniq_l], uniq_l)
            high_l = np.where(at_l, self._mhi[uniq_l], uniq_l)
            low_r = np.where(at_r, self._mlo[uniq_r], uniq_r)
            high_r = np.where(at_r, self._mhi[uniq_r], uniq_r)
            low = self._screen_and_bucket(
                opcode, commutative, low_l, low_r, buckets_l, buckets_r, sizes
            )
            high = self._screen_and_bucket(
                opcode, commutative, high_l, high_r, buckets_l, buckets_r, sizes
            )
            records[lvl] = (inverse, uniq_l, uniq_r, low, high)
        results = {}
        for lvl in sorted(records, reverse=True):
            inverse, uniq_l, uniq_r, low, high = records[lvl]
            low_result = self._resolve_children(*low, results)
            high_result = self._resolve_children(*high, results)
            uniq_result = self._make_nodes_batch(lvl, low_result, high_result)
            self._cc_insert(opcode, uniq_l, uniq_r, uniq_result)
            results[lvl] = uniq_result[inverse]
        return int(results[int(root_level[0])][int(root_position[0])])

    # -- the hybrid restrict --------------------------------------------------------
    def restrict(self, node: BDD, assignment: Mapping[str, bool]) -> BDD:
        by_level = {
            self._levels_by_name[name]: value
            for name, value in assignment.items()
            if name in self._levels_by_name
        }
        index = node.index
        if not by_level or index in (self.TRUE_INDEX, self.FALSE_INDEX):
            return BDD(self, index)
        self._budget_left = self.scalar_budget
        try:
            result = self._restrict_scalar(index, by_level, {})
            self.scalar_restricts += 1
        except _BudgetExhausted:
            self.vector_restricts += 1
            result = self._restrict_vectorized(index, by_level)
        return BDD(self, result)

    def _restrict_scalar(
        self, index: int, by_level: Dict[int, bool], cache: Dict[int, int]
    ) -> int:
        if index in (self.TRUE_INDEX, self.FALSE_INDEX):
            return index
        cached = cache.get(index)
        if cached is not None:
            return cached
        self._budget_left -= 1
        if self._budget_left < 0:
            raise _BudgetExhausted()
        level = self._levels[index]
        if level in by_level:
            result = self._restrict_scalar(
                self._highs[index] if by_level[level] else self._lows[index],
                by_level,
                cache,
            )
        else:
            result = self._make_node(
                level,
                self._restrict_scalar(self._lows[index], by_level, cache),
                self._restrict_scalar(self._highs[index], by_level, cache),
            )
        cache[index] = result
        return result

    def _bucket_nodes(self, children, buckets, sizes):
        """Terminal children resolve to themselves; the rest are bucketed."""
        value = np.where(children <= 1, children, np.int64(-1))
        level = np.full(len(children), -1, dtype=np.int32)
        position = np.full(len(children), -1, dtype=np.int64)
        open_idx = np.nonzero(children > 1)[0]
        if open_idx.size:
            nodes = children[open_idx]
            node_levels = self._mlv[nodes]
            for lvl in np.unique(node_levels):
                lvl = int(lvl)
                members = node_levels == lvl
                count = int(members.sum())
                buckets[lvl].append(nodes[members])
                level[open_idx[members]] = lvl
                position[open_idx[members]] = sizes[lvl] + np.arange(count)
                sizes[lvl] += count
        return value, level, position

    def _restrict_vectorized(self, root: int, by_level: Dict[int, bool]) -> int:
        self._sync_mirrors()
        variable_count = len(self._names)
        buckets = [[] for _ in range(variable_count)]
        sizes = [0] * variable_count
        root_level = self._levels[root]
        buckets[root_level].append(np.array([root], dtype=np.int64))
        sizes[root_level] = 1
        records = {}
        for lvl in range(variable_count):
            if not buckets[lvl]:
                continue
            raw = np.concatenate(buckets[lvl])
            uniq, inverse = np.unique(raw, return_inverse=True)
            if lvl in by_level:
                chosen = self._mhi[uniq] if by_level[lvl] else self._mlo[uniq]
                child = self._bucket_nodes(chosen.astype(np.int64), buckets, sizes)
                records[lvl] = (inverse, child, None)
            else:
                low = self._bucket_nodes(
                    self._mlo[uniq].astype(np.int64), buckets, sizes
                )
                high = self._bucket_nodes(
                    self._mhi[uniq].astype(np.int64), buckets, sizes
                )
                records[lvl] = (inverse, low, high)
        results = {}
        for lvl in sorted(records, reverse=True):
            inverse, low, high = records[lvl]
            if high is None:
                uniq_result = self._resolve_children(*low, results)
            else:
                low_result = self._resolve_children(*low, results)
                high_result = self._resolve_children(*high, results)
                uniq_result = self._make_nodes_batch(lvl, low_result, high_result)
            results[lvl] = uniq_result[inverse]
        return int(results[root_level][0])

    # -- vectorized enumeration -------------------------------------------------------
    def satisfy_matrix(self, node: BDD, variables: Sequence[str]) -> List[List[bool]]:
        """Vectorized level-ordered row expansion; reference order, array speed.

        Rows double at don't-care positions and ``FALSE`` branches are
        pruned each step, so — like the reference walk — the cost is
        proportional to rows emitted times variables, just with numpy
        constant factors.  The interleave (low child at even rows, high at
        odd) reproduces the reference depth-first order exactly.
        """
        names = tuple(variables)
        missing = self.support(node) - set(names)
        if missing:
            raise ValueError(
                f"satisfy_all variables must cover the support; missing {sorted(missing)}"
            )
        if node.index == self.FALSE_INDEX:
            return []
        self._sync_mirrors()
        self.vector_enumerations += 1
        ordered = sorted(
            names, key=lambda name: self._levels_by_name.get(name, self.TERMINAL_LEVEL)
        )
        width = len(ordered)
        frontier = np.array([node.index], dtype=np.int64)
        bits = np.zeros((1, width), dtype=np.bool_)
        for column, name in enumerate(ordered):
            level = self._levels_by_name.get(name, self.TERMINAL_LEVEL)
            at_level = self._mlv[frontier] == level
            low = np.where(at_level, self._mlo[frontier], frontier)
            high = np.where(at_level, self._mhi[frontier], frontier)
            doubled = np.empty(2 * len(frontier), dtype=np.int64)
            doubled[0::2] = low
            doubled[1::2] = high
            bits = np.repeat(bits, 2, axis=0)
            bits[1::2, column] = True
            alive = doubled != self.FALSE_INDEX
            frontier = doubled[alive]
            bits = bits[alive]
            if frontier.size == 0:
                return []
        column_of = {name: column for column, name in enumerate(ordered)}
        permutation = [column_of[name] for name in names]
        return bits[:, permutation].tolist()

    # -- maintenance overrides -----------------------------------------------------
    def clear_caches(self) -> None:
        super().clear_caches()
        self._cc_init()

    def collect_garbage(self, keep: Sequence[BDD]) -> List[BDD]:
        result = super().collect_garbage(keep)
        self._reset_derived()
        return result

    def reorder(self, order: Sequence[str], keep: Sequence[BDD]) -> List[BDD]:
        # the base rebuild goes through scalar var/ite, which needs the dict
        # complete before the storage reset repoints everything
        self._sync_unique_dict()
        return super().reorder(order, keep)

    @classmethod
    def load(cls, payload: Mapping[str, object]):
        manager, roots = super().load(payload)
        manager._unique_synced_to = len(manager._levels)
        return manager, roots

    def stats(self) -> Dict[str, int]:
        table = super().stats()
        table.update(
            scalar_applies=self.scalar_applies,
            vector_applies=self.vector_applies,
            scalar_restricts=self.scalar_restricts,
            vector_restricts=self.vector_restricts,
            vector_enumerations=self.vector_enumerations,
            mirrored_nodes=self._msize,
            unique_table_slots=self._ut_mask + 1,
        )
        return table
