"""The pluggable BDD-kernel protocol and backend registry.

Every engine in the repo — the compiled step relation
(:mod:`repro.mc.compiled`), the symbolic checkers (:mod:`repro.mc.symbolic`)
and the clock algebra (:mod:`repro.clocks.algebra`) — manipulates BDDs only
through manager methods, never through node internals.  That surface is the
:class:`BDDBackend` protocol; anything implementing it can sit under every
engine unchanged.

Two backends are registered:

``"reference"``
    :class:`~repro.bdd.bdd.BDDManager` — the pure-Python hash-consed
    manager.  It is the semantic ground truth: readable, dependency-free,
    and the oracle the differential suite compares everything against.

``"array"``
    :class:`~repro.bdd.array_backend.ArrayBackend` — packed numpy node
    arrays with an open-addressed unique table, a level-synchronized
    vectorized ``apply``/``restrict`` and a vectorized
    ``satisfy_matrix``.  Same answers, same enumeration order, same
    ``dump`` bytes; only the constant factor changes.  Requires numpy
    (the import is deferred until the backend is actually selected, so
    the reference backend keeps working on a numpy-less interpreter).

Selection precedence, resolved once per owning object (an
:class:`~repro.api.session.AnalysisContext`, a compiled abstraction, a
clock algebra): an explicit ``backend=`` argument wins, then the
``REPRO_BDD_BACKEND`` environment variable, then ``"reference"``.  The
environment hook is what lets CI rerun the whole differential matrix under
the array kernel without touching a single call site.
"""

from __future__ import annotations

import os
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

try:  # pragma: no cover - typing_extensions not required at runtime
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - Python < 3.8 is unsupported anyway
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls


from repro.bdd.bdd import BDD, BDDManager

#: name of the environment variable consulted when no backend is passed
BACKEND_ENV = "REPRO_BDD_BACKEND"

#: the default backend when neither argument nor environment says otherwise
DEFAULT_BACKEND = "reference"


@runtime_checkable
class BDDBackend(Protocol):
    """What a BDD kernel must provide to sit under the verification engines.

    The protocol is the *manager* surface: node construction
    (``var``/``ite``/``apply``), cofactors and quantification, the
    enumeration family (``satisfy_one``/``satisfy_all``/``satisfy_matrix``/
    ``count``), serialization (``dump``/``load``) and the maintenance hooks
    (``collect_garbage``/``reorder``/``sift``).  Handles stay the shared
    :class:`~repro.bdd.bdd.BDD` value type, which delegates every operation
    back to its manager — so a backend only ever implements manager
    methods, and engines never branch on the backend in use.

    Beyond the signatures, implementations owe three behavioural
    guarantees (enforced by ``tests/test_backend_differential.py``):

    * **semantics** — identical truth tables, counts and supports;
    * **enumeration order** — ``satisfy_all`` / ``satisfy_matrix`` yield
      assignments in the reference order (manager level order, ``False``
      branch before ``True``);
    * **canonical serialization** — ``dump`` emits the canonical
      depth-first postorder, so equal functions produce byte-identical
      payloads (and therefore equal artifact digests) on every backend.
    """

    backend_name: str

    # -- variables -----------------------------------------------------------
    def declare(self, name: str) -> int: ...

    def variables(self) -> Tuple[str, ...]: ...

    def level_name(self, level: int) -> str: ...

    def has_variable(self, name: str) -> bool: ...

    # -- node construction ---------------------------------------------------
    @property
    def true(self) -> BDD: ...

    @property
    def false(self) -> BDD: ...

    def var(self, name: str) -> BDD: ...

    def nvar(self, name: str) -> BDD: ...

    def constant(self, value: bool) -> BDD: ...

    def apply(self, operation: str, left: BDD, right: BDD) -> BDD: ...

    def negate(self, node: BDD) -> BDD: ...

    def ite(self, condition: BDD, then_branch: BDD, else_branch: BDD) -> BDD: ...

    # -- cofactors, quantification, substitution -----------------------------
    def restrict(self, node: BDD, assignment: Mapping[str, bool]) -> BDD: ...

    def exists(self, node: BDD, variables: Iterable[str]) -> BDD: ...

    def forall(self, node: BDD, variables: Iterable[str]) -> BDD: ...

    def compose(self, node: BDD, substitution: Mapping[str, BDD]) -> BDD: ...

    def rename(self, node: BDD, renaming: Mapping[str, str]) -> BDD: ...

    # -- queries -------------------------------------------------------------
    def support(self, node: BDD) -> FrozenSet[str]: ...

    def node_count(self, node: BDD) -> int: ...

    def satisfy_one(self, node: BDD) -> Optional[Dict[str, bool]]: ...

    def satisfy_all(
        self, node: BDD, variables: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, bool]]: ...

    def satisfy_matrix(self, node: BDD, variables: Sequence[str]) -> List[List[bool]]: ...

    def count(self, node: BDD, variables: Optional[Sequence[str]] = None) -> int: ...

    def evaluate(self, node: BDD, assignment: Mapping[str, bool]) -> bool: ...

    # -- serialization -------------------------------------------------------
    def dump(self, roots: Sequence[BDD]) -> Dict[str, object]: ...

    # -- maintenance ---------------------------------------------------------
    def clear_caches(self) -> None: ...

    def stats(self) -> Dict[str, int]: ...

    def collect_garbage(self, keep: Sequence[BDD]) -> List[BDD]: ...

    def reorder(self, order: Sequence[str], keep: Sequence[BDD]) -> List[BDD]: ...

    def sift(self, keep: Sequence[BDD], max_variables: Optional[int] = None) -> List[BDD]: ...


def _array_backend_class() -> Type[BDDManager]:
    from repro.bdd.array_backend import ArrayBackend

    return ArrayBackend


#: registry name -> lazy class loader (lazy so selecting "reference" never
#: pays the numpy import, and a numpy-less interpreter fails only on use)
_LOADERS = {
    "reference": lambda: BDDManager,
    "array": _array_backend_class,
}


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, default first."""
    return tuple(_LOADERS)


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend name: explicit argument > environment > default.

    Raises ``ValueError`` on an unknown name — a typo in
    ``REPRO_BDD_BACKEND`` must fail loudly, not silently fall back to the
    slow reference kernel.
    """
    name = backend or os.environ.get(BACKEND_ENV) or DEFAULT_BACKEND
    if name not in _LOADERS:
        raise ValueError(
            f"unknown BDD backend {name!r}; available: {', '.join(_LOADERS)}"
        )
    return name


def backend_class(backend: Optional[str] = None) -> Type[BDDManager]:
    """The manager class implementing the resolved backend."""
    return _LOADERS[resolve_backend(backend)]()


def create_manager(
    variables: Iterable[str] = (),
    backend: Optional[str] = None,
    **options,
) -> BDDManager:
    """A fresh manager of the resolved backend (the one constructor to use)."""
    return backend_class(backend)(variables, **options)


def load_manager(
    payload: Mapping[str, object], backend: Optional[str] = None
) -> Tuple[BDDManager, List[BDD]]:
    """Rebuild a dumped manager under the resolved backend.

    Payloads are backend-neutral (canonical node triples), so a relation
    dumped by the reference kernel loads straight into the array kernel and
    vice versa — warm :class:`~repro.service.store.ArtifactStore` relations
    stay valid when a deployment flips backends.
    """
    return backend_class(backend).load(payload)
