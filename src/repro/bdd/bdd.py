"""A hash-consed Reduced Ordered BDD manager.

The implementation follows the classical Bryant construction:

* nodes are triples ``(level, low, high)`` interned in a unique table, so
  structural equality is pointer equality;
* boolean operations go through a memoized Shannon expansion (``apply``);
* quantification, restriction (cofactors), substitution of variables by
  functions (``compose``) and satisfying-assignment enumeration are provided,
  which is all the clock calculus and the symbolic model checker need.

Variables are referred to by name; their order is the order of registration
with :meth:`BDDManager.declare` (callers that care about ordering declare
variables explicitly up front).  The order can be revised after the fact
with :meth:`BDDManager.reorder` (an explicit permutation) or
:meth:`BDDManager.sift` (Rudell's sifting heuristic); both rebuild the
graphs of the roots they are given and invalidate every other handle, so
they are meant for managers with a single owner — the compiled reaction
engine of :mod:`repro.mc.compiled` runs them right after compilation.

Three performance features keep long-lived managers healthy:

* the computed tables (``apply`` / ``ite``) are *bounded*: past
  ``computed_table_limit`` entries they are cleared rather than growing
  without bound (the classical cache-flush eviction policy);
* :meth:`BDDManager.collect_garbage` drops every node not reachable from a
  given set of roots and compacts the unique table;
* :meth:`BDDManager.satisfy_all` enumerates satisfying assignments by
  walking the DAG — its cost is proportional to the number of solutions
  (output-sensitive), not to ``2^n`` over the variables.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple


class BDD:
    """A node of a reduced ordered BDD (or one of the two terminals)."""

    __slots__ = ("manager", "index")

    def __init__(self, manager: "BDDManager", index: int):
        self.manager = manager
        self.index = index

    # -- structural queries -----------------------------------------------
    def is_true(self) -> bool:
        return self.index == BDDManager.TRUE_INDEX

    def is_false(self) -> bool:
        return self.index == BDDManager.FALSE_INDEX

    def is_terminal(self) -> bool:
        return self.index in (BDDManager.TRUE_INDEX, BDDManager.FALSE_INDEX)

    @property
    def level(self) -> int:
        return self.manager.node_level(self.index)

    @property
    def variable(self) -> str:
        return self.manager.level_name(self.level)

    @property
    def low(self) -> "BDD":
        return BDD(self.manager, self.manager.node_low(self.index))

    @property
    def high(self) -> "BDD":
        return BDD(self.manager, self.manager.node_high(self.index))

    # -- boolean operations -------------------------------------------------
    def __invert__(self) -> "BDD":
        return self.manager.negate(self)

    def __and__(self, other: "BDD") -> "BDD":
        return self.manager.apply("and", self, other)

    def __or__(self, other: "BDD") -> "BDD":
        return self.manager.apply("or", self, other)

    def __xor__(self, other: "BDD") -> "BDD":
        return self.manager.apply("xor", self, other)

    def implies(self, other: "BDD") -> "BDD":
        return self.manager.apply("implies", self, other)

    def iff(self, other: "BDD") -> "BDD":
        return self.manager.apply("iff", self, other)

    def diff(self, other: "BDD") -> "BDD":
        """Set difference: ``self & ~other``."""
        return self & ~other

    def ite(self, then_branch: "BDD", else_branch: "BDD") -> "BDD":
        return self.manager.ite(self, then_branch, else_branch)

    # -- quantification and substitution -------------------------------------
    def restrict(self, assignment: Mapping[str, bool]) -> "BDD":
        return self.manager.restrict(self, assignment)

    def exists(self, variables: Iterable[str]) -> "BDD":
        return self.manager.exists(self, variables)

    def forall(self, variables: Iterable[str]) -> "BDD":
        return self.manager.forall(self, variables)

    def compose(self, substitution: Mapping[str, "BDD"]) -> "BDD":
        return self.manager.compose(self, substitution)

    def rename(self, renaming: Mapping[str, str]) -> "BDD":
        return self.manager.rename(self, renaming)

    # -- queries --------------------------------------------------------------
    def support(self) -> FrozenSet[str]:
        return self.manager.support(self)

    def is_satisfiable(self) -> bool:
        return not self.is_false()

    def is_tautology(self) -> bool:
        return self.is_true()

    def satisfy_one(self) -> Optional[Dict[str, bool]]:
        return self.manager.satisfy_one(self)

    def satisfy_all(self, variables: Optional[Sequence[str]] = None) -> Iterator[Dict[str, bool]]:
        return self.manager.satisfy_all(self, variables)

    def satisfy_matrix(self, variables: Sequence[str]) -> List[List[bool]]:
        return self.manager.satisfy_matrix(self, variables)

    def count(self, variables: Optional[Sequence[str]] = None) -> int:
        return self.manager.count(self, variables)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.manager.evaluate(self, assignment)

    def node_count(self) -> int:
        return self.manager.node_count(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BDD):
            return NotImplemented
        return self.manager is other.manager and self.index == other.index

    def __hash__(self) -> int:
        return hash((id(self.manager), self.index))

    def __bool__(self) -> bool:
        raise TypeError(
            "BDDs cannot be used as Python booleans; use is_true(), is_false() or is_satisfiable()"
        )

    def __repr__(self) -> str:
        if self.is_true():
            return "BDD(TRUE)"
        if self.is_false():
            return "BDD(FALSE)"
        return f"BDD(var={self.variable!r}, nodes={self.node_count()})"


class BDDManager:
    """Owner of the unique table, the computed-table cache and the variable order.

    This class is also the *reference backend* of the pluggable-kernel
    protocol (see :mod:`repro.bdd.backend`): every public method here is
    part of the :class:`~repro.bdd.backend.BDDBackend` contract, and the
    vectorized :class:`~repro.bdd.array_backend.ArrayBackend` subclasses it,
    overriding only the hot paths.  Anything observable — satisfying
    assignments and their order, :meth:`dump` payload bytes, reordering
    decisions — must stay identical across backends; the
    backend-differential suite (``tests/test_backend_differential.py``)
    enforces that.
    """

    #: registry name of this implementation (subclasses override)
    backend_name = "reference"

    FALSE_INDEX = 0
    TRUE_INDEX = 1

    #: level sentinel used by the two terminal nodes
    TERMINAL_LEVEL = 2**30

    def __init__(self, variables: Iterable[str] = (), computed_table_limit: int = 1 << 20):
        # nodes[i] = (level, low, high); terminals use level = a large sentinel
        self._levels: List[int] = [self.TERMINAL_LEVEL, self.TERMINAL_LEVEL]
        self._lows: List[int] = [0, 1]
        self._highs: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._names: List[str] = []
        self._levels_by_name: Dict[str, int] = {}
        #: past this many computed-table entries the caches are flushed
        self.computed_table_limit = computed_table_limit
        self.cache_evictions = 0
        self.gc_runs = 0
        self.reorder_runs = 0
        # kernel profiling counters (surfaced per-span by repro.obs)
        self.apply_calls = 0
        self.apply_cache_lookups = 0
        self.apply_cache_hits = 0
        self.peak_nodes = 2
        self.sift_seconds = 0.0
        for name in variables:
            self.declare(name)

    # -- variables -----------------------------------------------------------
    def declare(self, name: str) -> int:
        """Register a variable (idempotent) and return its level."""
        if name not in self._levels_by_name:
            self._levels_by_name[name] = len(self._names)
            self._names.append(name)
        return self._levels_by_name[name]

    def variables(self) -> Tuple[str, ...]:
        return tuple(self._names)

    def level_name(self, level: int) -> str:
        return self._names[level]

    def has_variable(self, name: str) -> bool:
        return name in self._levels_by_name

    # -- raw node accessors ------------------------------------------------------
    def node_level(self, index: int) -> int:
        return self._levels[index]

    def node_low(self, index: int) -> int:
        return self._lows[index]

    def node_high(self, index: int) -> int:
        return self._highs[index]

    def size(self) -> int:
        """Total number of interned nodes (including the two terminals)."""
        return len(self._levels)

    # -- terminals and variables --------------------------------------------------
    @property
    def true(self) -> BDD:
        return BDD(self, self.TRUE_INDEX)

    @property
    def false(self) -> BDD:
        return BDD(self, self.FALSE_INDEX)

    def var(self, name: str) -> BDD:
        level = self.declare(name)
        return BDD(self, self._make_node(level, self.FALSE_INDEX, self.TRUE_INDEX))

    def nvar(self, name: str) -> BDD:
        level = self.declare(name)
        return BDD(self, self._make_node(level, self.TRUE_INDEX, self.FALSE_INDEX))

    def constant(self, value: bool) -> BDD:
        return self.true if value else self.false

    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        index = len(self._levels)
        self._levels.append(level)
        self._lows.append(low)
        self._highs.append(high)
        self._unique[key] = index
        return index

    # -- apply ------------------------------------------------------------------
    @staticmethod
    def _terminal_op(operation: str, left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
        """Short-circuit evaluation of ``operation`` on possibly-unknown terminals."""
        if operation == "and":
            if left is False or right is False:
                return False
            if left is True and right is True:
                return True
        elif operation == "or":
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
        elif operation == "xor":
            if left is not None and right is not None:
                return left != right
        elif operation == "implies":
            if left is False or right is True:
                return True
            if left is True and right is False:
                return False
        elif operation == "iff":
            if left is not None and right is not None:
                return left == right
        return None

    def _as_terminal(self, index: int) -> Optional[bool]:
        if index == self.TRUE_INDEX:
            return True
        if index == self.FALSE_INDEX:
            return False
        return None

    def apply(self, operation: str, left: BDD, right: BDD) -> BDD:
        """Binary boolean operation via memoized Shannon expansion."""
        self.apply_calls += 1
        return BDD(self, self._apply(operation, left.index, right.index))

    def _apply(self, operation: str, left: int, right: int) -> int:
        # fast paths: identical operands and one-terminal identities resolve
        # without recursion, cache lookups or node construction
        if left == right:
            if operation in ("and", "or"):
                return left
            if operation == "xor":
                return self.FALSE_INDEX
            if operation in ("iff", "implies"):
                return self.TRUE_INDEX
        if operation == "and":
            if left == self.TRUE_INDEX:
                return right
            if right == self.TRUE_INDEX:
                return left
        elif operation == "or":
            if left == self.FALSE_INDEX:
                return right
            if right == self.FALSE_INDEX:
                return left
        elif operation == "xor":
            if left == self.FALSE_INDEX:
                return right
            if right == self.FALSE_INDEX:
                return left
        elif operation == "implies" and left == self.TRUE_INDEX:
            return right
        elif operation == "iff":
            if left == self.TRUE_INDEX:
                return right
            if right == self.TRUE_INDEX:
                return left
        terminal = self._terminal_op(
            operation, self._as_terminal(left), self._as_terminal(right)
        )
        if terminal is not None:
            return self.TRUE_INDEX if terminal else self.FALSE_INDEX
        if operation in ("and", "or", "xor", "iff") and left > right:
            left, right = right, left  # commutative: canonicalize the cache key
        key = (operation, left, right)
        self.apply_cache_lookups += 1
        cached = self._apply_cache.get(key)
        if cached is not None:
            self.apply_cache_hits += 1
            return cached
        left_level = self._levels[left]
        right_level = self._levels[right]
        level = min(left_level, right_level)
        left_low, left_high = (
            (self._lows[left], self._highs[left]) if left_level == level else (left, left)
        )
        right_low, right_high = (
            (self._lows[right], self._highs[right]) if right_level == level else (right, right)
        )
        low = self._apply(operation, left_low, right_low)
        high = self._apply(operation, left_high, right_high)
        result = self._make_node(level, low, high)
        if len(self._apply_cache) >= self.computed_table_limit:
            self._apply_cache.clear()
            self.cache_evictions += 1
        self._apply_cache[key] = result
        return result

    def negate(self, node: BDD) -> BDD:
        return BDD(self, self._apply("xor", node.index, self.TRUE_INDEX))

    def ite(self, condition: BDD, then_branch: BDD, else_branch: BDD) -> BDD:
        """If-then-else: ``(condition & then) | (~condition & else)``."""
        # terminal fast paths: no cache traffic, no apply recursion
        if condition.index == self.TRUE_INDEX:
            return then_branch
        if condition.index == self.FALSE_INDEX:
            return else_branch
        if then_branch.index == else_branch.index:
            return then_branch
        if then_branch.index == self.TRUE_INDEX and else_branch.index == self.FALSE_INDEX:
            return condition
        if then_branch.index == self.FALSE_INDEX and else_branch.index == self.TRUE_INDEX:
            return ~condition
        key = (condition.index, then_branch.index, else_branch.index)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return BDD(self, cached)
        result = (condition & then_branch) | (~condition & else_branch)
        if len(self._ite_cache) >= self.computed_table_limit:
            self._ite_cache.clear()
            self.cache_evictions += 1
        self._ite_cache[key] = result.index
        return result

    # -- restriction, quantification, substitution ---------------------------------
    def restrict(self, node: BDD, assignment: Mapping[str, bool]) -> BDD:
        """Cofactor: fix the given variables to constants."""
        by_level = {
            self._levels_by_name[name]: value
            for name, value in assignment.items()
            if name in self._levels_by_name
        }
        cache: Dict[int, int] = {}

        def walk(index: int) -> int:
            if index in (self.TRUE_INDEX, self.FALSE_INDEX):
                return index
            if index in cache:
                return cache[index]
            level = self._levels[index]
            if level in by_level:
                result = walk(self._highs[index] if by_level[level] else self._lows[index])
            else:
                result = self._make_node(level, walk(self._lows[index]), walk(self._highs[index]))
            cache[index] = result
            return result

        return BDD(self, walk(node.index))

    def exists(self, node: BDD, variables: Iterable[str]) -> BDD:
        """Existential quantification over the given variables."""
        result = node
        for name in variables:
            if name not in self._levels_by_name:
                continue
            low = self.restrict(result, {name: False})
            high = self.restrict(result, {name: True})
            result = low | high
        return result

    def forall(self, node: BDD, variables: Iterable[str]) -> BDD:
        """Universal quantification over the given variables."""
        result = node
        for name in variables:
            if name not in self._levels_by_name:
                continue
            low = self.restrict(result, {name: False})
            high = self.restrict(result, {name: True})
            result = low & high
        return result

    def compose(self, node: BDD, substitution: Mapping[str, BDD]) -> BDD:
        """Substitute variables by boolean functions."""
        result = node
        for name, function in substitution.items():
            if name not in self._levels_by_name:
                continue
            variable = self.var(name)
            high = self.restrict(result, {name: True})
            low = self.restrict(result, {name: False})
            result = self.ite(function, high, low)
        return result

    def rename(self, node: BDD, renaming: Mapping[str, str]) -> BDD:
        """Rename variables (target variables must not clash with remaining support)."""
        substitution = {source: self.var(target) for source, target in renaming.items()}
        return self.compose(node, substitution)

    # -- queries -----------------------------------------------------------------
    def support(self, node: BDD) -> FrozenSet[str]:
        """The set of variables the function actually depends on."""
        seen: Set[int] = set()
        levels: Set[int] = set()
        stack = [node.index]
        while stack:
            index = stack.pop()
            if index in seen or index in (self.TRUE_INDEX, self.FALSE_INDEX):
                continue
            seen.add(index)
            levels.add(self._levels[index])
            stack.append(self._lows[index])
            stack.append(self._highs[index])
        return frozenset(self._names[level] for level in levels)

    def node_count(self, node: BDD) -> int:
        """Number of distinct internal nodes of the BDD rooted at ``node``."""
        seen: Set[int] = set()
        stack = [node.index]
        while stack:
            index = stack.pop()
            if index in seen or index in (self.TRUE_INDEX, self.FALSE_INDEX):
                continue
            seen.add(index)
            stack.append(self._lows[index])
            stack.append(self._highs[index])
        return len(seen)

    def satisfy_one(self, node: BDD) -> Optional[Dict[str, bool]]:
        """One satisfying assignment over the support, or None if unsatisfiable."""
        if node.is_false():
            return None
        assignment: Dict[str, bool] = {}
        index = node.index
        while index not in (self.TRUE_INDEX, self.FALSE_INDEX):
            level = self._levels[index]
            if self._highs[index] != self.FALSE_INDEX:
                assignment[self._names[level]] = True
                index = self._highs[index]
            else:
                assignment[self._names[level]] = False
                index = self._lows[index]
        return assignment

    def satisfy_all(
        self, node: BDD, variables: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, bool]]:
        """All satisfying assignments, expanded over ``variables`` (default: support).

        The enumeration walks the BDD instead of testing the ``2^n`` cube:
        every path explored ends in at least one solution (in a reduced BDD
        the only unsatisfiable node is the FALSE terminal), so the cost is
        proportional to the number of assignments yielded, times the number
        of variables — output-sensitive, which is what lets the compiled
        reaction engine enumerate exactly the admissible reactions of a
        state.  ``variables`` must cover the support of ``node``.
        """
        names = tuple(variables) if variables is not None else tuple(sorted(self.support(node)))
        missing = self.support(node) - set(names)
        if missing:
            raise ValueError(
                f"satisfy_all variables must cover the support; missing {sorted(missing)}"
            )
        # walk in manager level order; names unknown to the manager expand last
        ordered = sorted(
            names, key=lambda name: self._levels_by_name.get(name, self.TERMINAL_LEVEL)
        )
        assignment: Dict[str, bool] = {}

        def walk(index: int, position: int) -> Iterator[Dict[str, bool]]:
            if index == self.FALSE_INDEX:
                return
            if position == len(ordered):
                yield {name: assignment[name] for name in names}
                return
            name = ordered[position]
            level = self._levels_by_name.get(name, self.TERMINAL_LEVEL)
            if self._levels[index] == level:
                branches = ((False, self._lows[index]), (True, self._highs[index]))
            else:
                branches = ((False, index), (True, index))  # don't care on ``name``
            for value, child in branches:
                assignment[name] = value
                yield from walk(child, position + 1)
            del assignment[name]

        yield from walk(node.index, 0)

    def satisfy_matrix(self, node: BDD, variables: Sequence[str]) -> List[List[bool]]:
        """All satisfying assignments as rows of booleans, columns = ``variables``.

        Row ``i`` is exactly the ``i``-th assignment :meth:`satisfy_all`
        yields (same values, same order — the output-order contract the
        backend-differential suite pins), decoded positionally instead of
        into dicts; bulk consumers like the compiled reaction sweep index
        columns once instead of hashing variable names per solution.  The
        reference implementation *is* the satisfy_all walk; vectorized
        backends override this with a level-synchronized array expansion.
        """
        names = tuple(variables)
        return [
            [assignment[name] for name in names]
            for assignment in self.satisfy_all(node, names)
        ]

    def count(self, node: BDD, variables: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments over ``variables`` (default: support)."""
        names = tuple(variables) if variables is not None else tuple(sorted(self.support(node)))
        missing = self.support(node) - set(names)
        if missing:
            raise ValueError(f"count variables must cover the support; missing {sorted(missing)}")
        cache: Dict[Tuple[int, int], int] = {}
        name_levels = sorted(self._levels_by_name[name] for name in names if name in self._levels_by_name)

        def walk(index: int, position: int) -> int:
            remaining = len(name_levels) - position
            if index == self.TRUE_INDEX:
                return 2**remaining
            if index == self.FALSE_INDEX:
                return 0
            key = (index, position)
            if key in cache:
                return cache[key]
            level = self._levels[index]
            if position < len(name_levels) and name_levels[position] < level:
                result = 2 * walk(index, position + 1)
            else:
                result = walk(self._lows[index], position + 1) + walk(self._highs[index], position + 1)
            cache[key] = result
            return result

        return walk(node.index, 0)

    def evaluate(self, node: BDD, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the function under a (total, over the support) assignment."""
        index = node.index
        while index not in (self.TRUE_INDEX, self.FALSE_INDEX):
            name = self._names[self._levels[index]]
            if name not in assignment:
                raise KeyError(f"assignment is missing variable {name!r}")
            index = self._highs[index] if assignment[name] else self._lows[index]
        return index == self.TRUE_INDEX

    # -- convenience -----------------------------------------------------------
    def conjoin(self, nodes: Iterable[BDD]) -> BDD:
        result = self.true
        for node in nodes:
            result = result & node
        return result

    def disjoin(self, nodes: Iterable[BDD]) -> BDD:
        result = self.false
        for node in nodes:
            result = result | node
        return result

    def implies_check(self, antecedent: BDD, consequent: BDD) -> bool:
        """Decide whether ``antecedent -> consequent`` is a tautology."""
        return antecedent.implies(consequent).is_true()

    # -- serialization -----------------------------------------------------------
    def dump(self, roots: Sequence[BDD]) -> Dict[str, object]:
        """A JSON-safe snapshot of the graphs reachable from ``roots``.

        The payload records the variable order and the reachable nodes as
        ``[level, low, high]`` triples in *canonical* order — a depth-first
        postorder from the roots, low child before high child — plus the
        root indices.  Children always precede their parents (the invariant
        the loader relies on), and the order is a function of the root
        *functions* alone, never of internal node-index assignment: two
        managers denoting the same functions under the same variable order
        produce byte-identical payloads regardless of how their unique
        tables were populated.  That is what keeps artifact digests stable
        across backends (a vectorized kernel interns nodes in a different
        order than the recursive reference).  Unreachable nodes are not
        serialized, so a dump after heavy intermediate computation is as
        small as a dump after :meth:`collect_garbage`.
        """
        remap: Dict[int, int] = {self.FALSE_INDEX: 0, self.TRUE_INDEX: 1}
        scheduled: Set[int] = set()
        nodes: List[List[int]] = []
        stack: List[Tuple[int, bool]] = [(root.index, False) for root in reversed(roots)]
        while stack:
            index, expand = stack.pop()
            if index in remap:
                continue
            if expand:
                remap[index] = len(nodes) + 2
                nodes.append(
                    [self._levels[index], remap[self._lows[index]], remap[self._highs[index]]]
                )
            elif index not in scheduled:
                scheduled.add(index)
                stack.append((index, True))
                stack.append((self._highs[index], False))
                stack.append((self._lows[index], False))
        return {
            "variables": list(self._names),
            "nodes": nodes,
            "roots": [remap[root.index] for root in roots],
        }

    @classmethod
    def load(cls, payload: Mapping[str, object]) -> Tuple["BDDManager", List[BDD]]:
        """Rebuild a manager and root handles from a :meth:`dump` payload.

        Loading appends the recorded triples directly into the node arrays —
        linear in the node count, no ``apply`` recursion, no cache traffic —
        which is what makes a warm artifact-store hit cheap compared to
        recompiling the relation.  The payload is validated structurally
        (child indices must precede their parent, levels must name declared
        variables) so a corrupted artifact fails loudly instead of producing
        a wrong relation.
        """
        manager = cls(payload["variables"])
        variable_count = len(manager._names)
        for position, (level, low, high) in enumerate(payload["nodes"]):
            index = position + 2
            if not (0 <= level < variable_count) or low >= index or high >= index or low == high:
                raise ValueError(f"corrupt BDD payload at node {index}: {(level, low, high)}")
            # ordered-BDD invariant: a node's level strictly precedes its
            # children's (terminals sit at the sentinel level), and each
            # (level, low, high) triple is interned exactly once — without
            # these, restrict/satisfy_all would silently return wrong answers
            if level >= manager._levels[low] or level >= manager._levels[high]:
                raise ValueError(
                    f"corrupt BDD payload at node {index}: level {level} does not "
                    "precede its children"
                )
            if (level, low, high) in manager._unique:
                raise ValueError(
                    f"corrupt BDD payload at node {index}: duplicate triple "
                    f"{(level, low, high)}"
                )
            manager._levels.append(level)
            manager._lows.append(low)
            manager._highs.append(high)
            manager._unique[(level, low, high)] = index
        total = len(manager._levels)
        roots = []
        for index in payload["roots"]:
            if not (0 <= index < total):
                raise ValueError(f"corrupt BDD payload: root {index} out of range")
            roots.append(BDD(manager, index))
        return manager, roots

    def equivalent(self, left: BDD, right: BDD) -> bool:
        return left.index == right.index

    # -- maintenance: GC, reordering, sifting -------------------------------------
    def stats(self) -> Dict[str, int]:
        """Operational counters for benchmarks and health checks."""
        # peak tracking is lazy: updated here rather than on every interning,
        # which keeps _make_node free of bookkeeping on the hot path
        self.peak_nodes = max(self.peak_nodes, len(self._levels))
        return {
            "nodes": len(self._levels),
            "variables": len(self._names),
            "apply_cache": len(self._apply_cache),
            "ite_cache": len(self._ite_cache),
            "cache_evictions": self.cache_evictions,
            "gc_runs": self.gc_runs,
            "reorder_runs": self.reorder_runs,
            "apply_calls": self.apply_calls,
            "apply_cache_lookups": self.apply_cache_lookups,
            "apply_cache_hits": self.apply_cache_hits,
            "peak_nodes": self.peak_nodes,
            "sift_seconds": self.sift_seconds,
        }

    def clear_caches(self) -> None:
        self._apply_cache.clear()
        self._ite_cache.clear()

    def collect_garbage(self, keep: Sequence[BDD]) -> List[BDD]:
        """Drop every node unreachable from ``keep`` and compact the table.

        The handles in ``keep`` are re-pointed in place (their functions are
        unchanged) and returned; **any other outstanding handle of this
        manager becomes stale**.  Use on single-owner managers — the compiled
        reaction engine calls this once after compilation to shed the
        intermediate conjuncts.
        """
        marked: Set[int] = {self.FALSE_INDEX, self.TRUE_INDEX}
        stack = [handle.index for handle in keep]
        while stack:
            index = stack.pop()
            if index in marked:
                continue
            marked.add(index)
            stack.append(self._lows[index])
            stack.append(self._highs[index])
        # children are always interned before their parents, so one ascending
        # pass can rebuild the arrays with every child already remapped
        remap: Dict[int, int] = {self.FALSE_INDEX: 0, self.TRUE_INDEX: 1}
        levels: List[int] = [self.TERMINAL_LEVEL, self.TERMINAL_LEVEL]
        lows: List[int] = [0, 1]
        highs: List[int] = [0, 1]
        unique: Dict[Tuple[int, int, int], int] = {}
        for index in range(2, len(self._levels)):
            if index not in marked:
                continue
            remap[index] = len(levels)
            level = self._levels[index]
            low = remap[self._lows[index]]
            high = remap[self._highs[index]]
            unique[(level, low, high)] = len(levels)
            levels.append(level)
            lows.append(low)
            highs.append(high)
        self._levels, self._lows, self._highs = levels, lows, highs
        self._unique = unique
        self.clear_caches()
        self.gc_runs += 1
        for handle in keep:
            handle.index = remap[handle.index]
        return list(keep)

    def reorder(self, order: Sequence[str], keep: Sequence[BDD]) -> List[BDD]:
        """Rebuild the roots in ``keep`` under a new variable order.

        ``order`` lists variable names first; declared variables it omits
        keep their relative order after the listed ones.  The rebuild is a
        memoized Shannon transfer, so it is correct independently of how the
        order was chosen.  Handles in ``keep`` are re-pointed in place and
        returned; any other handle becomes stale (single-owner managers
        only).  Garbage from the old order is collected before returning.
        """
        listed = [name for name in order if name in self._levels_by_name]
        listed_set = set(listed)
        remaining = [name for name in self._names if name not in listed_set]
        new_names = listed + remaining
        if new_names == self._names:
            return list(keep)
        old_levels, old_lows, old_highs = self._levels, self._lows, self._highs
        old_names = self._names
        self._levels = [self.TERMINAL_LEVEL, self.TERMINAL_LEVEL]
        self._lows = [0, 1]
        self._highs = [0, 1]
        self._unique = {}
        self.clear_caches()
        self._names = list(new_names)
        self._levels_by_name = {name: level for level, name in enumerate(new_names)}
        memo: Dict[int, int] = {self.FALSE_INDEX: 0, self.TRUE_INDEX: 1}

        def transfer(index: int) -> int:
            cached = memo.get(index)
            if cached is not None:
                return cached
            variable = self.var(old_names[old_levels[index]])
            result = self.ite(
                variable,
                BDD(self, transfer(old_highs[index])),
                BDD(self, transfer(old_lows[index])),
            ).index
            memo[index] = result
            return result

        for handle in keep:
            handle.index = transfer(handle.index)
        self.reorder_runs += 1
        self.collect_garbage(keep)
        return list(keep)

    def sift(self, keep: Sequence[BDD], max_variables: Optional[int] = None) -> List[BDD]:
        """Rudell-style sifting: move each variable to its best position.

        The search runs on a private shadow copy of the graphs in ``keep``
        (adjacent-level swaps with reference counts), so it only *chooses*
        an order; the actual reordering is the semantics-preserving rebuild
        of :meth:`reorder`.  Variables are sifted in decreasing order of
        node population; ``max_variables`` bounds how many are sifted (all
        by default).  Handles in ``keep`` are re-pointed in place and
        returned; other handles become stale.
        """
        started = time.perf_counter()
        try:
            support: Set[str] = set()
            for handle in keep:
                support |= self.support(handle)
            if len(support) < 3:
                return list(keep)
            session = _SiftSession(self, keep)
            order = session.run(max_variables)
            return self.reorder(order, keep)
        finally:
            self.sift_seconds += time.perf_counter() - started


class _SiftSession:
    """A private, refcounted shadow of some BDD roots used to *choose* an order.

    Nodes are small lists ``[level, low, high]`` in a per-level unique table;
    adjacent levels are swapped in place with the classical Rudell update, so
    evaluating a candidate position costs only the nodes of the two levels
    involved.  The session never feeds nodes back into the manager: its only
    product is a variable order, consumed by :meth:`BDDManager.reorder`.
    """

    FALSE = 0
    TRUE = 1

    def __init__(self, manager: BDDManager, roots: Sequence[BDD]):
        support: Set[str] = set()
        for root in roots:
            support |= manager.support(root)
        #: position -> variable name, in the manager's current relative order
        self.names: List[str] = [name for name in manager.variables() if name in support]
        position_of = {name: position for position, name in enumerate(self.names)}
        # nodes[id] = [level, low, high]; 0/1 are the terminals
        self.nodes: List[List[int]] = [[len(self.names), 0, 0], [len(self.names), 1, 1]]
        self.refs: List[int] = [1, 1]
        self.tables: List[Dict[Tuple[int, int], int]] = [{} for _ in self.names]
        copied: Dict[int, int] = {
            BDDManager.FALSE_INDEX: self.FALSE,
            BDDManager.TRUE_INDEX: self.TRUE,
        }

        def copy(index: int) -> int:
            cached = copied.get(index)
            if cached is not None:
                return cached
            level = position_of[manager.level_name(manager.node_level(index))]
            low = copy(manager.node_low(index))
            high = copy(manager.node_high(index))
            node = self._lookup(level, low, high)
            copied[index] = node
            return node

        self.root_ids = [copy(root.index) for root in roots]
        for node in self.root_ids:
            self.refs[node] += 1
        # the copy pass left one construction reference per distinct node;
        # shed it so refcounts mean exactly "parents plus roots"
        for node in copied.values():
            if node not in (self.FALSE, self.TRUE):
                self.refs[node] -= 1

    # -- node store --------------------------------------------------------------
    def _lookup(self, level: int, low: int, high: int) -> int:
        if low == high:
            self.refs[low] += 1
            return low
        existing = self.tables[level].get((low, high))
        if existing is not None:
            self.refs[existing] += 1
            return existing
        node = len(self.nodes)
        self.nodes.append([level, low, high])
        self.refs.append(1)
        self.refs[low] += 1
        self.refs[high] += 1
        self.tables[level][(low, high)] = node
        return node

    def _release(self, node: int) -> None:
        if node in (self.FALSE, self.TRUE) or self.refs[node] <= 0:
            return
        self.refs[node] -= 1
        if self.refs[node] == 0:
            level, low, high = self.nodes[node]
            table = self.tables[level]
            if table.get((low, high)) == node:
                del table[(low, high)]
            else:
                table.pop((low, high, node), None)
            self._release(low)
            self._release(high)

    def size(self) -> int:
        return sum(len(table) for table in self.tables)

    def level_sizes(self) -> List[int]:
        return [len(table) for table in self.tables]

    @staticmethod
    def _insert(table: Dict, key: Tuple[int, int], node: int) -> None:
        """Insert preserving existing entries: a (rare) duplicate function gets
        a salted slot — it only inflates the size heuristic, never breaks it."""
        if key in table and table[key] != node:
            table[(key[0], key[1], node)] = node
        else:
            table[key] = node

    # -- the adjacent swap --------------------------------------------------------
    def swap(self, upper: int) -> None:
        """Swap the variables at levels ``upper`` and ``upper + 1`` in place.

        Node ids are preserved (parents above the pair keep pointing at the
        same ids with the same functions): a node of the upper variable that
        depends on the lower one is rewritten in place as a lower-variable
        node over fresh cofactor children; one that does not sinks a level;
        lower-variable nodes still referenced from outside the pair rise.
        """
        lower = upper + 1
        u_nodes = self.tables[upper]
        v_nodes = self.tables[lower]
        self.tables[upper] = {}
        self.tables[lower] = {}
        for _key, node in u_nodes.items():
            if self.refs[node] <= 0:
                continue
            _level, low, high = self.nodes[node]
            low_is_v = low > 1 and self.nodes[low][0] == lower
            high_is_v = high > 1 and self.nodes[high][0] == lower
            if not low_is_v and not high_is_v:
                # independent of the rising variable: the node sinks one level
                self.nodes[node][0] = lower
                self._insert(self.tables[lower], (low, high), node)
                continue
            f00, f01 = (self.nodes[low][1], self.nodes[low][2]) if low_is_v else (low, low)
            f10, f11 = (self.nodes[high][1], self.nodes[high][2]) if high_is_v else (high, high)
            new_low = self._lookup(lower, f00, f10)
            new_high = self._lookup(lower, f01, f11)
            self.nodes[node][0] = upper
            self.nodes[node][1] = new_low
            self.nodes[node][2] = new_high
            self._insert(self.tables[upper], (new_low, new_high), node)
            self._release(low)
            self._release(high)
        # lower-variable nodes still referenced from roots or from levels above
        # the pair rise; the rest died when their last upper parent released them
        for _key, node in v_nodes.items():
            if self.refs[node] <= 0 or self.nodes[node][0] != lower:
                continue
            self.nodes[node][0] = upper
            self._insert(self.tables[upper], (self.nodes[node][1], self.nodes[node][2]), node)
        self.names[upper], self.names[lower] = self.names[lower], self.names[upper]

    # -- the sifting loop ---------------------------------------------------------
    def run(self, max_variables: Optional[int] = None) -> List[str]:
        """Sift variables (largest population first); return the best order."""
        candidates = sorted(
            range(len(self.names)),
            key=lambda level: -len(self.tables[level]),
        )
        if max_variables is not None:
            candidates = candidates[:max_variables]
        sifted_names = [self.names[level] for level in candidates]
        for name in sifted_names:
            self._sift_one(name)
        return list(self.names)

    def _sift_one(self, name: str, max_growth: float = 1.5) -> None:
        position = self.names.index(name)
        best_size = self.size()
        best_position = position
        limit = int(best_size * max_growth) + 2
        # downward pass
        current = position
        while current < len(self.names) - 1:
            self.swap(current)
            current += 1
            size = self.size()
            if size < best_size:
                best_size, best_position = size, current
            if size > limit:
                break
        # back up through the start
        while current > 0:
            self.swap(current - 1)
            current -= 1
            size = self.size()
            if size < best_size:
                best_size, best_position = size, current
            if size > limit and current < best_position:
                break
        # settle at the best position seen
        while current < best_position:
            self.swap(current)
            current += 1
        while current > best_position:
            self.swap(current - 1)
            current -= 1
