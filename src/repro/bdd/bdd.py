"""A hash-consed Reduced Ordered BDD manager.

The implementation follows the classical Bryant construction:

* nodes are triples ``(level, low, high)`` interned in a unique table, so
  structural equality is pointer equality;
* boolean operations go through a memoized Shannon expansion (``apply``);
* quantification, restriction (cofactors), substitution of variables by
  functions (``compose``) and satisfying-assignment enumeration are provided,
  which is all the clock calculus and the symbolic model checker need.

Variables are referred to by name; their order is the order of registration
with :meth:`BDDManager.declare` (callers that care about ordering declare
variables explicitly up front).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple


class BDD:
    """A node of a reduced ordered BDD (or one of the two terminals)."""

    __slots__ = ("manager", "index")

    def __init__(self, manager: "BDDManager", index: int):
        self.manager = manager
        self.index = index

    # -- structural queries -----------------------------------------------
    def is_true(self) -> bool:
        return self.index == BDDManager.TRUE_INDEX

    def is_false(self) -> bool:
        return self.index == BDDManager.FALSE_INDEX

    def is_terminal(self) -> bool:
        return self.index in (BDDManager.TRUE_INDEX, BDDManager.FALSE_INDEX)

    @property
    def level(self) -> int:
        return self.manager.node_level(self.index)

    @property
    def variable(self) -> str:
        return self.manager.level_name(self.level)

    @property
    def low(self) -> "BDD":
        return BDD(self.manager, self.manager.node_low(self.index))

    @property
    def high(self) -> "BDD":
        return BDD(self.manager, self.manager.node_high(self.index))

    # -- boolean operations -------------------------------------------------
    def __invert__(self) -> "BDD":
        return self.manager.negate(self)

    def __and__(self, other: "BDD") -> "BDD":
        return self.manager.apply("and", self, other)

    def __or__(self, other: "BDD") -> "BDD":
        return self.manager.apply("or", self, other)

    def __xor__(self, other: "BDD") -> "BDD":
        return self.manager.apply("xor", self, other)

    def implies(self, other: "BDD") -> "BDD":
        return self.manager.apply("implies", self, other)

    def iff(self, other: "BDD") -> "BDD":
        return self.manager.apply("iff", self, other)

    def diff(self, other: "BDD") -> "BDD":
        """Set difference: ``self & ~other``."""
        return self & ~other

    def ite(self, then_branch: "BDD", else_branch: "BDD") -> "BDD":
        return self.manager.ite(self, then_branch, else_branch)

    # -- quantification and substitution -------------------------------------
    def restrict(self, assignment: Mapping[str, bool]) -> "BDD":
        return self.manager.restrict(self, assignment)

    def exists(self, variables: Iterable[str]) -> "BDD":
        return self.manager.exists(self, variables)

    def forall(self, variables: Iterable[str]) -> "BDD":
        return self.manager.forall(self, variables)

    def compose(self, substitution: Mapping[str, "BDD"]) -> "BDD":
        return self.manager.compose(self, substitution)

    def rename(self, renaming: Mapping[str, str]) -> "BDD":
        return self.manager.rename(self, renaming)

    # -- queries --------------------------------------------------------------
    def support(self) -> FrozenSet[str]:
        return self.manager.support(self)

    def is_satisfiable(self) -> bool:
        return not self.is_false()

    def is_tautology(self) -> bool:
        return self.is_true()

    def satisfy_one(self) -> Optional[Dict[str, bool]]:
        return self.manager.satisfy_one(self)

    def satisfy_all(self, variables: Optional[Sequence[str]] = None) -> Iterator[Dict[str, bool]]:
        return self.manager.satisfy_all(self, variables)

    def count(self, variables: Optional[Sequence[str]] = None) -> int:
        return self.manager.count(self, variables)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.manager.evaluate(self, assignment)

    def node_count(self) -> int:
        return self.manager.node_count(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BDD):
            return NotImplemented
        return self.manager is other.manager and self.index == other.index

    def __hash__(self) -> int:
        return hash((id(self.manager), self.index))

    def __bool__(self) -> bool:
        raise TypeError(
            "BDDs cannot be used as Python booleans; use is_true(), is_false() or is_satisfiable()"
        )

    def __repr__(self) -> str:
        if self.is_true():
            return "BDD(TRUE)"
        if self.is_false():
            return "BDD(FALSE)"
        return f"BDD(var={self.variable!r}, nodes={self.node_count()})"


class BDDManager:
    """Owner of the unique table, the computed-table cache and the variable order."""

    FALSE_INDEX = 0
    TRUE_INDEX = 1

    def __init__(self, variables: Iterable[str] = ()):
        # nodes[i] = (level, low, high); terminals use level = a large sentinel
        self._levels: List[int] = [2**30, 2**30]
        self._lows: List[int] = [0, 1]
        self._highs: List[int] = [0, 1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._names: List[str] = []
        self._levels_by_name: Dict[str, int] = {}
        for name in variables:
            self.declare(name)

    # -- variables -----------------------------------------------------------
    def declare(self, name: str) -> int:
        """Register a variable (idempotent) and return its level."""
        if name not in self._levels_by_name:
            self._levels_by_name[name] = len(self._names)
            self._names.append(name)
        return self._levels_by_name[name]

    def variables(self) -> Tuple[str, ...]:
        return tuple(self._names)

    def level_name(self, level: int) -> str:
        return self._names[level]

    def has_variable(self, name: str) -> bool:
        return name in self._levels_by_name

    # -- raw node accessors ------------------------------------------------------
    def node_level(self, index: int) -> int:
        return self._levels[index]

    def node_low(self, index: int) -> int:
        return self._lows[index]

    def node_high(self, index: int) -> int:
        return self._highs[index]

    def size(self) -> int:
        """Total number of interned nodes (including the two terminals)."""
        return len(self._levels)

    # -- terminals and variables --------------------------------------------------
    @property
    def true(self) -> BDD:
        return BDD(self, self.TRUE_INDEX)

    @property
    def false(self) -> BDD:
        return BDD(self, self.FALSE_INDEX)

    def var(self, name: str) -> BDD:
        level = self.declare(name)
        return BDD(self, self._make_node(level, self.FALSE_INDEX, self.TRUE_INDEX))

    def nvar(self, name: str) -> BDD:
        level = self.declare(name)
        return BDD(self, self._make_node(level, self.TRUE_INDEX, self.FALSE_INDEX))

    def constant(self, value: bool) -> BDD:
        return self.true if value else self.false

    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        index = len(self._levels)
        self._levels.append(level)
        self._lows.append(low)
        self._highs.append(high)
        self._unique[key] = index
        return index

    # -- apply ------------------------------------------------------------------
    @staticmethod
    def _terminal_op(operation: str, left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
        """Short-circuit evaluation of ``operation`` on possibly-unknown terminals."""
        if operation == "and":
            if left is False or right is False:
                return False
            if left is True and right is True:
                return True
        elif operation == "or":
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
        elif operation == "xor":
            if left is not None and right is not None:
                return left != right
        elif operation == "implies":
            if left is False or right is True:
                return True
            if left is True and right is False:
                return False
        elif operation == "iff":
            if left is not None and right is not None:
                return left == right
        return None

    def _as_terminal(self, index: int) -> Optional[bool]:
        if index == self.TRUE_INDEX:
            return True
        if index == self.FALSE_INDEX:
            return False
        return None

    def apply(self, operation: str, left: BDD, right: BDD) -> BDD:
        """Binary boolean operation via memoized Shannon expansion."""
        return BDD(self, self._apply(operation, left.index, right.index))

    def _apply(self, operation: str, left: int, right: int) -> int:
        terminal = self._terminal_op(
            operation, self._as_terminal(left), self._as_terminal(right)
        )
        if terminal is not None:
            return self.TRUE_INDEX if terminal else self.FALSE_INDEX
        if operation in ("and", "or", "xor", "iff") and left > right:
            left, right = right, left  # commutative: canonicalize the cache key
        key = (operation, left, right)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        left_level = self._levels[left]
        right_level = self._levels[right]
        level = min(left_level, right_level)
        left_low, left_high = (
            (self._lows[left], self._highs[left]) if left_level == level else (left, left)
        )
        right_low, right_high = (
            (self._lows[right], self._highs[right]) if right_level == level else (right, right)
        )
        low = self._apply(operation, left_low, right_low)
        high = self._apply(operation, left_high, right_high)
        result = self._make_node(level, low, high)
        self._apply_cache[key] = result
        return result

    def negate(self, node: BDD) -> BDD:
        return BDD(self, self._apply("xor", node.index, self.TRUE_INDEX))

    def ite(self, condition: BDD, then_branch: BDD, else_branch: BDD) -> BDD:
        """If-then-else: ``(condition & then) | (~condition & else)``."""
        key = (condition.index, then_branch.index, else_branch.index)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return BDD(self, cached)
        result = (condition & then_branch) | (~condition & else_branch)
        self._ite_cache[key] = result.index
        return result

    # -- restriction, quantification, substitution ---------------------------------
    def restrict(self, node: BDD, assignment: Mapping[str, bool]) -> BDD:
        """Cofactor: fix the given variables to constants."""
        by_level = {
            self._levels_by_name[name]: value
            for name, value in assignment.items()
            if name in self._levels_by_name
        }
        cache: Dict[int, int] = {}

        def walk(index: int) -> int:
            if index in (self.TRUE_INDEX, self.FALSE_INDEX):
                return index
            if index in cache:
                return cache[index]
            level = self._levels[index]
            if level in by_level:
                result = walk(self._highs[index] if by_level[level] else self._lows[index])
            else:
                result = self._make_node(level, walk(self._lows[index]), walk(self._highs[index]))
            cache[index] = result
            return result

        return BDD(self, walk(node.index))

    def exists(self, node: BDD, variables: Iterable[str]) -> BDD:
        """Existential quantification over the given variables."""
        result = node
        for name in variables:
            if name not in self._levels_by_name:
                continue
            low = self.restrict(result, {name: False})
            high = self.restrict(result, {name: True})
            result = low | high
        return result

    def forall(self, node: BDD, variables: Iterable[str]) -> BDD:
        """Universal quantification over the given variables."""
        result = node
        for name in variables:
            if name not in self._levels_by_name:
                continue
            low = self.restrict(result, {name: False})
            high = self.restrict(result, {name: True})
            result = low & high
        return result

    def compose(self, node: BDD, substitution: Mapping[str, BDD]) -> BDD:
        """Substitute variables by boolean functions."""
        result = node
        for name, function in substitution.items():
            if name not in self._levels_by_name:
                continue
            variable = self.var(name)
            high = self.restrict(result, {name: True})
            low = self.restrict(result, {name: False})
            result = self.ite(function, high, low)
        return result

    def rename(self, node: BDD, renaming: Mapping[str, str]) -> BDD:
        """Rename variables (target variables must not clash with remaining support)."""
        substitution = {source: self.var(target) for source, target in renaming.items()}
        return self.compose(node, substitution)

    # -- queries -----------------------------------------------------------------
    def support(self, node: BDD) -> FrozenSet[str]:
        """The set of variables the function actually depends on."""
        seen: Set[int] = set()
        levels: Set[int] = set()
        stack = [node.index]
        while stack:
            index = stack.pop()
            if index in seen or index in (self.TRUE_INDEX, self.FALSE_INDEX):
                continue
            seen.add(index)
            levels.add(self._levels[index])
            stack.append(self._lows[index])
            stack.append(self._highs[index])
        return frozenset(self._names[level] for level in levels)

    def node_count(self, node: BDD) -> int:
        """Number of distinct internal nodes of the BDD rooted at ``node``."""
        seen: Set[int] = set()
        stack = [node.index]
        while stack:
            index = stack.pop()
            if index in seen or index in (self.TRUE_INDEX, self.FALSE_INDEX):
                continue
            seen.add(index)
            stack.append(self._lows[index])
            stack.append(self._highs[index])
        return len(seen)

    def satisfy_one(self, node: BDD) -> Optional[Dict[str, bool]]:
        """One satisfying assignment over the support, or None if unsatisfiable."""
        if node.is_false():
            return None
        assignment: Dict[str, bool] = {}
        index = node.index
        while index not in (self.TRUE_INDEX, self.FALSE_INDEX):
            level = self._levels[index]
            if self._highs[index] != self.FALSE_INDEX:
                assignment[self._names[level]] = True
                index = self._highs[index]
            else:
                assignment[self._names[level]] = False
                index = self._lows[index]
        return assignment

    def satisfy_all(
        self, node: BDD, variables: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, bool]]:
        """All satisfying assignments, expanded over ``variables`` (default: support)."""
        names = tuple(variables) if variables is not None else tuple(sorted(self.support(node)))
        for bits in itertools.product((False, True), repeat=len(names)):
            assignment = dict(zip(names, bits))
            if self.evaluate(node, assignment):
                yield assignment

    def count(self, node: BDD, variables: Optional[Sequence[str]] = None) -> int:
        """Number of satisfying assignments over ``variables`` (default: support)."""
        names = tuple(variables) if variables is not None else tuple(sorted(self.support(node)))
        missing = self.support(node) - set(names)
        if missing:
            raise ValueError(f"count variables must cover the support; missing {sorted(missing)}")
        cache: Dict[Tuple[int, int], int] = {}
        name_levels = sorted(self._levels_by_name[name] for name in names if name in self._levels_by_name)

        def walk(index: int, position: int) -> int:
            remaining = len(name_levels) - position
            if index == self.TRUE_INDEX:
                return 2**remaining
            if index == self.FALSE_INDEX:
                return 0
            key = (index, position)
            if key in cache:
                return cache[key]
            level = self._levels[index]
            if position < len(name_levels) and name_levels[position] < level:
                result = 2 * walk(index, position + 1)
            else:
                result = walk(self._lows[index], position + 1) + walk(self._highs[index], position + 1)
            cache[key] = result
            return result

        return walk(node.index, 0)

    def evaluate(self, node: BDD, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the function under a (total, over the support) assignment."""
        index = node.index
        while index not in (self.TRUE_INDEX, self.FALSE_INDEX):
            name = self._names[self._levels[index]]
            if name not in assignment:
                raise KeyError(f"assignment is missing variable {name!r}")
            index = self._highs[index] if assignment[name] else self._lows[index]
        return index == self.TRUE_INDEX

    # -- convenience -----------------------------------------------------------
    def conjoin(self, nodes: Iterable[BDD]) -> BDD:
        result = self.true
        for node in nodes:
            result = result & node
        return result

    def disjoin(self, nodes: Iterable[BDD]) -> BDD:
        result = self.false
        for node in nodes:
            result = result | node
        return result

    def implies_check(self, antecedent: BDD, consequent: BDD) -> bool:
        """Decide whether ``antecedent -> consequent`` is a tautology."""
        return antecedent.implies(consequent).is_true()

    def equivalent(self, left: BDD, right: BDD) -> bool:
        return left.index == right.index
