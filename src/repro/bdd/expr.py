"""A small boolean-expression layer on top of the BDD manager.

Clock relations and model-checking invariants are more naturally written as
syntax trees before being compiled to BDDs.  :class:`BoolExpr` provides that
layer: expressions are immutable, can be pretty-printed, evaluated directly
on assignments, and compiled to a BDD under a given manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Tuple

from repro.bdd.bdd import BDD, BDDManager


class BoolExpr:
    """Base class of boolean expressions."""

    def variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        raise NotImplementedError

    def to_bdd(self, manager: BDDManager) -> BDD:
        raise NotImplementedError

    # operator sugar -------------------------------------------------------
    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return And(self, other)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return Or(self, other)

    def __invert__(self) -> "BoolExpr":
        return Not(self)

    def implies(self, other: "BoolExpr") -> "BoolExpr":
        return Implies(self, other)

    def iff(self, other: "BoolExpr") -> "BoolExpr":
        return Iff(self, other)


@dataclass(frozen=True)
class _Constant(BoolExpr):
    value: bool

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.value

    def to_bdd(self, manager: BDDManager) -> BDD:
        return manager.constant(self.value)

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = _Constant(True)
FALSE = _Constant(False)


@dataclass(frozen=True)
class Var(BoolExpr):
    """A boolean variable."""

    name: str

    def variables(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return bool(assignment[self.name])

    def to_bdd(self, manager: BDDManager) -> BDD:
        return manager.var(self.name)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(BoolExpr):
    operand: BoolExpr

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def to_bdd(self, manager: BDDManager) -> BDD:
        return ~self.operand.to_bdd(manager)

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


@dataclass(frozen=True)
class _Binary(BoolExpr):
    left: BoolExpr
    right: BoolExpr

    _symbol = "?"

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} {self._symbol} {self.right!r})"


class And(_Binary):
    _symbol = "&"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) and self.right.evaluate(assignment)

    def to_bdd(self, manager: BDDManager) -> BDD:
        return self.left.to_bdd(manager) & self.right.to_bdd(manager)


class Or(_Binary):
    _symbol = "|"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) or self.right.evaluate(assignment)

    def to_bdd(self, manager: BDDManager) -> BDD:
        return self.left.to_bdd(manager) | self.right.to_bdd(manager)


class Xor(_Binary):
    _symbol = "^"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) != self.right.evaluate(assignment)

    def to_bdd(self, manager: BDDManager) -> BDD:
        return self.left.to_bdd(manager) ^ self.right.to_bdd(manager)


class Implies(_Binary):
    _symbol = "->"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return (not self.left.evaluate(assignment)) or self.right.evaluate(assignment)

    def to_bdd(self, manager: BDDManager) -> BDD:
        return self.left.to_bdd(manager).implies(self.right.to_bdd(manager))


class Iff(_Binary):
    _symbol = "<->"

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return self.left.evaluate(assignment) == self.right.evaluate(assignment)

    def to_bdd(self, manager: BDDManager) -> BDD:
        return self.left.to_bdd(manager).iff(self.right.to_bdd(manager))


def conjunction(*expressions: BoolExpr) -> BoolExpr:
    """The conjunction of zero or more expressions (TRUE when empty)."""
    result: BoolExpr = TRUE
    for expression in expressions:
        result = expression if result is TRUE else And(result, expression)
    return result


def disjunction(*expressions: BoolExpr) -> BoolExpr:
    """The disjunction of zero or more expressions (FALSE when empty)."""
    result: BoolExpr = FALSE
    for expression in expressions:
        result = expression if result is FALSE else Or(result, expression)
    return result
