"""Clock calculus: inference, algebra, hierarchy and disjunctive form.

This package reproduces Section 3 of the paper: the inference system that
associates a process with its timing relations (clock equations and
scheduling relations), the boolean algebra in which entailment ``R |= S`` is
decided (via BDDs), the clock hierarchy of Definition 5 with its
well-formedness condition (Definition 6), and the disjunctive-form
transformation of Section 3.4 that eliminates symmetric differences
(Definition 7, "well-clocked" processes).
"""

from repro.clocks.expressions import (
    clock_key,
    clock_signals,
    format_clock_expression,
    iter_subclocks,
    simplify_clock,
)
from repro.clocks.relations import (
    Node,
    signal_node,
    clock_node,
    ClockRelation,
    SchedulingRelation,
    TimingRelations,
)
from repro.clocks.inference import infer_timing_relations
from repro.clocks.algebra import ClockAlgebra
from repro.clocks.hierarchy import ClockHierarchy, build_hierarchy
from repro.clocks.disjunctive import DisjunctiveFormResult, to_disjunctive_form, is_well_clocked

__all__ = [
    "clock_key",
    "clock_signals",
    "format_clock_expression",
    "iter_subclocks",
    "simplify_clock",
    "Node",
    "signal_node",
    "clock_node",
    "ClockRelation",
    "SchedulingRelation",
    "TimingRelations",
    "infer_timing_relations",
    "ClockAlgebra",
    "ClockHierarchy",
    "build_hierarchy",
    "DisjunctiveFormResult",
    "to_disjunctive_form",
    "is_well_clocked",
]
