"""The boolean algebra of clocks, decided with BDDs.

Section 3.2 interprets timing relations in a boolean algebra: composition is
conjunction, restriction is existential quantification, and ``R |= S`` means
that ``S`` holds in every instant allowed by ``R``.  The encoding used here
assigns to every signal ``x`` a *presence* variable ``p·x`` and, when ``x``
is boolean, a *value* variable ``v·x``:

* ``x^``   ↦  ``p·x``
* ``[x]``  ↦  ``p·x ∧ v·x``
* ``[¬x]`` ↦  ``p·x ∧ ¬v·x``

so that the axioms ``x^ = [x] ∨ [¬x]`` and ``[x] ∧ [¬x] = 0`` hold by
construction.  The timing relations of a process compile to one BDD; every
entailment question of the analyses (clock equivalence, emptiness,
inclusion, constraint detection) is then a BDD implication check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bdd.backend import create_manager
from repro.bdd.bdd import BDD, BDDManager
from repro.clocks.relations import ClockRelation, TimingRelations
from repro.lang.ast import (
    ClockBinary,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
)
from repro.lang.normalize import NormalizedProcess


def presence_variable(name: str) -> str:
    """The BDD variable standing for the presence of signal ``name``."""
    return f"p·{name}"


def value_variable(name: str) -> str:
    """The BDD variable standing for the boolean value of signal ``name``."""
    return f"v·{name}"


class ClockAlgebra:
    """Decision procedures over the timing relations of one (composed) process."""

    def __init__(
        self,
        process: NormalizedProcess,
        relations: TimingRelations,
        manager: Optional[BDDManager] = None,
        backend: Optional[str] = None,
    ):
        self.process = process
        self.relations = relations
        self.manager = manager or create_manager(backend=backend)
        self._signals: Tuple[str, ...] = process.all_signals()
        self._boolean_signals: Set[str] = set(process.boolean_signals())
        # Declare variables in a deterministic order.  The presence and value
        # variables of one signal are kept adjacent: clock constraints such as
        # ``x^ = y^ ∧ [z]`` relate a signal's presence to another signal's
        # presence *and value*, so interleaving the two families keeps the
        # relation BDD small (placing all presences before all values makes it
        # blow up on larger compositions).
        for name in self._signals:
            self.manager.declare(presence_variable(name))
            if name in self._boolean_signals:
                self.manager.declare(value_variable(name))
        self._relation_bdd: Optional[BDD] = None
        self._factors = self._compile_relations()

    # -- encoding --------------------------------------------------------------
    def encode(self, expression: ClockExpressionSyntax) -> BDD:
        """Compile a clock expression into its BDD."""
        if isinstance(expression, ClockEmpty):
            return self.manager.false
        if isinstance(expression, ClockOf):
            return self.manager.var(presence_variable(expression.name))
        if isinstance(expression, ClockTrue):
            return self.manager.var(presence_variable(expression.name)) & self.manager.var(
                value_variable(expression.name)
            )
        if isinstance(expression, ClockFalse):
            return self.manager.var(presence_variable(expression.name)) & ~self.manager.var(
                value_variable(expression.name)
            )
        if isinstance(expression, ClockBinary):
            left = self.encode(expression.left)
            right = self.encode(expression.right)
            if expression.operator == "and":
                return left & right
            if expression.operator == "or":
                return left | right
            if expression.operator == "diff":
                return left & ~right
        raise TypeError(f"unsupported clock expression: {expression!r}")

    def _compile_relations(self) -> List[BDD]:
        """Compile the clock relations into variable-disjoint *factors*.

        The relation of a composed process is a conjunction whose conjuncts
        touch variable sets that barely overlap — in the limit of
        independent components, not at all.  Grouping the conjuncts into
        connected components by shared variables (union-find) turns ``R``
        into ``F_1 ∧ ... ∧ F_m`` with pairwise-disjoint supports, the
        algebraic shadow of the paper's compositional structure.  Every
        entailment query then consults only the factors its clocks touch:
        for variable-disjoint ``R = G ∧ H`` with ``vars(H) ∩ vars(c) = ∅``,
        ``R ⊨ c`` iff ``R`` is unsatisfiable or ``G ⊨ c`` — so the analyses
        of an N-component composition stop paying for the other N−1
        components on every BDD query.
        """
        factors: List[BDD] = []
        factor_of: Dict[str, int] = {}
        for relation in self.relations.clock_relations:
            conjunct = self.encode(relation.left).iff(self.encode(relation.right))
            support = conjunct.support()
            touched = sorted({factor_of[v] for v in support if v in factor_of})
            merged = conjunct
            for position in touched:
                merged = merged & factors[position]
                factors[position] = None  # type: ignore[call-overload]
            factors.append(merged)
            target = len(factors) - 1
            for variable, position in list(factor_of.items()):
                if position in touched:
                    factor_of[variable] = target
            for variable in support:
                factor_of[variable] = target
        kept: List[BDD] = []
        renumber: Dict[int, int] = {}
        for position, factor in enumerate(factors):
            if factor is not None:
                renumber[position] = len(kept)
                kept.append(factor)
        self._factor_of = {
            variable: renumber[position] for variable, position in factor_of.items()
        }
        self._combined: Dict[frozenset, BDD] = {}
        self._unsatisfiable = any(not factor.is_satisfiable() for factor in kept)
        return kept

    @property
    def relation_bdd(self) -> BDD:
        """The BDD of the conjunction of all clock relations (built lazily —
        the entailment queries work factor-wise and rarely need it)."""
        if self._relation_bdd is None:
            conjunction = self.manager.true
            for factor in self._factors:
                conjunction = conjunction & factor
            self._relation_bdd = conjunction
        return self._relation_bdd

    def _relevant_relation(self, support: Iterable[str]) -> BDD:
        """The conjunction of the factors whose variables ``support`` touches."""
        positions = frozenset(
            self._factor_of[variable]
            for variable in support
            if variable in self._factor_of
        )
        if not positions:
            return self.manager.true
        if len(positions) == 1:
            return self._factors[next(iter(positions))]
        cached = self._combined.get(positions)
        if cached is None:
            cached = self.manager.true
            for position in sorted(positions):
                cached = cached & self._factors[position]
            self._combined[positions] = cached
        return cached

    # -- entailment queries --------------------------------------------------
    def satisfiable(self) -> bool:
        """True iff the timing relations admit at least one instant."""
        return not self._unsatisfiable

    def entails(self, constraint: BDD) -> bool:
        """``R |= constraint``: the constraint holds in every instant allowed by R."""
        if self._unsatisfiable:
            return True
        relevant = self._relevant_relation(constraint.support())
        return relevant.implies(constraint).is_true()

    def feasible(self, constraint: BDD) -> bool:
        """``R ∧ constraint`` is satisfiable: the constraint can tick at all."""
        if self._unsatisfiable:
            return False
        return (self._relevant_relation(constraint.support()) & constraint).is_satisfiable()

    def constrained(self, constraint: BDD) -> BDD:
        """``constraint`` conjoined with exactly the factors it touches.

        Equi-satisfiable with ``R ∧ constraint`` whenever ``R`` is
        satisfiable (the untouched factors are variable-disjoint), and
        closed under conjunction: conjoining two constrained labels yields
        a constrained label of their conjunction — which is what lets the
        scheduling closure propagate feasibility component-locally.
        """
        return self._relevant_relation(constraint.support()) & constraint

    def entails_equal(self, left: ClockExpressionSyntax, right: ClockExpressionSyntax) -> bool:
        """``R |= left = right``."""
        return self.entails(self.encode(left).iff(self.encode(right)))

    def entails_subclock(self, left: ClockExpressionSyntax, right: ClockExpressionSyntax) -> bool:
        """``R |= left ⊆ right``: whenever ``left`` ticks, ``right`` ticks."""
        return self.entails(self.encode(left).implies(self.encode(right)))

    def is_empty_clock(self, expression: ClockExpressionSyntax) -> bool:
        """``R |= expression = 0``."""
        return self.entails(~self.encode(expression))

    def is_exclusive(self, left: ClockExpressionSyntax, right: ClockExpressionSyntax) -> bool:
        """``R |= left ∧ right = 0``: the two clocks never tick together."""
        return self.entails(~(self.encode(left) & self.encode(right)))

    def clocks_equivalent_to(
        self, expression: ClockExpressionSyntax, candidates: Iterable[ClockExpressionSyntax]
    ) -> List[ClockExpressionSyntax]:
        """The candidate clocks provably equal to ``expression`` under R."""
        return [candidate for candidate in candidates if self.entails_equal(expression, candidate)]

    # -- constraint reporting (Section 5.1) ----------------------------------------
    def implied_equalities(
        self, clocks: Iterable[ClockExpressionSyntax]
    ) -> List[Tuple[ClockExpressionSyntax, ClockExpressionSyntax]]:
        """All pairwise equalities between the given clocks that R entails.

        This is the mechanism Polychrony uses to *report clock constraints*
        such as ``[¬a] = [b]`` when composing the producer and the consumer;
        the controller synthesis of Section 5.2 is built from this report.
        """
        clock_list = list(clocks)
        equalities: List[Tuple[ClockExpressionSyntax, ClockExpressionSyntax]] = []
        for index, left in enumerate(clock_list):
            for right in clock_list[index + 1 :]:
                if self.entails_equal(left, right):
                    equalities.append((left, right))
        return equalities

    def project(self, keep_signals: Iterable[str]) -> BDD:
        """Existentially quantify away every variable not about ``keep_signals``."""
        keep = set(keep_signals)
        to_quantify = [
            variable
            for variable in self.manager.variables()
            if variable.split("·", 1)[1] not in keep
        ]
        return self._relation_bdd.exists(to_quantify)
