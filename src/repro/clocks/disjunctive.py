"""Disjunctive form: eliminating symmetric differences (Section 3.4).

A timing relation is in *disjunctive form* when no clock is expressed with a
symmetric difference ``c \\ d``; such differences denote the *absence* of an
event, which generated code cannot test directly.  The elimination replaces
``c \\ d`` by a positively testable clock, typically ``c ∧ [x]`` or
``c ∧ [¬x]`` for some boolean signal ``x`` whose value encodes, at clock
``c``, whether ``d`` ticks — exactly what happens for the buffer's ``current``
process where ``r^ \\ y^`` becomes ``[t]``.

A process whose hierarchy is well-formed and whose relations admit a
disjunctive form is *well-clocked* (Definition 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.clocks.algebra import ClockAlgebra
from repro.clocks.expressions import (
    clock_key,
    contains_difference,
    format_clock_expression,
    simplify_clock,
)
from repro.clocks.hierarchy import ClockHierarchy
from repro.clocks.relations import ClockRelation, SchedulingRelation, TimingRelations
from repro.lang.ast import (
    ClockBinary,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
)
from repro.lang.normalize import NormalizedProcess


@dataclass
class DifferenceRewrite:
    """The record of one eliminated (or stuck) symmetric difference."""

    original: ClockExpressionSyntax
    replacement: Optional[ClockExpressionSyntax]

    def eliminated(self) -> bool:
        return self.replacement is not None

    def __str__(self) -> str:
        if self.replacement is None:
            return f"{format_clock_expression(self.original)}  (no disjunctive form)"
        return (
            f"{format_clock_expression(self.original)}  ->  "
            f"{format_clock_expression(self.replacement)}"
        )


@dataclass
class DisjunctiveFormResult:
    """Outcome of the disjunctive-form pass."""

    relations: TimingRelations
    rewrites: List[DifferenceRewrite] = field(default_factory=list)

    def is_disjunctive(self) -> bool:
        """True iff every symmetric difference was eliminated."""
        return all(rewrite.eliminated() for rewrite in self.rewrites)

    def remaining_differences(self) -> List[ClockExpressionSyntax]:
        return [rewrite.original for rewrite in self.rewrites if not rewrite.eliminated()]


def _candidate_literals(process: NormalizedProcess) -> List[ClockExpressionSyntax]:
    """The sampled clocks ``[x]`` / ``[¬x]`` usable in a disjunctive rewriting."""
    literals: List[ClockExpressionSyntax] = []
    for name in process.boolean_signals():
        literals.append(ClockTrue(name))
        literals.append(ClockFalse(name))
    return literals


def _rewrite_expression(
    expression: ClockExpressionSyntax,
    algebra: ClockAlgebra,
    literals: List[ClockExpressionSyntax],
    rewrites: List[DifferenceRewrite],
) -> ClockExpressionSyntax:
    """Rewrite every difference sub-expression that admits a disjunctive form."""
    if isinstance(expression, ClockBinary):
        left = _rewrite_expression(expression.left, algebra, literals, rewrites)
        right = _rewrite_expression(expression.right, algebra, literals, rewrites)
        rebuilt = ClockBinary(expression.operator, left, right)
        if expression.operator != "diff":
            return rebuilt
        # Try to replace  left \ right  by a positively testable clock.
        if algebra.is_empty_clock(rebuilt):
            replacement: Optional[ClockExpressionSyntax] = ClockEmpty()
        elif algebra.entails_equal(rebuilt, left):
            replacement = left
        else:
            replacement = None
            for literal in literals:
                candidate = simplify_clock(ClockBinary("and", left, literal))
                if algebra.entails_equal(rebuilt, candidate):
                    replacement = candidate
                    break
                if algebra.entails_equal(rebuilt, literal):
                    replacement = literal
                    break
        rewrites.append(DifferenceRewrite(original=rebuilt, replacement=replacement))
        return replacement if replacement is not None else rebuilt
    return expression


def to_disjunctive_form(
    process: NormalizedProcess,
    relations: TimingRelations,
    algebra: Optional[ClockAlgebra] = None,
) -> DisjunctiveFormResult:
    """Rewrite the timing relations so that no clock uses a symmetric difference.

    Differences that cannot be eliminated are reported (the process is then
    not well-clocked); the relations returned keep the original expression in
    that case so that later passes still see a sound (if not disjunctive)
    relation set.
    """
    if algebra is None:
        algebra = ClockAlgebra(process, relations)
    literals = _candidate_literals(process)
    rewrites: List[DifferenceRewrite] = []

    new_clock_relations: List[ClockRelation] = []
    for relation in relations.clock_relations:
        new_clock_relations.append(
            ClockRelation(
                _rewrite_expression(relation.left, algebra, literals, rewrites),
                _rewrite_expression(relation.right, algebra, literals, rewrites),
            )
        )
    new_scheduling_relations: List[SchedulingRelation] = []
    for relation in relations.scheduling_relations:
        new_scheduling_relations.append(
            SchedulingRelation(
                relation.source,
                relation.target,
                _rewrite_expression(relation.clock, algebra, literals, rewrites),
            )
        )
    rewritten = TimingRelations(
        clock_relations=new_clock_relations,
        scheduling_relations=new_scheduling_relations,
        hidden_signals=set(relations.hidden_signals),
    )
    return DisjunctiveFormResult(relations=rewritten, rewrites=rewrites)


def is_well_clocked(
    process: NormalizedProcess,
    relations: Optional[TimingRelations] = None,
    hierarchy: Optional[ClockHierarchy] = None,
) -> bool:
    """Definition 7: the hierarchy is well-formed and the relations are disjunctive."""
    from repro.clocks.hierarchy import build_hierarchy
    from repro.clocks.inference import infer_timing_relations

    if relations is None:
        relations = infer_timing_relations(process)
    if hierarchy is None:
        hierarchy = build_hierarchy(process, relations)
    if not hierarchy.well_formed():
        return False
    result = to_disjunctive_form(process, relations, hierarchy.algebra)
    return result.is_disjunctive()
