"""Utilities over clock expressions.

Clock expressions reuse the syntax nodes of :mod:`repro.lang.ast`
(:class:`ClockOf`, :class:`ClockTrue`, :class:`ClockFalse`,
:class:`ClockEmpty`, :class:`ClockBinary`); this module adds the operations
the analyses need: canonical keys for hashing, structural simplification,
sub-expression iteration, pretty printing and signal extraction.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Tuple

from repro.lang.ast import (
    ClockBinary,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
)


def clock_key(expression: ClockExpressionSyntax) -> Tuple:
    """A hashable structural key identifying a clock expression."""
    if isinstance(expression, ClockOf):
        return ("tick", expression.name)
    if isinstance(expression, ClockTrue):
        return ("true", expression.name)
    if isinstance(expression, ClockFalse):
        return ("false", expression.name)
    if isinstance(expression, ClockEmpty):
        return ("empty",)
    if isinstance(expression, ClockBinary):
        return (expression.operator, clock_key(expression.left), clock_key(expression.right))
    raise TypeError(f"unsupported clock expression: {expression!r}")


def clock_signals(expression: ClockExpressionSyntax) -> FrozenSet[str]:
    """The signals mentioned by a clock expression."""
    return expression.free_signals()


def iter_subclocks(expression: ClockExpressionSyntax) -> Iterator[ClockExpressionSyntax]:
    """All sub-expressions of a clock expression, including itself."""
    yield expression
    if isinstance(expression, ClockBinary):
        yield from iter_subclocks(expression.left)
        yield from iter_subclocks(expression.right)


def contains_difference(expression: ClockExpressionSyntax) -> bool:
    """True iff the clock expression mentions a symmetric difference ``\\``."""
    return any(
        isinstance(sub, ClockBinary) and sub.operator == "diff"
        for sub in iter_subclocks(expression)
    )


def simplify_clock(expression: ClockExpressionSyntax) -> ClockExpressionSyntax:
    """Purely structural simplification (idempotence, neutral elements, 0 rules)."""
    if isinstance(expression, ClockBinary):
        left = simplify_clock(expression.left)
        right = simplify_clock(expression.right)
        left_key, right_key = clock_key(left), clock_key(right)
        if expression.operator == "and":
            if isinstance(left, ClockEmpty) or isinstance(right, ClockEmpty):
                return ClockEmpty()
            if left_key == right_key:
                return left
        elif expression.operator == "or":
            if isinstance(left, ClockEmpty):
                return right
            if isinstance(right, ClockEmpty):
                return left
            if left_key == right_key:
                return left
        elif expression.operator == "diff":
            if isinstance(left, ClockEmpty):
                return ClockEmpty()
            if isinstance(right, ClockEmpty):
                return left
            if left_key == right_key:
                return ClockEmpty()
        return ClockBinary(expression.operator, left, right)
    return expression


def format_clock_expression(expression: ClockExpressionSyntax) -> str:
    """Human-readable rendering using the paper's notation."""
    if isinstance(expression, ClockOf):
        return f"{expression.name}^"
    if isinstance(expression, ClockTrue):
        return f"[{expression.name}]"
    if isinstance(expression, ClockFalse):
        return f"[¬{expression.name}]"
    if isinstance(expression, ClockEmpty):
        return "0"
    if isinstance(expression, ClockBinary):
        symbol = {"and": "∧", "or": "∨", "diff": "\\"}[expression.operator]
        return (
            f"({format_clock_expression(expression.left)} {symbol} "
            f"{format_clock_expression(expression.right)})"
        )
    raise TypeError(f"unsupported clock expression: {expression!r}")
