"""The clock hierarchy of Definition 5 and its well-formedness (Definition 6).

The hierarchy is a partial order ``≽`` ("determines") over clock equivalence
classes:

1. for every boolean signal ``x``, ``x^ ≽ [x]`` and ``x^ ≽ [¬x]``;
2. clocks provably equal under the timing relations belong to the same class;
3. when a clock ``b1`` is defined by ``c1 f c2`` and some class ``b2``
   dominates both ``c1`` and ``c2``, then ``b2 ≽ b1``.

A process whose hierarchy has a single root is *hierarchic*; a compilable
hierarchic process is endochronous (Property 2).  The roots of a
multi-rooted hierarchy identify the independent sources of concurrency used
by the compositional criterion of Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from repro.clocks.algebra import ClockAlgebra
from repro.clocks.expressions import clock_key, format_clock_expression
from repro.clocks.relations import TimingRelations
from repro.lang.ast import (
    ClockBinary,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
)
from repro.lang.normalize import NormalizedProcess

ClockKey = Tuple


class _AbsentByDefault(dict):
    """A partial witness assignment totalized by absence.

    BDD evaluation asks for arbitrary variables; everything the witness did
    not pin (presences and values of unrelated signals) reads as ``False``
    — the all-absent completion, which satisfies every clock-relation
    factor by construction.
    """

    def __contains__(self, key: object) -> bool:  # evaluate() probes membership
        return True

    def __missing__(self, key: str) -> bool:
        return False


@dataclass
class ClockClass:
    """An equivalence class of clocks (clocks provably equal under R)."""

    index: int
    members: List[ClockExpressionSyntax] = field(default_factory=list)

    def representative(self) -> ClockExpressionSyntax:
        # Prefer a signal clock as representative, then a sampled clock.
        for member in self.members:
            if isinstance(member, ClockOf):
                return member
        return self.members[0]

    def member_keys(self) -> Set[ClockKey]:
        return {clock_key(member) for member in self.members}

    def signal_clocks(self) -> List[str]:
        return sorted(member.name for member in self.members if isinstance(member, ClockOf))

    def describe(self) -> str:
        return " ~ ".join(sorted(format_clock_expression(member) for member in self.members))


class ClockHierarchy:
    """The computed hierarchy: classes, dominance order, roots and trees."""

    def __init__(
        self,
        process: NormalizedProcess,
        algebra: ClockAlgebra,
        classes: List[ClockClass],
        dominance: Set[Tuple[int, int]],
    ):
        self.process = process
        self.algebra = algebra
        self.classes = classes
        #: pairs (above, below): class ``above`` determines class ``below``
        self.dominance = dominance
        self._class_of_key: Dict[ClockKey, int] = {}
        for clock_class in classes:
            for member in clock_class.members:
                self._class_of_key[clock_key(member)] = clock_class.index

    # -- basic queries -----------------------------------------------------------
    def class_of(self, expression: ClockExpressionSyntax) -> Optional[ClockClass]:
        index = self._class_of_key.get(clock_key(expression))
        return self.classes[index] if index is not None else None

    def class_of_signal(self, name: str) -> Optional[ClockClass]:
        return self.class_of(ClockOf(name))

    def same_class(self, left: ClockExpressionSyntax, right: ClockExpressionSyntax) -> bool:
        left_class = self.class_of(left)
        right_class = self.class_of(right)
        return left_class is not None and right_class is not None and left_class.index == right_class.index

    def dominates(self, above: int, below: int) -> bool:
        """Reflexive-transitive dominance between class indices."""
        return above == below or (above, below) in self.dominance

    def strict_dominators(self, index: int) -> Set[int]:
        return {
            above
            for (above, below) in self.dominance
            if below == index and above != index and (below, above) not in self.dominance
        }

    # -- roots and structure ---------------------------------------------------
    def roots(self) -> List[ClockClass]:
        """The minimal classes of the hierarchy (no strict dominator)."""
        return [
            clock_class
            for clock_class in self.classes
            if not self.strict_dominators(clock_class.index) and not self._is_empty_class(clock_class)
        ]

    def _is_empty_class(self, clock_class: ClockClass) -> bool:
        return self.algebra.is_empty_clock(clock_class.representative())

    def root_count(self) -> int:
        return len(self.roots())

    def is_hierarchic(self) -> bool:
        """Definition 11: the hierarchy has a unique root."""
        return self.root_count() == 1

    def root_signals(self) -> List[List[str]]:
        """For every root class, the signals whose clock belongs to it."""
        return [root.signal_clocks() for root in self.roots()]

    def subtree_signals(self, root: ClockClass) -> Set[str]:
        """The signals whose clock class is dominated by ``root`` (including it)."""
        signals: Set[str] = set()
        for clock_class in self.classes:
            if self.dominates(root.index, clock_class.index):
                signals.update(clock_class.signal_clocks())
        return signals

    def parent_map(self) -> Dict[int, Optional[int]]:
        """An immediate-dominator map used to display the hierarchy as a forest."""
        parents: Dict[int, Optional[int]] = {}
        for clock_class in self.classes:
            dominators = self.strict_dominators(clock_class.index)
            if not dominators:
                parents[clock_class.index] = None
                continue
            # choose the *lowest* strict dominator: one not above any other dominator
            best = None
            for candidate in sorted(dominators):
                if all(
                    other == candidate or not self.dominates(candidate, other)
                    for other in dominators
                ):
                    best = candidate
            parents[clock_class.index] = best if best is not None else sorted(dominators)[0]
        return parents

    # -- well-formedness (Definition 6) ---------------------------------------------
    def well_formed(self) -> bool:
        return not self.ill_formed_reasons()

    def ill_formed_reasons(self) -> List[str]:
        """The reasons (if any) the hierarchy is ill-formed.

        The check follows Definition 6, restricted to the free (interface)
        signals of the process: a process that constrains the *value* of one
        of its own inputs (``x^ ~ [x]`` or ``x^ ~ [¬x]`` for an input ``x``)
        may block its environment.  Locally defined boolean signals of
        constant value (such as the output of ``true when c``) legitimately
        satisfy ``x^ = [x]`` and are not flagged.
        """
        reasons: List[str] = []
        if not self.algebra.satisfiable():
            reasons.append("the timing relations are unsatisfiable (the only solution is silence)")
        boolean_inputs = [
            name for name in self.process.inputs if self.process.types.get(name) == "bool"
        ]
        for name in boolean_inputs:
            tick = ClockOf(name)
            if self.algebra.is_empty_clock(tick):
                reasons.append(f"input signal {name!r} can never be present")
                continue
            if self.algebra.entails_equal(tick, ClockTrue(name)):
                reasons.append(
                    f"input signal {name!r} is constrained to be true whenever present"
                )
            if self.algebra.entails_equal(tick, ClockFalse(name)):
                reasons.append(
                    f"input signal {name!r} is constrained to be false whenever present"
                )
        return reasons

    # -- display ------------------------------------------------------------------
    def describe(self) -> str:
        """A textual rendering of the forest, mirroring the paper's figures."""
        parents = self.parent_map()
        children: Dict[Optional[int], List[int]] = {}
        for index, parent in parents.items():
            children.setdefault(parent, []).append(index)
        lines: List[str] = []

        def render(index: int, depth: int) -> None:
            clock_class = self.classes[index]
            if self._is_empty_class(clock_class) and depth == 0:
                return
            lines.append("  " * depth + clock_class.describe())
            for child in sorted(children.get(index, [])):
                render(child, depth + 1)

        for root in sorted(children.get(None, [])):
            render(root, 0)
        return "\n".join(lines)


def _interesting_clocks(process: NormalizedProcess) -> List[ClockExpressionSyntax]:
    clocks: List[ClockExpressionSyntax] = []
    boolean = set(process.boolean_signals())
    for name in process.all_signals():
        clocks.append(ClockOf(name))
        if name in boolean:
            clocks.append(ClockTrue(name))
            clocks.append(ClockFalse(name))
    return clocks


def build_hierarchy(
    process: NormalizedProcess,
    relations: Optional[TimingRelations] = None,
    algebra: Optional[ClockAlgebra] = None,
) -> ClockHierarchy:
    """Build the clock hierarchy of a normalized process (Definition 5)."""
    from repro.clocks.inference import infer_timing_relations

    if relations is None:
        relations = infer_timing_relations(process)
    if algebra is None:
        algebra = ClockAlgebra(process, relations)

    clocks = _interesting_clocks(process)

    # rule 2: equivalence classes under provable equality.  The pairwise
    # entailment sweep is O(clocks × classes); before paying a BDD
    # entailment per pair, candidates are screened against a pool of
    # *R-satisfying witness samples* (one per discovered class).  Clocks
    # provably equal under R agree on every R-satisfying assignment, so a
    # spectrum mismatch soundly rules the pair out; only spectrum-identical
    # pairs reach the entailment check.  On an N-component composition this
    # turns almost every cross-component comparison into a couple of
    # constant-time BDD evaluations.
    classes: List[ClockClass] = []
    class_bdds: List = []
    class_spectra: List[List[bool]] = []
    samples: List[Mapping[str, bool]] = []

    def spectrum(encoded, cache: List[bool]) -> List[bool]:
        while len(cache) < len(samples):
            cache.append(encoded.evaluate(samples[len(cache)]))
        return cache

    for clock in clocks:
        encoded = algebra.encode(clock)
        candidate_spectrum: List[bool] = []
        placed = False
        for position, clock_class in enumerate(classes):
            representative_bdd = class_bdds[position]
            if encoded is not representative_bdd:
                if spectrum(encoded, candidate_spectrum) != spectrum(
                    representative_bdd, class_spectra[position]
                ):
                    continue
                if not algebra.entails(encoded.iff(representative_bdd)):
                    continue
            clock_class.members.append(clock)
            placed = True
            break
        if not placed:
            classes.append(ClockClass(index=len(classes), members=[clock]))
            class_bdds.append(encoded)
            class_spectra.append(candidate_spectrum)
            # a witness instant for the new class: the clock ticks, its own
            # relation factors hold, and every other signal is absent — the
            # all-absent completion satisfies the remaining factors, so the
            # sample satisfies R and the screening stays sound
            witness = algebra.constrained(encoded).satisfy_one()
            if witness is not None:
                samples.append(_AbsentByDefault(witness))

    key_to_class: Dict[ClockKey, int] = {}
    for clock_class in classes:
        for member in clock_class.members:
            key_to_class[clock_key(member)] = clock_class.index

    # Base (generating) dominance edges, closed by reachability below.
    base_edges: Set[Tuple[int, int]] = set()

    def add_base(above: int, below: int) -> bool:
        if above == below or (above, below) in base_edges:
            return False
        base_edges.add((above, below))
        return True

    # rule 1: x^ determines [x] and [¬x]
    boolean = set(process.boolean_signals())
    for name in process.all_signals():
        if name not in boolean:
            continue
        tick = key_to_class.get(clock_key(ClockOf(name)))
        true_class = key_to_class.get(clock_key(ClockTrue(name)))
        false_class = key_to_class.get(clock_key(ClockFalse(name)))
        if tick is not None and true_class is not None:
            add_base(tick, true_class)
        if tick is not None and false_class is not None:
            add_base(tick, false_class)

    # rule 3: a clock defined by an operation on two determined clocks is determined
    defining_relations: List[Tuple[int, int, int]] = []
    for relation in relations.clock_relations:
        right = relation.right
        if not isinstance(right, ClockBinary):
            continue
        left_class = key_to_class.get(clock_key(relation.left))
        operand_left = key_to_class.get(clock_key(right.left))
        operand_right = key_to_class.get(clock_key(right.right))
        if None in (left_class, operand_left, operand_right):
            continue
        defining_relations.append((left_class, operand_left, operand_right))

    def reachability(edges: Set[Tuple[int, int]]) -> Dict[int, Set[int]]:
        successors: Dict[int, Set[int]] = {clock_class.index: set() for clock_class in classes}
        for above, below in edges:
            successors[above].add(below)
        reachable: Dict[int, Set[int]] = {}
        for clock_class in classes:
            start = clock_class.index
            seen: Set[int] = set()
            stack = list(successors[start])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(successors[node])
            reachable[start] = seen
        return reachable

    while True:
        reachable = reachability(base_edges)
        added = False
        for target, first, second in defining_relations:
            for clock_class in classes:
                candidate = clock_class.index
                dominates_first = candidate == first or first in reachable[candidate]
                dominates_second = candidate == second or second in reachable[candidate]
                if dominates_first and dominates_second and target not in reachable[candidate]:
                    added |= add_base(candidate, target)
        if not added:
            break

    reachable = reachability(base_edges)
    dominance: Set[Tuple[int, int]] = {
        (above, below) for above, belows in reachable.items() for below in belows
    }
    return ClockHierarchy(process, algebra, classes, dominance)
