"""The clock inference system ``P : R`` of Section 3.2.

Every primitive equation contributes clock relations and scheduling
relations:

* delay ``x = y pre v``          : ``x^ = y^`` (no scheduling relation);
* sampling ``x = y when z``      : ``x^ = y^ ∧ [z]`` and ``y →x^ x``;
* merge ``x = y default z``      : ``x^ = y^ ∨ z^``, ``y →y^ x`` and ``z →z^\\y^ x``;
* function ``x = f(y, z)``       : ``x^ = y^ = z^``, ``y →x^ x`` and ``z →x^ x``;
* explicit constraints ``c = e`` are kept as they are.

Constants occurring as operands contribute no clock of their own (a constant
adopts the clock of its context), so a sampling of a constant
``x = v when z`` simply yields ``x^ = [z]``.
"""

from __future__ import annotations

from typing import List

from repro.clocks.relations import TimingRelations, clock_node, signal_node
from repro.lang.ast import ClockBinary, ClockExpressionSyntax, ClockOf, ClockTrue, Const
from repro.lang.normalize import (
    ClockEquation,
    DelayEquation,
    FunctionEquation,
    MergeEquation,
    NormalizedProcess,
    SamplingEquation,
)


def infer_timing_relations(process: NormalizedProcess) -> TimingRelations:
    """Compute the timing relations ``R`` of a normalized process."""
    relations = TimingRelations()
    for equation in process.equations:
        if isinstance(equation, FunctionEquation):
            _infer_function(equation, relations)
        elif isinstance(equation, DelayEquation):
            relations.add_clock_relation(ClockOf(equation.target), ClockOf(equation.source))
        elif isinstance(equation, SamplingEquation):
            _infer_sampling(equation, relations)
        elif isinstance(equation, MergeEquation):
            _infer_merge(equation, relations)
        elif isinstance(equation, ClockEquation):
            relations.add_clock_relation(equation.left, equation.right)
        else:
            raise TypeError(f"unsupported primitive equation: {equation!r}")
    return relations.hide(process.locals)


def _infer_function(equation: FunctionEquation, relations: TimingRelations) -> None:
    """``x = y f z``: synchronize the target with every signal operand."""
    target_clock = ClockOf(equation.target)
    signal_operands = [operand for operand in equation.operands if isinstance(operand, str)]
    for operand in signal_operands:
        relations.add_clock_relation(target_clock, ClockOf(operand))
        relations.add_scheduling_relation(
            signal_node(operand), signal_node(equation.target), target_clock
        )


def _infer_sampling(equation: SamplingEquation, relations: TimingRelations) -> None:
    """``x = y when z``: ``x^ = y^ ∧ [z]`` (or ``[z]`` alone for a constant ``y``)."""
    target_clock = ClockOf(equation.target)
    condition_clock = ClockTrue(equation.condition)
    if isinstance(equation.source, Const):
        relations.add_clock_relation(target_clock, condition_clock)
    else:
        relations.add_clock_relation(
            target_clock, ClockBinary("and", ClockOf(equation.source), condition_clock)
        )
        relations.add_scheduling_relation(
            signal_node(equation.source), signal_node(equation.target), target_clock
        )
    relations.add_scheduling_relation(
        signal_node(equation.condition), signal_node(equation.target), target_clock
    )


def _infer_merge(equation: MergeEquation, relations: TimingRelations) -> None:
    """``x = y default z``: ``x^ = y^ ∨ z^`` with priority scheduling."""
    target_clock = ClockOf(equation.target)
    preferred_clock = ClockOf(equation.preferred)
    alternative_clock = ClockOf(equation.alternative)
    relations.add_clock_relation(
        target_clock, ClockBinary("or", preferred_clock, alternative_clock)
    )
    relations.add_scheduling_relation(
        signal_node(equation.preferred), signal_node(equation.target), preferred_clock
    )
    relations.add_scheduling_relation(
        signal_node(equation.alternative),
        signal_node(equation.target),
        ClockBinary("diff", alternative_clock, preferred_clock),
    )
