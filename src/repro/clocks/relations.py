"""Timing relations: clock equations and scheduling relations.

Section 3.1 of the paper introduces two kinds of relations between signals
and clocks:

* clock relations ``c = e``: the clock ``c`` is present exactly when the
  clock expression ``e`` holds;
* scheduling relations ``a →c b``: when the clock ``c`` is present, the node
  ``b`` (a signal value or a clock) cannot be computed before the node ``a``.

Both are collected in :class:`TimingRelations`, the object produced by the
inference system and consumed by the hierarchy, the disjunctive-form pass,
the scheduling graph and the compilation criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.clocks.expressions import format_clock_expression
from repro.lang.ast import ClockExpressionSyntax, ClockOf


# A node of the scheduling graph: either the value of a signal or its clock.
Node = Tuple[str, str]  # (kind, signal) with kind in {"sig", "clk"}


def signal_node(name: str) -> Node:
    """The node standing for the *value* of signal ``name``."""
    return ("sig", name)


def clock_node(name: str) -> Node:
    """The node standing for the *clock* of signal ``name``."""
    return ("clk", name)


def format_node(node: Node) -> str:
    kind, name = node
    return f"{name}^" if kind == "clk" else name


@dataclass(frozen=True)
class ClockRelation:
    """A clock equation ``left = right`` between two clock expressions."""

    left: ClockExpressionSyntax
    right: ClockExpressionSyntax

    def signals(self) -> Set[str]:
        return set(self.left.free_signals()) | set(self.right.free_signals())

    def __str__(self) -> str:
        return f"{format_clock_expression(self.left)} = {format_clock_expression(self.right)}"


@dataclass(frozen=True)
class SchedulingRelation:
    """A scheduling relation ``source →clock target``."""

    source: Node
    target: Node
    clock: ClockExpressionSyntax

    def signals(self) -> Set[str]:
        return {self.source[1], self.target[1]} | set(self.clock.free_signals())

    def __str__(self) -> str:
        return (
            f"{format_node(self.source)} --[{format_clock_expression(self.clock)}]--> "
            f"{format_node(self.target)}"
        )


@dataclass
class TimingRelations:
    """The timing relations ``R`` of a process: clock and scheduling relations."""

    clock_relations: List[ClockRelation] = field(default_factory=list)
    scheduling_relations: List[SchedulingRelation] = field(default_factory=list)
    hidden_signals: Set[str] = field(default_factory=set)

    # -- construction -------------------------------------------------------
    def add_clock_relation(self, left: ClockExpressionSyntax, right: ClockExpressionSyntax) -> None:
        self.clock_relations.append(ClockRelation(left, right))

    def add_scheduling_relation(
        self, source: Node, target: Node, clock: ClockExpressionSyntax
    ) -> None:
        self.scheduling_relations.append(SchedulingRelation(source, target, clock))

    def compose(self, other: "TimingRelations") -> "TimingRelations":
        """Composition ``R | S``: the union of the two relation sets."""
        return TimingRelations(
            clock_relations=list(self.clock_relations) + list(other.clock_relations),
            scheduling_relations=list(self.scheduling_relations)
            + list(other.scheduling_relations),
            hidden_signals=set(self.hidden_signals) | set(other.hidden_signals),
        )

    def hide(self, names: Iterable[str]) -> "TimingRelations":
        """Restriction ``R / x``: mark signals as hidden (existentially quantified)."""
        return TimingRelations(
            clock_relations=list(self.clock_relations),
            scheduling_relations=list(self.scheduling_relations),
            hidden_signals=set(self.hidden_signals) | set(names),
        )

    # -- queries --------------------------------------------------------------
    def signals(self) -> Set[str]:
        names: Set[str] = set()
        for relation in self.clock_relations:
            names |= relation.signals()
        for relation in self.scheduling_relations:
            names |= relation.signals()
        return names

    def visible_signals(self) -> Set[str]:
        return self.signals() - self.hidden_signals

    def clock_relations_for(self, name: str) -> Iterator[ClockRelation]:
        """Clock relations whose left-hand side is exactly the clock of ``name``."""
        for relation in self.clock_relations:
            if isinstance(relation.left, ClockOf) and relation.left.name == name:
                yield relation

    def __str__(self) -> str:
        lines = ["clock relations:"]
        lines.extend(f"  {relation}" for relation in self.clock_relations)
        lines.append("scheduling relations:")
        lines.extend(f"  {relation}" for relation in self.scheduling_relations)
        if self.hidden_signals:
            lines.append(f"hidden: {', '.join(sorted(self.hidden_signals))}")
        return "\n".join(lines)
