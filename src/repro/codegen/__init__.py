"""Code generation (Sections 3.6 and 5).

* :mod:`repro.codegen.runtime` — simulation runtime: stream-based IO and the
  ``main``-style iterate loop of Section 3.6;
* :mod:`repro.codegen.sequential` — sequential code generation for
  endochronous (hierarchic) processes: a Python step function (compiled and
  executable), a C-like listing mirroring the paper's figures, and the
  scheduled :class:`~repro.codegen.sequential.StepProgram` the execution
  tiers compile from;
* :mod:`repro.codegen.specialized` — the closure-specialized execution tier
  (IO and delay registers bound once per stream) and the per-step-dispatch
  reference interpreter it is benchmarked against;
* :mod:`repro.codegen.batch` — the vectorized fleet runtime: numpy lanes
  stepping thousands of independent deployment instances per call;
* :mod:`repro.codegen.clusters` — grouping of signals by clock class;
* :mod:`repro.codegen.controller` — the compositional scheme of Section 5.2:
  a synthesized controller that schedules separately compiled endochronous
  components and enforces the reported clock constraints by rendez-vous;
* :mod:`repro.codegen.concurrent` — the concurrent variant: one thread per
  component, rendez-vous implemented with barriers.
"""

from repro.codegen.runtime import EndOfStream, StreamIO, RecordingIO, simulate
from repro.codegen.sequential import (
    CompiledProcess,
    CodeGenerationError,
    StepOp,
    StepProgram,
    build_step_program,
    compile_process,
)
from repro.codegen.specialized import (
    InterpretedProcess,
    SpecializedProcess,
    compile_interpreted,
    compile_specialized,
)
from repro.codegen.batch import (
    BatchCompilationError,
    BatchOverflowError,
    BatchProgram,
    FleetResult,
    compile_batch,
)
from repro.codegen.clusters import clock_clusters
from repro.codegen.controller import (
    ClockConstraintSpec,
    ControlledComposition,
    synthesize_controller,
)
from repro.codegen.concurrent import ConcurrentComposition, run_concurrent

__all__ = [
    "EndOfStream",
    "StreamIO",
    "RecordingIO",
    "simulate",
    "CompiledProcess",
    "CodeGenerationError",
    "StepOp",
    "StepProgram",
    "build_step_program",
    "compile_process",
    "InterpretedProcess",
    "SpecializedProcess",
    "compile_interpreted",
    "compile_specialized",
    "BatchCompilationError",
    "BatchOverflowError",
    "BatchProgram",
    "FleetResult",
    "compile_batch",
    "clock_clusters",
    "ClockConstraintSpec",
    "ControlledComposition",
    "synthesize_controller",
    "ConcurrentComposition",
    "run_concurrent",
]
