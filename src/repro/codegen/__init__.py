"""Code generation (Sections 3.6 and 5).

* :mod:`repro.codegen.runtime` — simulation runtime: stream-based IO and the
  ``main``-style iterate loop of Section 3.6;
* :mod:`repro.codegen.sequential` — sequential code generation for
  endochronous (hierarchic) processes: a Python step function (compiled and
  executable) and a C-like listing mirroring the paper's figures;
* :mod:`repro.codegen.clusters` — grouping of signals by clock class;
* :mod:`repro.codegen.controller` — the compositional scheme of Section 5.2:
  a synthesized controller that schedules separately compiled endochronous
  components and enforces the reported clock constraints by rendez-vous;
* :mod:`repro.codegen.concurrent` — the concurrent variant: one thread per
  component, rendez-vous implemented with barriers.
"""

from repro.codegen.runtime import EndOfStream, StreamIO, RecordingIO, simulate
from repro.codegen.sequential import CompiledProcess, CodeGenerationError, compile_process
from repro.codegen.clusters import clock_clusters
from repro.codegen.controller import (
    ClockConstraintSpec,
    ControlledComposition,
    synthesize_controller,
)
from repro.codegen.concurrent import ConcurrentComposition, run_concurrent

__all__ = [
    "EndOfStream",
    "StreamIO",
    "RecordingIO",
    "simulate",
    "CompiledProcess",
    "CodeGenerationError",
    "compile_process",
    "clock_clusters",
    "ClockConstraintSpec",
    "ControlledComposition",
    "synthesize_controller",
    "ConcurrentComposition",
    "run_concurrent",
]
