"""Vectorized batch execution: step thousands of deployment instances per call.

A deployed controller is rarely alone — the fleet scenario runs the *same*
generated step function over thousands of independent input streams.  This
module compiles a :class:`~repro.codegen.sequential.StepProgram` into a
numpy kernel whose variables are arrays with one lane per instance: a
presence variable becomes a boolean mask, a value variable a ``bool_`` or
``int64`` array, an input stream a padded ``(instances, width)`` matrix with
per-lane cursors, and one global iteration advances every live lane by one
reaction.  This mirrors the hybrid design of ``repro.bdd.backend``'s
``ArrayBackend``: a vectorized fast path over the boolean/numeric fragment,
with the scalar tier as the exact fallback.

Semantics are *lane-identical* to scalar stepping:

* A lane whose input stream runs dry mid-step dies exactly like the scalar
  ``EndOfStream``: earlier reads of that step are consumed, later reads,
  writes and register updates are suppressed, and the step is not counted.
* Register updates preserve the pre-step view that delay (``pre``) readers
  alias: an update mutates its store in place only when a conflict analysis
  proves no later update still reads it through a delay alias, and rebinds
  to a fresh array (``np.where``) otherwise — so chained ``pre`` equations
  see pre-step values, as in the generated sequential code.
* Numeric lanes run in ``int64``.  The vectorizable fragment excludes ``*``
  and ``/`` (see ``_ARRAY_OPERATORS``), so magnitudes grow at most by one
  addition per operation; a periodic register check keeps every lane below
  a chain-depth-scaled bound under which no int64 wrap is possible between
  checks, and the run aborts with :class:`BatchOverflowError` *before* a
  lane can wrap, letting the caller redo the batch on the scalar tier.

Designs outside the fragment (``any``-typed signals, excluded operators,
oversized constants) raise :class:`BatchCompilationError` at compile time;
individual instances outside it (non-``bool``/``int`` stream values,
magnitudes beyond ``2**31``) are detected per lane by
:meth:`BatchProgram.lane_vectorizable` so the deployment layer can route
just those lanes to the scalar fallback.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

try:  # numpy backs the vectorized path; without it every lane falls back
    import numpy as _np
except Exception:  # pragma: no cover - numpy is part of the toolchain
    _np = None

from repro.lang.ast import Const
from repro.lang.normalize import NormalizedProcess
from repro.codegen.sequential import StepProgram, build_step_program
from repro.properties.compilable import ProcessAnalysis

#: per-lane bound on input-stream and initial-register magnitudes
LANE_LIMIT = 2**31
#: mid-run growth bound on registers: far enough below int64 that the kernel
#: can run many steps between checks without any intermediate wrapping
GUARD_LIMIT = 2**47


#: a presence expression that is a bare reference to another presence variable
_BARE_PRESENCE = re.compile(r"p_\w+")


class BatchCompilationError(Exception):
    """The design falls outside the vectorizable fragment."""


class BatchOverflowError(Exception):
    """A numeric lane approached the int64 range; redo the batch scalar."""


@dataclass
class FleetResult:
    """The outcome of running a batch of independent deployment instances."""

    outputs: List[Dict[str, List[object]]]
    steps: List[int]
    vectorized: int
    fallback: int

    @property
    def instances(self) -> int:
        return len(self.outputs)


def numpy_available() -> bool:
    return _np is not None


def _signal_dtypes(program: StepProgram) -> Dict[str, str]:
    """Map every signal to ``"bool"``/``"num"``; raise outside the fragment."""
    types = program.types
    dtypes: Dict[str, str] = {}
    for name in program.process.all_signals():
        kind = types.get(name, "any")
        if kind not in ("bool", "num"):
            raise BatchCompilationError(
                f"signal {name!r} has inferred type {kind!r}; the batch runtime "
                "vectorizes only the bool/int64 fragment"
            )
        dtypes[name] = kind
    for master in program.master_clock_inputs:
        dtypes[master] = "bool"
    return dtypes


def _check_fragment(program: StepProgram, dtypes: Mapping[str, str]) -> None:
    for op in program.ops:
        if op.kind in ("presence", "compute") and op.array_expr is None:
            raise BatchCompilationError(
                f"operation on {op.target!r} has no elementwise rendering "
                "(operator outside the vectorizable fragment)"
            )
    for equation in program.process.equations:
        for operand in getattr(equation, "operands", ()) or ():
            _check_constant(operand)
        _check_constant(getattr(equation, "source", None))
    for name, value in program.initial_state.items():
        kind = dtypes.get(name, "any")
        if kind == "bool":
            if type(value) is not bool:
                raise BatchCompilationError(
                    f"initial value of register {name!r} is not a bool: {value!r}"
                )
        elif type(value) is not int or abs(value) > LANE_LIMIT:
            raise BatchCompilationError(
                f"initial value of register {name!r} is outside the int64 lane "
                f"fragment: {value!r}"
            )


def _check_constant(operand: object) -> None:
    if not isinstance(operand, Const):
        return
    value = operand.value
    if type(value) is bool:
        return
    if type(value) is not int or abs(value) > LANE_LIMIT:
        raise BatchCompilationError(
            f"constant {value!r} is outside the int64 lane fragment"
        )


def render_batch_source(program: StepProgram, dtypes: Mapping[str, str]) -> str:
    """The Python source of the vectorized fleet kernel for one program.

    The generated kernel is tuned for moderate lane counts (~1k), where ufunc
    dispatch overhead dominates: identical presence expressions and sink masks
    are computed once per step, gathers go through flat ``take``-style
    indexing, register updates mutate in place unless a later update still
    reads the register through a delay alias, emitted outputs land in
    preallocated per-step matrices, and the overflow invariant is sampled
    every ``_GK`` steps instead of per operation (see :class:`BatchProgram`
    for the bound).
    """
    name = program.process.name
    registers = sorted(program.initial_state)
    outputs = list(program.outputs)
    ops = program.ops
    presence_exprs: Dict[str, str] = {
        op.target: op.array_expr or "" for op in ops if op.kind == "presence"
    }
    delay_register: Dict[str, str] = {
        op.target: op.register for op in ops if op.kind == "delay"
    }
    # reverse scan: an update may mutate its register in place (copyto) unless
    # a later update still reads the pre-step value through a delay alias, in
    # which case it must rebind to a fresh array (np.where) instead
    update_ops = [op for op in ops if op.kind == "update"]
    rebind: set = set()
    later_delay_sources: set = set()
    for op in reversed(update_ops):
        if op.register in later_delay_sources:
            rebind.add(op.register)
        aliased = delay_register.get(op.source or "")
        if aliased is not None:
            later_delay_sources.add(aliased)
    guarded = sum(1 for op in ops if op.kind == "compute" and op.guard)
    numeric_registers = [r for r in registers if dtypes[r] == "num"]
    always_reads = [
        op.target
        for op in ops
        if op.kind == "master_read"
        or (op.kind == "read" and presence_exprs.get(op.target) == "_ones")
    ]

    lines: List[str] = [f"def {name}_batch(_streams, _n, _max_steps):"]
    body: List[str] = [
        "_alive = _np.ones(_n, _np.bool_)",
        "_ones = _np.ones(_n, _np.bool_)",
        "_zeros = _np.zeros(_n, _np.bool_)",
        "_steps = _np.zeros(_n, _np.int64)",
    ]
    for signal in program.inputs:
        body.extend(
            [
                f"_d_{signal}, _l_{signal} = _streams[{signal!r}]",
                f"_c_{signal} = _np.zeros(_n, _np.int64)",
                f"_wm_{signal} = _d_{signal}.shape[1] - 1",
                f"_f_{signal} = _d_{signal}.ravel()",
                f"_o_{signal} = _np.arange(_n) * _d_{signal}.shape[1]",
            ]
        )
    # Non-rebind registers live as rows of one matrix per dtype: updates
    # mutate the rows in place through the `st_*` views, so the overflow
    # guard is a single contiguous reduction instead of a stack of copies.
    matrix_numeric = [
        r for r in numeric_registers if r not in rebind
    ]
    matrix_bool = [
        r for r in registers if dtypes[r] == "bool" and r not in rebind
    ]
    for rows, matrix, dtype in (
        (matrix_numeric, "_stn", "_np.int64"),
        (matrix_bool, "_stb", "_np.bool_"),
    ):
        if not rows:
            continue
        body.append(f"{matrix} = _np.empty(({len(rows)}, _n), {dtype})")
        for index, register in enumerate(rows):
            body.append(f"{matrix}[{index}] = {program.initial_state[register]!r}")
            body.append(f"st_{register} = {matrix}[{index}]")
    for register in sorted(rebind):
        dtype = "_np.bool_" if dtypes[register] == "bool" else "_np.int64"
        initial = repr(program.initial_state[register])
        body.append(f"st_{register} = _np.full(_n, {initial}, {dtype})")
    for signal in sorted(program.process.all_signals()):
        dtype = "_np.bool_" if dtypes[signal] == "bool" else "_np.int64"
        body.append(f"v_{signal} = _np.zeros(_n, {dtype})")
    # an always-firing read caps the run at the longest stream + 1 steps, so
    # the emit matrices can usually be sized once; otherwise start small and
    # double on demand inside the loop
    if always_reads:
        body.append(
            f"_cap = min(_max_steps, int(_l_{always_reads[0]}.max()) + 1 if _n else 1)"
        )
    else:
        body.append("_cap = min(_max_steps, 64)")
    for output in outputs:
        dtype = "_np.bool_" if dtypes[output] == "bool" else "_np.int64"
        body.extend(
            [
                f"_wq_{output} = _np.zeros((_cap, _n), _np.bool_)",
                f"_wv_{output} = _np.zeros((_cap, _n), {dtype})",
            ]
        )
    body.append("_t = 0")
    body.append("while _t < _max_steps and _alive.any():")
    step: List[str] = []
    if outputs:
        step.extend(
            [
                "if _t == _cap:",
                "    _more = max(_cap, 1)",
                "    if _cap + _more > _max_steps:",
                "        _more = _max_steps - _cap",
            ]
        )
        for output in outputs:
            step.extend(
                [
                    f"    _wq_{output} = _np.concatenate((_wq_{output}, _np.zeros((_more, _n), _wq_{output}.dtype)))",
                    f"    _wv_{output} = _np.concatenate((_wv_{output}, _np.zeros((_more, _n), _wv_{output}.dtype)))",
                ]
            )
        step.append("    _cap += _more")
    # Within one step every presence/value variable is assigned exactly once
    # (the program is scheduled SSA per reaction), so identical presence
    # expressions can share one computation — designs whose signals share a
    # clock collapse to a single mask per clock class.
    presence_canonical: Dict[str, str] = {}
    presence_cache: Dict[str, str] = {}
    # Writes and updates all run after the last read of the step, so `_alive`
    # is stable there and their `p & _alive` masks can be shared as well.
    mask_cache: Dict[str, str] = {}
    saturated_cache: Dict[str, str] = {}

    def _sink_mask(target: str) -> str:
        presence = presence_canonical.get(f"p_{target}", f"p_{target}")
        if presence == "_ones":
            return "_alive"
        if presence == "_zeros":
            return "_zeros"
        cached = mask_cache.get(presence)
        if cached is not None:
            return cached
        mask = f"_m{len(mask_cache)}"
        mask_cache[presence] = mask
        step.append(f"{mask} = {presence} & _alive")
        return mask

    def _saturated(mask: str) -> str:
        # one `.all()` per distinct mask lets every update on that mask drop
        # its `where=` when the whole fleet fires (the common steady state)
        cached = saturated_cache.get(mask)
        if cached is not None:
            return cached
        flag = f"_a{len(saturated_cache)}"
        saturated_cache[mask] = flag
        step.append(f"{flag} = {mask}.all()")
        return flag

    for op in ops:
        if op.kind in ("master_read", "read"):
            target = op.target
            gather = f"v_{target} = _f_{target}[_np.minimum(_c_{target}, _wm_{target}) + _o_{target}]"
            # a read whose presence is the root activation (or a master read)
            # fires on every live lane: the miss set is exactly the lanes whose
            # stream ran dry, so the template collapses to an in-place cull
            if op.kind == "master_read" or presence_exprs.get(target) == "_ones":
                step.extend(
                    [
                        f"_alive &= _c_{target} < _l_{target}",
                        gather,
                        f"_c_{target} += _alive",
                    ]
                )
            else:
                step.extend(
                    [
                        f"_need = p_{target} & _alive",
                        f"_ok = _c_{target} < _l_{target}",
                        "_alive &= _ok | ~_need",
                        "_need &= _ok",
                        gather,
                        f"_c_{target} += _need",
                    ]
                )
        elif op.kind == "presence":
            expr = op.array_expr or ""
            target_var = f"p_{op.target}"
            if expr in ("_ones", "_zeros") or _BARE_PRESENCE.fullmatch(expr):
                # a bare alias of another presence variable: record the root so
                # every sink sharing this clock class shares one mask
                presence_canonical[target_var] = presence_canonical.get(expr, expr)
                step.append(f"{target_var} = {expr}")
                continue
            shared = presence_cache.get(expr)
            if shared is None:
                presence_cache[expr] = target_var
                step.append(f"{target_var} = {expr}")
            else:
                presence_canonical[target_var] = presence_canonical.get(shared, shared)
                step.append(f"{target_var} = {shared}")
        elif op.kind == "delay":
            # plain alias: the pre-step view survives because any update that
            # a later delay reader depends on rebinds instead of mutating
            step.append(f"v_{op.target} = st_{op.register}")
        elif op.kind == "compute":
            step.append(f"v_{op.target} = {op.array_expr}")
        elif op.kind == "write":
            mask = _sink_mask(op.target)
            step.extend(
                [
                    f"_wq_{op.target}[_t] = {mask}",
                    f"_wv_{op.target}[_t] = v_{op.target}",
                ]
            )
        elif op.kind == "update":
            mask = _sink_mask(op.source or "")
            if mask == "_zeros":
                continue  # this clock never fires: the register keeps its value
            if op.register in rebind:
                step.append(
                    f"st_{op.register} = _np.where({mask}, v_{op.source}, st_{op.register})"
                )
            else:
                flag = _saturated(mask)
                step.extend(
                    [
                        f"if {flag}:",
                        f"    _np.copyto(st_{op.register}, v_{op.source})",
                        "else:",
                        f"    _np.copyto(st_{op.register}, v_{op.source}, where={mask})",
                    ]
                )
        else:  # pragma: no cover - exhaustive over StepOp kinds
            raise BatchCompilationError(f"unknown step op kind {op.kind!r}")
    if guarded and numeric_registers:
        # sampled invariant check: registers are the only cross-step carriers,
        # and below _GUARD no chain of +/- ops can wrap int64 within _GK steps
        # (the bound is computed in BatchProgram), so checking every _GK steps
        # is as sound as guarding every operation; the matrix layout makes it
        # one contiguous reduction
        terms = []
        if matrix_numeric:
            terms.append("_np.abs(_stn).max() > _GUARD")
        for register in sorted(set(numeric_registers) & rebind):
            terms.append(f"_np.abs(st_{register}).max() > _GUARD")
        step.append("if _t % _GK == 0:")
        step.append(f"    if {' or '.join(terms)}:")
        step.append("        raise _Overflow()")
    step.extend(["_steps += _alive", "_t += 1"])
    body.extend(f"    {line}" for line in step)
    emits = ", ".join(
        f"{output!r}: (_wq_{output}, _wv_{output})" for output in outputs
    )
    body.append(f"return _steps, _t, {{{emits}}}")
    lines.extend(f"    {line}" for line in body)
    return "\n".join(lines) + "\n"


class BatchProgram:
    """An exec-compiled numpy kernel stepping many instances per iteration."""

    def __init__(self, program: StepProgram):
        if _np is None:
            raise BatchCompilationError("numpy is not available")
        self.program = program
        self.process: NormalizedProcess = program.process
        self.dtypes = _signal_dtypes(program)
        _check_fragment(program, self.dtypes)
        self.python_source = render_batch_source(program, self.dtypes)
        guarded = sum(1 for op in program.ops if op.kind == "compute" and op.guard)
        # Overflow invariant: with every register at most GUARD_LIMIT at a
        # check, one step grows magnitudes by at most a factor of
        # (guarded + 1), so after K unchecked steps they stay below
        # GUARD_LIMIT * (guarded + 1)**K — pick the largest K keeping that
        # product inside int64 and sample the check every K steps.
        self.guard_limit = GUARD_LIMIT
        interval = 1
        if guarded:
            growth = guarded + 1
            while (
                interval < 64
                and self.guard_limit * growth ** (interval + 1) <= 2**63 - 1
            ):
                interval += 1
        self.guard_interval = interval
        namespace: Dict[str, object] = {
            "_np": _np,
            "_where": _np.where,
            "_GUARD": self.guard_limit,
            "_GK": self.guard_interval,
            "_Overflow": BatchOverflowError,
        }
        exec(
            compile(
                self.python_source,
                f"<batch {program.process.name}_batch>",
                "exec",
            ),
            namespace,
        )
        self._kernel = namespace[f"{program.process.name}_batch"]

    @property
    def inputs(self) -> Tuple[str, ...]:
        return self.program.inputs

    @property
    def outputs(self) -> Tuple[str, ...]:
        return self.program.outputs

    # -- lane eligibility ---------------------------------------------------------------
    def lane_vectorizable(self, inputs: Mapping[str, Sequence[object]]) -> bool:
        """True when one instance's input streams fit the bool/int64 lanes."""
        for signal in self.program.inputs:
            values = inputs.get(signal, ())
            kinds = set(map(type, values))  # C-level scan; bool is not int here
            if self.dtypes.get(signal, "bool") == "bool":
                if kinds - {bool}:
                    return False
            else:
                if kinds - {int}:
                    return False
                if values and not -LANE_LIMIT <= min(values) <= max(values) <= LANE_LIMIT:
                    return False
        return True

    def stage_fleet(
        self, instances: Sequence[Mapping[str, Sequence[object]]]
    ) -> Optional[Dict[str, Tuple[object, object]]]:
        """Stage the whole fleet in one pass; ``None`` if any lane is ineligible.

        Eligibility and staging are one numpy conversion: a boolean stream's
        matrix keeps dtype ``bool_`` only when every element is a genuine
        bool, and numeric bounds are one vector reduction over the staged
        matrix — so an all-eligible fleet (the common case) never pays a
        per-element Python scan beyond the int-type check on numeric streams.
        """
        n = len(instances)
        streams: Dict[str, Tuple[object, object]] = {}
        for signal in self.program.inputs:
            kind = self.dtypes.get(signal, "bool")
            lanes = [instance.get(signal, ()) for instance in instances]
            if kind == "num":
                for lane in lanes:
                    if set(map(type, lane)) - {int}:
                        return None
            sizes = list(map(len, lanes))
            longest = max(sizes) if sizes else 0
            width = max(1, longest)
            lengths = _np.array(sizes, _np.int64)
            dtype = _np.bool_ if kind == "bool" else _np.int64
            try:
                if longest == width and min(sizes) == longest:
                    data = (
                        _np.array(lanes)
                        if kind == "bool"
                        else _np.array(lanes, _np.int64)
                    )
                    if kind == "bool" and data.dtype != _np.bool_:
                        return None
                else:
                    data = _np.zeros((n, width), dtype)
                    for row, lane in enumerate(lanes):
                        if sizes[row]:
                            row_data = _np.array(lane)
                            if kind == "bool" and row_data.dtype != _np.bool_:
                                return None
                            data[row, : sizes[row]] = row_data
            except (OverflowError, ValueError, TypeError):
                return None
            if kind == "num" and data.size and _np.abs(data).max() > LANE_LIMIT:
                return None
            streams[signal] = (data, lengths)
        return streams

    # -- execution ----------------------------------------------------------------------
    def run_many(
        self,
        instances: Sequence[Mapping[str, Sequence[object]]],
        max_steps: int = 1_000_000,
    ) -> Tuple[List[int], List[Dict[str, List[object]]]]:
        """Run every instance to stream exhaustion; returns (steps, outputs).

        Raises :class:`BatchOverflowError` when a numeric lane approaches the
        int64 range — callers should then redo the batch on the scalar tier.
        """
        n = len(instances)
        if n == 0:
            return [], []
        streams: Dict[str, Tuple[object, object]] = {}
        for signal in self.program.inputs:
            kind = self.dtypes.get(signal, "bool")
            dtype = _np.bool_ if kind == "bool" else _np.int64
            lanes = [instance.get(signal, ()) for instance in instances]
            sizes = list(map(len, lanes))
            longest = max(sizes)
            width = max(1, longest)
            lengths = _np.array(sizes, _np.int64)
            if longest == width and min(sizes) == longest:
                # rectangular fleet: one C-level conversion for the whole stream
                data = _np.array(lanes, dtype)
            else:
                data = _np.zeros((n, width), dtype)
                for row, lane in enumerate(lanes):
                    if sizes[row]:
                        data[row, : sizes[row]] = lane
            streams[signal] = (data, lengths)
        return self.run_staged(streams, n, max_steps)

    def run_staged(
        self,
        streams: Mapping[str, Tuple[object, object]],
        n: int,
        max_steps: int = 1_000_000,
    ) -> Tuple[List[int], List[Dict[str, List[object]]]]:
        """Run a fleet already staged by :meth:`stage_fleet`."""
        steps_array, total_steps, emits = self._kernel(streams, n, max_steps)
        outputs: List[Dict[str, List[object]]] = [
            {output: [] for output in self.program.outputs} for _ in range(n)
        ]
        for output in self.program.outputs:
            fired, values = emits[output]
            fired = fired[:total_steps]
            if fired.all():
                # every lane emitted on every step: one nested tolist gives
                # each lane's list directly, with no per-lane slicing
                nested = values[:total_steps].T.tolist()
                for row in range(n):
                    outputs[row][output] = nested[row]
                continue
            if not fired.any():
                continue
            # transpose to lane-major: boolean indexing then walks each lane's
            # emissions in step order, giving one flat list sliced per lane
            flat = values[:total_steps].T[fired.T].tolist()
            offsets = _np.cumsum(fired.sum(axis=0)).tolist()
            start = 0
            for row in range(n):
                end = offsets[row]
                if end != start:
                    outputs[row][output] = flat[start:end]
                start = end
        return steps_array.tolist(), outputs


def compile_batch(
    process: Union[NormalizedProcess, ProcessAnalysis, StepProgram],
    master_clocks: bool = False,
    check_compilable: bool = True,
) -> BatchProgram:
    """Compile a process (or a prebuilt step program) to a fleet kernel."""
    if isinstance(process, StepProgram):
        return BatchProgram(process)
    program = build_step_program(process, master_clocks, check_compilable)
    return BatchProgram(program)
