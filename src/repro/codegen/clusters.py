"""Clustering of signals by clock equivalence class.

The sequential code of Section 3.6 is structured in blocks, one per clock
equivalence class of the hierarchy (the buffer's three classes become the
three blocks of ``buffer_iterate``).  :func:`clock_clusters` computes that
grouping from a :class:`~repro.properties.compilable.ProcessAnalysis` and is
used by the code generators to order and annotate the emitted code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.properties.compilable import ProcessAnalysis


@dataclass
class ClockCluster:
    """One block of computations: the signals sharing a clock class."""

    class_index: int
    description: str
    signals: List[str] = field(default_factory=list)
    depth: int = 0

    def __str__(self) -> str:
        return f"[{self.description}] {{{', '.join(self.signals)}}}"


def clock_clusters(analysis: ProcessAnalysis) -> List[ClockCluster]:
    """The signals of the process grouped by clock class, root classes first."""
    hierarchy = analysis.hierarchy
    parents = hierarchy.parent_map()

    def depth_of(index: int) -> int:
        depth = 0
        current: Optional[int] = index
        while parents.get(current) is not None:
            depth += 1
            current = parents[current]
        return depth

    clusters: List[ClockCluster] = []
    for clock_class in hierarchy.classes:
        signals = clock_class.signal_clocks()
        if not signals:
            continue
        clusters.append(
            ClockCluster(
                class_index=clock_class.index,
                description=clock_class.describe(),
                signals=signals,
                depth=depth_of(clock_class.index),
            )
        )
    clusters.sort(key=lambda cluster: (cluster.depth, cluster.class_index))
    return clusters
