"""Concurrent code generation: one thread per component, barrier rendez-vous.

Section 5.2 ends with the concurrent variant of the compositional scheme: the
producer and the consumer are compiled separately, run in their own threads,
and the reported clock constraint (``[¬a] = [b]``) is implemented by a pair
of barriers protecting the shared variable ``x`` — the Python equivalent of
the paper's ``pthread_barrier_wait(begin_RDV)`` / ``(end_RDV)`` code.

The scheduling decisions are identical to those of the sequential
:class:`~repro.codegen.controller.ControlledComposition`; only the execution
vehicle changes (threads and barriers instead of a sequential controller), so
both schemes produce the same flows — which is what weak isochrony promises.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.codegen.controller import ClockConstraintSpec, ControlledComposition
from repro.codegen.runtime import EndOfStream, StreamIO
from repro.codegen.sequential import CompiledProcess


class _ThreadIO:
    """Per-thread IO: private input streams, shared store guarded by barriers."""

    def __init__(
        self,
        inputs: Mapping[str, Sequence[object]],
        shared_signals: Set[str],
        shared_store: Dict[str, object],
        outputs: Dict[str, List[object]],
        lock: threading.Lock,
    ):
        self._streams = {name: list(values) for name, values in inputs.items()}
        self._cursor = {name: 0 for name in inputs}
        self._shared_signals = shared_signals
        self._shared_store = shared_store
        self._outputs = outputs
        self._lock = lock

    def read(self, name: str) -> object:
        if name in self._shared_signals:
            if name not in self._shared_store:
                raise EndOfStream(name)
            return self._shared_store[name]
        stream = self._streams.get(name)
        if stream is None or self._cursor[name] >= len(stream):
            raise EndOfStream(name)
        value = stream[self._cursor[name]]
        self._cursor[name] += 1
        return value

    def write(self, name: str, value: object) -> None:
        if name in self._shared_signals:
            self._shared_store[name] = value
            return
        with self._lock:
            self._outputs.setdefault(name, []).append(value)


@dataclass
class ConcurrentComposition:
    """Separately compiled components executed by threads with barrier rendez-vous."""

    components: Sequence[CompiledProcess]
    constraints: Sequence[ClockConstraintSpec]
    max_steps: int = 10_000

    def __post_init__(self) -> None:
        self._shared_signals = ControlledComposition._compute_shared_signals(self.components)

    def run(self, inputs: Mapping[str, Sequence[object]]) -> Dict[str, List[object]]:
        """Run every component in its own thread until its inputs are exhausted.

        Returns the recorded output flows.  Rendez-vous points are realized by
        a begin/end barrier pair per constraint: the producing side writes the
        shared value between the two barriers, the consuming side reads it.
        """
        outputs: Dict[str, List[object]] = {}
        shared_store: Dict[str, object] = {}
        lock = threading.Lock()
        barriers: Dict[int, Tuple[threading.Barrier, threading.Barrier]] = {}
        for index, _constraint in enumerate(self.constraints):
            barriers[index] = (threading.Barrier(2), threading.Barrier(2))

        errors: List[BaseException] = []

        def run_component(compiled: CompiledProcess) -> None:
            component_inputs = {
                name: inputs.get(name, ())
                for name in compiled.process.inputs
                if name not in self._shared_signals
            }
            io = _ThreadIO(component_inputs, self._shared_signals, shared_store, outputs, lock)
            relevant = [
                (index, constraint.literal_for(compiled.process.name))
                for index, constraint in enumerate(self.constraints)
                if constraint.literal_for(compiled.process.name) is not None
            ]
            # one persistent wrapper per thread: a stable IO identity keeps
            # the specialized tier's bound step closure valid across steps
            wrapped = _PrefetchedIO({}, io)
            try:
                for _ in range(self.max_steps):
                    peeked: Dict[str, object] = {}
                    for name in component_inputs:
                        try:
                            peeked[name] = io.read(name)
                        except EndOfStream:
                            return
                    synchronized = [
                        index
                        for index, literal in relevant
                        if literal is not None
                        and literal.signal in peeked
                        and literal.holds(peeked[literal.signal])
                    ]
                    # The writing side of the shared store steps between the two
                    # barriers; the reading side steps after the end barrier, so
                    # the shared value is always produced before it is consumed.
                    produces_shared = bool(
                        set(compiled.process.outputs) & self._shared_signals
                    )
                    for index in synchronized:
                        barriers[index][0].wait(timeout=5.0)
                    wrapped.refill(peeked)
                    if produces_shared or not synchronized:
                        if not compiled.step(wrapped):
                            return
                        for index in synchronized:
                            barriers[index][1].wait(timeout=5.0)
                    else:
                        for index in synchronized:
                            barriers[index][1].wait(timeout=5.0)
                        if not compiled.step(wrapped):
                            return
            except threading.BrokenBarrierError:
                return
            except BaseException as error:  # pragma: no cover - surfaced to the caller
                errors.append(error)

        threads = [
            threading.Thread(target=run_component, args=(compiled,), daemon=True)
            for compiled in self.components
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        for index in barriers:
            barriers[index][0].abort()
            barriers[index][1].abort()
        if errors:
            raise errors[0]
        return outputs


class _PrefetchedIO:
    """Serve values already read during constraint evaluation, then delegate.

    Persistent per thread and :meth:`refill`-ed each step, so the specialized
    execution tier binds it once.
    """

    def __init__(self, prefetched: Dict[str, object], inner: _ThreadIO):
        self._prefetched = dict(prefetched)
        self._inner = inner

    def refill(self, prefetched: Dict[str, object]) -> None:
        self._prefetched = dict(prefetched)

    def read(self, name: str) -> object:
        if name in self._prefetched:
            return self._prefetched.pop(name)
        return self._inner.read(name)

    def write(self, name: str, value: object) -> None:
        self._inner.write(name, value)


def run_concurrent(
    components: Sequence[CompiledProcess],
    constraints: Sequence[ClockConstraintSpec],
    inputs: Mapping[str, Sequence[object]],
    max_steps: int = 10_000,
) -> Dict[str, List[object]]:
    """Convenience wrapper: build a :class:`ConcurrentComposition` and run it."""
    return ConcurrentComposition(components, constraints, max_steps).run(inputs)
