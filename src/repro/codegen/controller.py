"""Controller synthesis: the compositional code generation scheme of Section 5.2.

Given separately compiled endochronous components and the clock constraints
reported by the clock calculus on their composition (for the producer /
consumer pair: ``[¬a] = [b]``), the synthesized controller schedules the
components so that:

* a component whose current step does not involve a constrained clock runs
  freely (no synchronization is imposed on ``a`` or ``b`` alone);
* a component that reaches a constrained clock *suspends* (its freshly read
  input is kept pending and no new input is read) until every other party of
  the constraint has reached the matching clock;
* when all parties have arrived the rendez-vous fires: the suspended steps
  execute in dependency order and the shared signals flow from producers to
  consumers within the same global step.

This reproduces the behaviour of the generated ``main_iterate`` listing of
the paper without adding any master clock to the interface: the interface of
the controlled composition is the union of the component interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.codegen.runtime import EndOfStream, StreamIO
from repro.codegen.sequential import CompiledProcess
from repro.lang.ast import ClockExpressionSyntax, ClockFalse, ClockOf, ClockTrue
from repro.properties.composition import CompositionVerdict


@dataclass(frozen=True)
class ClockLiteral:
    """A sampled clock ``[x]`` / ``[¬x]`` on an input signal of one component."""

    component: str
    signal: str
    when_true: bool

    def holds(self, value: object) -> bool:
        return bool(value) if self.when_true else not bool(value)

    def __str__(self) -> str:
        return f"[{'' if self.when_true else '¬'}{self.signal}]@{self.component}"


@dataclass
class ClockConstraintSpec:
    """One reported clock constraint between two components."""

    left: ClockLiteral
    right: ClockLiteral

    def parties(self) -> Tuple[str, str]:
        return (self.left.component, self.right.component)

    def literal_for(self, component: str) -> Optional[ClockLiteral]:
        if self.left.component == component:
            return self.left
        if self.right.component == component:
            return self.right
        return None

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


class _ComponentIO:
    """IO adapter serving a component from pre-read inputs and shared values.

    The adapter is persistent: one instance per component lives across global
    steps and is :meth:`rebind`-ed with the step's fresh inputs.  A stable IO
    identity lets the specialized execution tier
    (:class:`~repro.codegen.specialized.SpecializedProcess`) keep its bound
    step closure across steps instead of recompiling the binding each time.
    """

    def __init__(
        self,
        external: Mapping[str, object],
        shared_in: Mapping[str, object],
        outer: StreamIO,
        shared_outputs: Set[str],
        shared_store: Dict[str, object],
    ):
        self._external = dict(external)
        self._shared_in = dict(shared_in)
        self._outer = outer
        self._shared_outputs = shared_outputs
        self._shared_store = shared_store

    def rebind(
        self,
        external: Mapping[str, object],
        shared_in: Mapping[str, object],
        outer: StreamIO,
    ) -> None:
        """Point the adapter at this step's values, keeping its identity."""
        self._external = dict(external)
        self._shared_in = dict(shared_in)
        self._outer = outer

    def read(self, name: str) -> object:
        if name in self._external:
            return self._external[name]
        if name in self._shared_in:
            return self._shared_in[name]
        raise EndOfStream(name)

    def write(self, name: str, value: object) -> None:
        if name in self._shared_outputs:
            self._shared_store[name] = value
        else:
            self._outer.write(name, value)


@dataclass
class _ComponentState:
    """Scheduling state of one component inside the controlled composition."""

    compiled: CompiledProcess
    pending_inputs: Dict[str, object] = field(default_factory=dict)
    arrived: Dict[int, bool] = field(default_factory=dict)  # constraint index -> waiting
    io: Optional[_ComponentIO] = None  # persistent adapter, rebound per step


class ControlledComposition:
    """Separately compiled components scheduled by a synthesized controller."""

    def __init__(
        self,
        components: Sequence[CompiledProcess],
        constraints: Sequence[ClockConstraintSpec],
    ):
        self.components: Dict[str, _ComponentState] = {
            compiled.process.name: _ComponentState(compiled) for compiled in components
        }
        self.constraints = list(constraints)
        self._order = self._dependency_order(components)
        self._shared_signals = self._compute_shared_signals(components)
        self._shared_store: Dict[str, object] = {}
        for state in self.components.values():
            for index, constraint in enumerate(self.constraints):
                if constraint.literal_for(state.compiled.process.name) is not None:
                    state.arrived[index] = False

    # -- static structure -------------------------------------------------------------
    @staticmethod
    def _compute_shared_signals(components: Sequence[CompiledProcess]) -> Set[str]:
        produced: Set[str] = set()
        consumed: Set[str] = set()
        for compiled in components:
            produced.update(compiled.process.outputs)
            consumed.update(compiled.process.inputs)
        return produced & consumed

    @staticmethod
    def _dependency_order(components: Sequence[CompiledProcess]) -> List[str]:
        """Producers of shared signals before their consumers (topological order)."""
        produced_by: Dict[str, str] = {}
        for compiled in components:
            for name in compiled.process.outputs:
                produced_by[name] = compiled.process.name
        dependencies: Dict[str, Set[str]] = {c.process.name: set() for c in components}
        for compiled in components:
            for name in compiled.process.inputs:
                producer = produced_by.get(name)
                if producer and producer != compiled.process.name:
                    dependencies[compiled.process.name].add(producer)
        order: List[str] = []
        remaining = dict(dependencies)
        while remaining:
            ready = sorted(name for name, deps in remaining.items() if deps <= set(order))
            if not ready:
                order.extend(sorted(remaining))
                break
            order.append(ready[0])
            del remaining[ready[0]]
        return order

    # -- interface --------------------------------------------------------------------
    @property
    def external_inputs(self) -> Tuple[str, ...]:
        names: List[str] = []
        for name in self._order:
            for signal in self.components[name].compiled.process.inputs:
                if signal not in self._shared_signals and signal not in names:
                    names.append(signal)
        return tuple(names)

    @property
    def external_outputs(self) -> Tuple[str, ...]:
        names: List[str] = []
        for name in self._order:
            for signal in self.components[name].compiled.process.outputs:
                if signal not in self._shared_signals and signal not in names:
                    names.append(signal)
        return tuple(names)

    def reset(self) -> None:
        for state in self.components.values():
            state.compiled.reset()
            state.pending_inputs = {}
            for index in state.arrived:
                state.arrived[index] = False
        # cleared in place: the persistent per-component IO adapters hold a
        # reference to this dict
        self._shared_store.clear()

    # -- one controlled global step ------------------------------------------------------
    def step(self, io: StreamIO) -> bool:
        """One iteration of the controlled main loop.

        Follows the structure of the paper's generated ``main_iterate``:
        decide which components may read a new input, read, evaluate the
        constraint literals, fire rendez-vous when every party has arrived,
        and execute the components that are allowed to run.
        """
        waiting: Dict[str, bool] = {}
        for name, state in self.components.items():
            waiting[name] = any(state.arrived.values())

        # read new inputs for components that are not suspended
        fresh_inputs: Dict[str, Dict[str, object]] = {}
        for name in self._order:
            state = self.components[name]
            if waiting[name]:
                fresh_inputs[name] = dict(state.pending_inputs)
                continue
            values: Dict[str, object] = {}
            for signal in state.compiled.process.inputs:
                if signal in self._shared_signals:
                    continue
                try:
                    values[signal] = io.read(signal)
                except EndOfStream:
                    return False
            fresh_inputs[name] = values
            state.pending_inputs = dict(values)

        # evaluate arrival of every constraint party
        for index, constraint in enumerate(self.constraints):
            for literal in (constraint.left, constraint.right):
                state = self.components[literal.component]
                if waiting[literal.component]:
                    continue  # arrival flag keeps its pending value
                value = fresh_inputs[literal.component].get(literal.signal)
                state.arrived[index] = value is not None and literal.holds(value)

        fired: Dict[int, bool] = {}
        for index, constraint in enumerate(self.constraints):
            left_state = self.components[constraint.left.component]
            right_state = self.components[constraint.right.component]
            fired[index] = left_state.arrived[index] and right_state.arrived[index]

        # a component runs if every constraint it is part of is either not
        # pending for it or fires in this step
        for name in self._order:
            state = self.components[name]
            may_run = all(
                (not state.arrived[index]) or fired[index] for index in state.arrived
            )
            if not may_run:
                continue
            shared_in = {
                signal: self._shared_store[signal]
                for signal in state.compiled.process.inputs
                if signal in self._shared_signals and signal in self._shared_store
            }
            component_io = state.io
            if component_io is None:
                component_io = state.io = _ComponentIO(
                    external=fresh_inputs[name],
                    shared_in=shared_in,
                    outer=io,
                    shared_outputs=self._shared_signals
                    & set(state.compiled.process.outputs),
                    shared_store=self._shared_store,
                )
            else:
                component_io.rebind(fresh_inputs[name], shared_in, io)
            if not state.compiled.step(component_io):
                return False
            state.pending_inputs = {}

        # clear the arrival flags of fired constraints
        for index, constraint in enumerate(self.constraints):
            if fired[index]:
                self.components[constraint.left.component].arrived[index] = False
                self.components[constraint.right.component].arrived[index] = False
        return True

    def run(self, io: StreamIO, max_steps: int = 1_000_000) -> int:
        steps = 0
        while steps < max_steps and self.step(io):
            steps += 1
        return steps

    # -- listing -----------------------------------------------------------------------
    def c_listing(self) -> str:
        """A C-like rendering of the controlled main loop (paper, Section 5.2)."""
        lines = ["bool main_iterate() {"]
        for index, constraint in enumerate(self.constraints):
            lines.append(f"  /* rendez-vous {index}: {constraint} */")
        for name in self._order:
            state = self.components[name]
            inputs = [
                signal
                for signal in state.compiled.process.inputs
                if signal not in self._shared_signals
            ]
            lines.append(f"  /* component {name} */")
            lines.append(f"  C_{name} = !waiting_{name};")
            for signal in inputs:
                lines.append(f"  if (C_{name}) {{ if (!r_main_{signal}(&{signal})) return FALSE; }}")
            for index in state.arrived:
                literal = self.constraints[index].literal_for(name)
                negation = "" if literal and literal.when_true else "!"
                lines.append(
                    f"  if (C_{name}) r{index}_{name} = {negation}{literal.signal if literal else '?'};"
                )
        for index, _constraint in enumerate(self.constraints):
            parties = " && ".join(
                f"r{index}_{party}" for party in self.constraints[index].parties()
            )
            lines.append(f"  fire_{index} = {parties};")
        for name in self._order:
            state = self.components[name]
            guards = (
                " && ".join(
                    f"(!r{index}_{name} || fire_{index})" for index in state.arrived
                )
                or "TRUE"
            )
            lines.append(f"  if ({guards}) {name}_iterate();")
        lines.append("  return TRUE;")
        lines.append("}")
        return "\n".join(lines)


def _literal_from_expression(
    expression: ClockExpressionSyntax, owners: Mapping[str, str]
) -> Optional[ClockLiteral]:
    """Interpret a clock expression as a literal on a component's input signal."""
    if isinstance(expression, ClockTrue):
        name, polarity = expression.name, True
    elif isinstance(expression, ClockFalse):
        name, polarity = expression.name, False
    else:
        return None
    owner = owners.get(name)
    if owner is None:
        return None
    return ClockLiteral(component=owner, signal=name, when_true=polarity)


def synthesize_controller(
    components: Sequence[CompiledProcess],
    verdict: CompositionVerdict,
) -> ControlledComposition:
    """Build the controlled composition from the criterion's reported constraints.

    Only constraints relating sampled clocks of *external inputs of two
    different components* become rendez-vous points — exactly the constraints
    (such as ``[¬a] = [b]``) that require synchronizing the independently
    paced components.  Constraints involving shared (internal) signals are
    already enforced by the data-flow through the shared store.
    """
    owners: Dict[str, str] = {}
    shared = ControlledComposition._compute_shared_signals(components)
    for compiled in components:
        for signal in compiled.process.inputs:
            if signal not in shared:
                owners[signal] = compiled.process.name

    constraints: List[ClockConstraintSpec] = []
    # a criterion verdict assembled from persisted artifacts materializes
    # its composition analysis here, on demand — synthesis needs the live
    # clock algebra to mine the implied equalities
    analysis = verdict.composition_analysis()
    if analysis is not None:
        from repro.lang.ast import ClockFalse as _CF, ClockTrue as _CT

        candidate_literals: List[ClockExpressionSyntax] = []
        boolean = set(analysis.process.boolean_signals())
        for signal in sorted(owners):
            if signal in boolean:
                candidate_literals.append(_CT(signal))
                candidate_literals.append(_CF(signal))
        for left, right in analysis.algebra.implied_equalities(candidate_literals):
            left_literal = _literal_from_expression(left, owners)
            right_literal = _literal_from_expression(right, owners)
            if left_literal is None or right_literal is None:
                continue
            if left_literal.component == right_literal.component:
                continue
            constraints.append(ClockConstraintSpec(left=left_literal, right=right_literal))
    return ControlledComposition(components, constraints)
