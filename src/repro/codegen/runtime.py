"""Simulation runtime for generated code.

The generated C code of the paper reads inputs through ``r_<process>_<x>``
functions and writes outputs through ``w_<process>_<x>``; the simulation
``main`` iterates the transition function until an input stream is exhausted.
This module provides the Python equivalents: stream-backed IO objects and the
:func:`simulate` loop.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Sequence


class EndOfStream(Exception):
    """Raised by :meth:`StreamIO.read` when an input stream is exhausted."""


class StreamIO:
    """Finite input streams and recorded output streams.

    ``read`` pops the next value of an input signal (raising
    :class:`EndOfStream` when exhausted, which makes the generated step
    function return ``False`` exactly like the paper's simulation code);
    ``write`` appends to the signal's output trace.
    """

    def __init__(self, inputs: Optional[Mapping[str, Sequence[object]]] = None):
        self._inputs: Dict[str, Deque[object]] = {
            name: deque(values) for name, values in (inputs or {}).items()
        }
        self.outputs: Dict[str, List[object]] = {}
        self.reads: Dict[str, List[object]] = {}

    def read(self, name: str) -> object:
        queue = self._inputs.get(name)
        if not queue:
            raise EndOfStream(name)
        value = queue.popleft()
        self.reads.setdefault(name, []).append(value)
        return value

    def write(self, name: str, value: object) -> None:
        self.outputs.setdefault(name, []).append(value)

    def available(self, name: str) -> bool:
        return bool(self._inputs.get(name))

    def remaining(self, name: str) -> int:
        return len(self._inputs.get(name, ()))

    def exhausted(self) -> bool:
        return all(not queue for queue in self._inputs.values())

    def output(self, name: str) -> List[object]:
        return list(self.outputs.get(name, []))


class RecordingIO(StreamIO):
    """A :class:`StreamIO` that also records, per step, which signals were read.

    Used by the controller and the tests to compare the synchronization
    behaviour of generated code with the interpreter oracle.
    """

    def __init__(self, inputs: Optional[Mapping[str, Sequence[object]]] = None):
        super().__init__(inputs)
        self.step_log: List[Dict[str, object]] = []
        self._current: Dict[str, object] = {}

    def read(self, name: str) -> object:
        value = super().read(name)
        self._current[name] = value
        return value

    def write(self, name: str, value: object) -> None:
        super().write(name, value)
        self._current[f"-> {name}"] = value

    def end_step(self) -> None:
        self.step_log.append(dict(self._current))
        self._current = {}


def simulate(step, io: StreamIO, max_steps: int = 1_000_000) -> int:
    """Iterate a generated step function until it returns ``False``.

    Mirrors the paper's simulation ``main``: ``while (code) code = iterate();``.
    Returns the number of completed steps.
    """
    steps = 0
    while steps < max_steps:
        if not step(io):
            break
        steps += 1
        if isinstance(io, RecordingIO):
            io.end_step()
    return steps
