"""Simulation runtime for generated code.

The generated C code of the paper reads inputs through ``r_<process>_<x>``
functions and writes outputs through ``w_<process>_<x>``; the simulation
``main`` iterates the transition function until an input stream is exhausted.
This module provides the Python equivalents: stream-backed IO objects and the
:func:`simulate` loop.

Since the deployment-runtime work the IO objects are also the hot path of
fleet-scale execution: per-signal read/write logs are allocated once (not
``setdefault``-rebuilt on every call), live streams can be extended with
:meth:`StreamIO.feed`, and :meth:`StreamIO.reader` / :meth:`StreamIO.writer`
hand out bound fast-path callables that the specialized step functions of
:mod:`repro.codegen.specialized` close over — one deque ``popleft`` / list
``append`` per event, no per-step dictionary lookups.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs import trace as obs_trace


class EndOfStream(Exception):
    """Raised by :meth:`StreamIO.read` when an input stream is exhausted."""


class StreamIO:
    """Finite input streams and recorded output streams.

    ``read`` pops the next value of an input signal (raising
    :class:`EndOfStream` when exhausted, which makes the generated step
    function return ``False`` exactly like the paper's simulation code);
    ``write`` appends to the signal's output trace.  ``feed`` appends fresh
    values to a live input stream, so a long-running deployment can be driven
    incrementally (the batch runtime and watch-style drivers use this).
    """

    def __init__(self, inputs: Optional[Mapping[str, Sequence[object]]] = None):
        self._inputs: Dict[str, Deque[object]] = {
            name: deque(values) for name, values in (inputs or {}).items()
        }
        self.outputs: Dict[str, List[object]] = {}
        # one log list per known input, created up front: the per-read
        # ``setdefault`` rebuild was a measurable hot-path allocation
        self.reads: Dict[str, List[object]] = {name: [] for name in self._inputs}

    def read(self, name: str) -> object:
        queue = self._inputs.get(name)
        if not queue:
            raise EndOfStream(name)
        value = queue.popleft()
        self.reads[name].append(value)
        return value

    def write(self, name: str, value: object) -> None:
        log = self.outputs.get(name)
        if log is None:
            log = self.outputs[name] = []
        log.append(value)

    def feed(self, name: str, values: Iterable[object]) -> None:
        """Append ``values`` to the (possibly new) input stream ``name``."""
        queue = self._inputs.get(name)
        if queue is None:
            queue = self._inputs[name] = deque()
            self.reads.setdefault(name, [])
        queue.extend(values)

    def reader(self, name: str) -> Callable[[], object]:
        """A bound fast-path read callable for one input signal.

        The returned closure pops the live deque directly (so values added
        later with :meth:`feed` are seen) and appends to the pre-created
        read log — no dictionary lookups per call.  Raises
        :class:`EndOfStream` exactly like :meth:`read`.
        """
        queue = self._inputs.get(name)
        if queue is None:
            queue = self._inputs[name] = deque()
        log = self.reads.setdefault(name, [])

        def read_one(
            popleft: Callable[[], object] = queue.popleft,
            append: Callable[[object], None] = log.append,
        ) -> object:
            try:
                value = popleft()
            except IndexError:
                raise EndOfStream(name) from None
            append(value)
            return value

        return read_one

    def writer(self, name: str) -> Callable[[object], None]:
        """A bound fast-path write callable (the output list's ``append``)."""
        log = self.outputs.get(name)
        if log is None:
            log = self.outputs[name] = []
        return log.append

    def available(self, name: str) -> bool:
        return bool(self._inputs.get(name))

    def remaining(self, name: str) -> int:
        return len(self._inputs.get(name, ()))

    def exhausted(self) -> bool:
        return all(not queue for queue in self._inputs.values())

    def output(self, name: str) -> List[object]:
        return list(self.outputs.get(name, []))


class RecordingIO(StreamIO):
    """A :class:`StreamIO` that also records, per step, which signals were read.

    Used by the controller and the tests to compare the synchronization
    behaviour of generated code with the interpreter oracle.
    """

    def __init__(self, inputs: Optional[Mapping[str, Sequence[object]]] = None):
        super().__init__(inputs)
        self.step_log: List[Dict[str, object]] = []
        self._current: Dict[str, object] = {}

    def read(self, name: str) -> object:
        value = super().read(name)
        self._current[name] = value
        return value

    def write(self, name: str, value: object) -> None:
        super().write(name, value)
        self._current[f"-> {name}"] = value

    def reader(self, name: str) -> Callable[[], object]:
        # the recording semantics need the per-step log, so the fast path
        # degrades to the (still correct) virtual read
        return lambda: self.read(name)

    def writer(self, name: str) -> Callable[[object], None]:
        return lambda value: self.write(name, value)

    def end_step(self) -> None:
        self.step_log.append(dict(self._current))
        self._current = {}


def simulate(step, io: StreamIO, max_steps: int = 1_000_000) -> int:
    """Iterate a generated step function until it returns ``False``.

    Mirrors the paper's simulation ``main``: ``while (code) code = iterate();``.
    Returns the number of completed steps.  With tracing enabled the whole
    simulation is one ``deploy.simulate`` span tagged with the step count.
    """
    if not obs_trace.TRACING:
        return _simulate(step, io, max_steps)
    with obs_trace.span("deploy.simulate") as active:
        steps = _simulate(step, io, max_steps)
        active.set_tag("steps", steps)
        return steps


def _simulate(step, io: StreamIO, max_steps: int) -> int:
    steps = 0
    recording = isinstance(io, RecordingIO)
    while steps < max_steps:
        if not step(io):
            break
        steps += 1
        if recording:
            io.end_step()
    return steps
