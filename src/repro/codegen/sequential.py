"""Sequential code generation (Sections 3.6 and 5.1).

For an endochronous (compilable and hierarchic) process, the generator emits
a *step function*: one call computes one reaction, reading the inputs that
the clock calculus proves are needed and writing the outputs that are
present, exactly like the ``buffer_iterate`` transition function of the
paper.  Two artefacts are produced from the same schedule:

* executable Python source (compiled with ``exec``), used by the tests, the
  controller of Section 5.2 and the benchmarks;
* a C-like listing that mirrors the paper's figures, for documentation and
  inspection.

For a process whose hierarchy has several roots the generator can either
refuse (the default — the compositional scheme of Section 5.2 should be used
instead) or reproduce Polychrony's *current scheme* (Section 5.1): add one
synchronized master-clock input per root (the ``C_a`` / ``C_b`` booleans of
the paper's ``main_iterate``) and rely on the environment to drive them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.lang.ast import (
    ClockBinary,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
    Const,
)
from repro.lang.normalize import (
    ClockEquation,
    DelayEquation,
    FunctionEquation,
    MergeEquation,
    NormalizedProcess,
    SamplingEquation,
)
from repro.codegen.runtime import EndOfStream, StreamIO
from repro.properties.compilable import ProcessAnalysis


class CodeGenerationError(Exception):
    """Raised when a process cannot be compiled by the sequential scheme."""


Slot = Tuple[str, str]  # ("p", signal) or ("v", signal)

_PYTHON_OPERATORS = {
    "+": "({0} + {1})",
    "-": "({0} - {1})",
    "*": "({0} * {1})",
    "/": "({0} / {1})",
    "and": "({0} and {1})",
    "or": "({0} or {1})",
    "xor": "({0} != {1})",
    "=": "({0} == {1})",
    "/=": "({0} != {1})",
    "<": "({0} < {1})",
    "<=": "({0} <= {1})",
    ">": "({0} > {1})",
    ">=": "({0} >= {1})",
}

_PYTHON_UNARY = {
    "not": "(not {0})",
    "-": "(-{0})",
    "id": "{0}",
}

_C_OPERATORS = {
    "+": "({0} + {1})",
    "-": "({0} - {1})",
    "*": "({0} * {1})",
    "/": "({0} / {1})",
    "and": "({0} && {1})",
    "or": "({0} || {1})",
    "xor": "({0} != {1})",
    "=": "({0} == {1})",
    "/=": "({0} != {1})",
    "<": "({0} < {1})",
    "<=": "({0} <= {1})",
    ">": "({0} > {1})",
    ">=": "({0} >= {1})",
}

_C_UNARY = {
    "not": "(!{0})",
    "-": "(-{0})",
    "id": "{0}",
}

# numpy-elementwise renderings of the same operators, used by the batch
# runtime (:mod:`repro.codegen.batch`).  ``None`` marks an operator outside
# the vectorizable fragment: ``*`` and ``/`` are excluded so the int64 lanes
# grow at most additively per step, which makes the batch runtime's overflow
# guard sound (see ``StepOp.guard``).
_ARRAY_OPERATORS = {
    "+": "({0} + {1})",
    "-": "({0} - {1})",
    "*": None,
    "/": None,
    "and": "({0} & {1})",
    "or": "({0} | {1})",
    "xor": "({0} != {1})",
    "=": "({0} == {1})",
    "/=": "({0} != {1})",
    "<": "({0} < {1})",
    "<=": "({0} <= {1})",
    ">": "({0} > {1})",
    ">=": "({0} >= {1})",
}

_ARRAY_UNARY = {
    "not": "(~{0})",
    "-": "(-{0})",
    "id": "{0}",
}


def _presence_var(name: str) -> str:
    return f"p_{name}"


def _value_var(name: str) -> str:
    return f"v_{name}"


def _python_constant(value: object) -> str:
    return repr(value)


def _c_constant(value: object) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    return repr(value)


@dataclass(frozen=True)
class StepOp:
    """One semantic operation of a step function, in schedule order.

    The textual listings (Python / C sources) are renderings of this stream;
    the specialized and batch runtimes of :mod:`repro.codegen.specialized`
    and :mod:`repro.codegen.batch` compile it directly instead of re-parsing
    the text.  Kinds:

    * ``"master_read"`` — unconditionally read the master-clock input ``target``;
    * ``"presence"`` — ``p_<target> = py_expr``;
    * ``"read"`` — if present, read input ``target`` from the environment;
    * ``"delay"`` — if present, ``v_<target>`` is the delay register ``register``;
    * ``"compute"`` — if present, ``v_<target> = py_expr``;
    * ``"write"`` — if present, emit ``v_<target>`` to the environment;
    * ``"update"`` — if ``source`` is present, store ``v_<source>`` into
      ``register``.

    ``array_expr`` is the numpy-elementwise rendering (``None`` when the
    expression falls outside the vectorizable fragment); ``guard`` marks
    numeric computations whose magnitude can grow (``+`` / ``-``), which the
    batch runtime bounds with an overflow check.
    """

    kind: str
    target: str
    py_expr: Optional[str] = None
    array_expr: Optional[str] = None
    register: Optional[str] = None
    source: Optional[str] = None
    guard: bool = False


@dataclass(frozen=True)
class StepProgram:
    """The scheduled semantic program of one process's step function."""

    process: NormalizedProcess
    ops: Tuple[StepOp, ...]
    initial_state: Dict[str, object]
    master_clock_inputs: Tuple[str, ...]

    @property
    def types(self) -> Dict[str, str]:
        return self.process.types

    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(self.process.inputs) + self.master_clock_inputs

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(self.process.outputs)


@dataclass
class _Statement:
    """One emitted statement: target slot, Python lines, C lines, dependencies."""

    slot: Slot
    python_lines: List[str]
    c_lines: List[str]
    dependencies: Set[Slot] = field(default_factory=set)
    op: Optional[StepOp] = None


@dataclass
class _Candidate:
    """A candidate way of computing a presence slot."""

    python_expr: str
    c_expr: str
    dependencies: Set[Slot]
    origin: str
    array_expr: Optional[str] = None


class _Generator:
    """Builds the statement list of the step function for one process."""

    def __init__(self, analysis: ProcessAnalysis, master_clocks: bool):
        self.analysis = analysis
        self.process = analysis.process
        self.master_clocks = master_clocks
        self.master_clock_inputs: List[str] = []
        self._root_signals: Set[str] = set()
        self._root_of_signal: Dict[str, str] = {}
        self._defined_by: Dict[str, object] = {}
        for equation in self.process.equations:
            target = equation.defined_signal()
            if target is not None:
                self._defined_by[target] = equation
        self._compute_roots()

    # -- roots and master clocks ---------------------------------------------------
    def _compute_roots(self) -> None:
        hierarchy = self.analysis.hierarchy
        roots = hierarchy.roots()
        if len(roots) > 1 and not self.master_clocks:
            raise CodeGenerationError(
                f"process {self.process.name!r} has {len(roots)} hierarchy roots; "
                "sequential code generation requires endochrony — use the controller "
                "scheme of Section 5.2 or enable master_clocks to reproduce the "
                "paper's Section 5.1 scheme"
            )
        for root in roots:
            signals = root.signal_clocks()
            if not signals:
                continue
            representative = signals[0]
            for name in signals:
                self._root_signals.add(name)
                self._root_of_signal[name] = representative
        if len(roots) > 1:
            self.master_clock_inputs = [
                f"C_{root.signal_clocks()[0]}" for root in roots if root.signal_clocks()
            ]

    # -- clock expression translation --------------------------------------------------
    def _clock_expr(
        self, expression: ClockExpressionSyntax
    ) -> Tuple[str, str, str, Set[Slot]]:
        """Translate a clock expression into (python, c, array, dependencies)."""
        if isinstance(expression, ClockEmpty):
            return "False", "FALSE", "_zeros", set()
        if isinstance(expression, ClockOf):
            name = expression.name
            return _presence_var(name), f"C_{name}", _presence_var(name), {("p", name)}
        if isinstance(expression, (ClockTrue, ClockFalse)):
            name = expression.name
            deps = {("p", name), ("v", name)}
            if isinstance(expression, ClockTrue):
                return (
                    f"({_presence_var(name)} and {_value_var(name)})",
                    f"(C_{name} && {name})",
                    f"({_presence_var(name)} & {_value_var(name)})",
                    deps,
                )
            return (
                f"({_presence_var(name)} and not {_value_var(name)})",
                f"(C_{name} && !{name})",
                f"({_presence_var(name)} & ~{_value_var(name)})",
                deps,
            )
        if isinstance(expression, ClockBinary):
            left_py, left_c, left_np, left_deps = self._clock_expr(expression.left)
            right_py, right_c, right_np, right_deps = self._clock_expr(expression.right)
            deps = left_deps | right_deps
            if expression.operator == "and":
                return (
                    f"({left_py} and {right_py})",
                    f"({left_c} && {right_c})",
                    f"({left_np} & {right_np})",
                    deps,
                )
            if expression.operator == "or":
                return (
                    f"({left_py} or {right_py})",
                    f"({left_c} || {right_c})",
                    f"({left_np} | {right_np})",
                    deps,
                )
            return (
                f"({left_py} and not {right_py})",
                f"({left_c} && !{right_c})",
                f"({left_np} & ~{right_np})",
                deps,
            )
        raise CodeGenerationError(f"unsupported clock expression {expression!r}")

    # -- presence candidates ----------------------------------------------------------
    def _presence_candidates(self, name: str) -> List[_Candidate]:
        candidates: List[_Candidate] = []
        # 1. explicit clock relations (in disjunctive form)
        for relation in self.analysis.disjunctive.relations.clock_relations:
            for own, other in ((relation.left, relation.right), (relation.right, relation.left)):
                if isinstance(own, ClockOf) and own.name == name:
                    if name in other.free_signals():
                        continue
                    python_expr, c_expr, array_expr, deps = self._clock_expr(other)
                    candidates.append(
                        _Candidate(python_expr, c_expr, deps, "clock relation", array_expr)
                    )
        # 2. the defining equation
        equation = self._defined_by.get(name)
        if isinstance(equation, FunctionEquation):
            signal_operands = [op for op in equation.operands if isinstance(op, str)]
            if signal_operands:
                source = signal_operands[0]
                candidates.append(
                    _Candidate(
                        _presence_var(source),
                        f"C_{source}",
                        {("p", source)},
                        "synchronous operand",
                        _presence_var(source),
                    )
                )
        elif isinstance(equation, DelayEquation):
            candidates.append(
                _Candidate(
                    _presence_var(equation.source),
                    f"C_{equation.source}",
                    {("p", equation.source)},
                    "synchronous delay",
                    _presence_var(equation.source),
                )
            )
        elif isinstance(equation, SamplingEquation):
            condition = equation.condition
            deps = {("p", condition), ("v", condition)}
            python_expr = f"({_presence_var(condition)} and {_value_var(condition)})"
            c_expr = f"(C_{condition} && {condition})"
            array_expr = f"({_presence_var(condition)} & {_value_var(condition)})"
            if isinstance(equation.source, str):
                deps.add(("p", equation.source))
                python_expr = f"({_presence_var(equation.source)} and {python_expr})"
                c_expr = f"(C_{equation.source} && {c_expr})"
                array_expr = f"({_presence_var(equation.source)} & {array_expr})"
            candidates.append(_Candidate(python_expr, c_expr, deps, "sampling", array_expr))
        elif isinstance(equation, MergeEquation):
            deps = {("p", equation.preferred), ("p", equation.alternative)}
            candidates.append(
                _Candidate(
                    f"({_presence_var(equation.preferred)} or {_presence_var(equation.alternative)})",
                    f"(C_{equation.preferred} || C_{equation.alternative})",
                    deps,
                    "merge",
                    f"({_presence_var(equation.preferred)} | {_presence_var(equation.alternative)})",
                )
            )
        # 3. root activation
        if name in self._root_signals:
            if self.master_clocks and len(self.master_clock_inputs) > 0:
                master = f"C_{self._root_of_signal[name]}"
                candidates.append(
                    _Candidate(
                        f"bool({_value_var(master)})",
                        master,
                        {("v", master)},
                        "master clock",
                        _value_var(master),
                    )
                )
            else:
                candidates.append(_Candidate("True", "TRUE", set(), "root activation", "_ones"))
        return candidates

    # -- value statements --------------------------------------------------------------
    def _operand_python(self, operand: Union[str, Const]) -> Tuple[str, Set[Slot]]:
        if isinstance(operand, Const):
            return _python_constant(operand.value), set()
        return _value_var(operand), {("v", operand)}

    def _operand_c(self, operand: Union[str, Const]) -> str:
        if isinstance(operand, Const):
            return _c_constant(operand.value)
        return operand

    def _value_statement(self, name: str) -> Optional[_Statement]:
        presence = _presence_var(name)
        value = _value_var(name)
        equation = self._defined_by.get(name)
        deps: Set[Slot] = {("p", name)}

        if equation is None:
            if name in self.process.inputs:
                python_lines = [
                    f"if {presence}:",
                    "    try:",
                    f"        {value} = io.read({name!r})",
                    "    except EndOfStream:",
                    "        return False",
                ]
                c_lines = [
                    f"if (C_{name}) {{",
                    f"  if (!r_{self.process.name}_{name}(&{name})) return FALSE;",
                    "}",
                ]
                op = StepOp(kind="read", target=name)
                return _Statement(("v", name), python_lines, c_lines, deps, op)
            return None

        expr_array: Optional[str] = None
        guard = False
        if isinstance(equation, FunctionEquation):
            rendered_py: List[str] = []
            rendered_c: List[str] = []
            for operand in equation.operands:
                py, operand_deps = self._operand_python(operand)
                rendered_py.append(py)
                rendered_c.append(self._operand_c(operand))
                deps |= operand_deps
            if equation.operator in _PYTHON_UNARY and len(rendered_py) == 1:
                expr_py = _PYTHON_UNARY[equation.operator].format(rendered_py[0])
                expr_c = _C_UNARY[equation.operator].format(rendered_c[0])
                template = _ARRAY_UNARY.get(equation.operator)
            elif equation.operator in _PYTHON_OPERATORS and len(rendered_py) == 2:
                expr_py = _PYTHON_OPERATORS[equation.operator].format(*rendered_py)
                expr_c = _C_OPERATORS[equation.operator].format(*rendered_c)
                template = _ARRAY_OPERATORS.get(equation.operator)
            else:
                raise CodeGenerationError(
                    f"unsupported operator {equation.operator!r} in equation for {name!r}"
                )
            if template is not None:
                # the python operand rendering (v_<x> / repr(const)) is also
                # valid elementwise, so the array expression reuses it
                expr_array = template.format(*rendered_py)
                guard = equation.operator in ("+", "-")
        elif isinstance(equation, DelayEquation):
            expr_py = f"state[{name!r}]"
            expr_c = name
        elif isinstance(equation, SamplingEquation):
            expr_py, source_deps = self._operand_python(equation.source)
            expr_c = self._operand_c(equation.source)
            deps |= source_deps
            expr_array = expr_py
        elif isinstance(equation, MergeEquation):
            expr_py = (
                f"({_value_var(equation.preferred)} if {_presence_var(equation.preferred)} "
                f"else {_value_var(equation.alternative)})"
            )
            expr_c = f"(C_{equation.preferred} ? {equation.preferred} : {equation.alternative})"
            expr_array = (
                f"_where({_presence_var(equation.preferred)}, "
                f"{_value_var(equation.preferred)}, {_value_var(equation.alternative)})"
            )
            deps |= {
                ("p", equation.preferred),
                ("v", equation.preferred),
                ("v", equation.alternative),
            }
        else:
            raise CodeGenerationError(f"unsupported equation {equation!r}")

        python_lines = [f"if {presence}:", f"    {value} = {expr_py}"]
        if isinstance(equation, DelayEquation):
            c_lines: List[str] = []
            op = StepOp(kind="delay", target=name, register=name)
        else:
            c_lines = [f"if (C_{name}) {name} = {expr_c};"]
            op = StepOp(
                kind="compute",
                target=name,
                py_expr=expr_py,
                array_expr=expr_array,
                guard=guard,
            )
        return _Statement(("v", name), python_lines, c_lines, deps, op)

    # Merge value dependencies are conditional: when the preferred operand is
    # absent its value is not read, so the hard dependency is only on its
    # presence.  The resolver treats conditional value dependencies as soft.
    def _soften(self, statement: _Statement) -> Set[Slot]:
        equation = self._defined_by.get(statement.slot[1])
        if isinstance(equation, MergeEquation):
            return {("v", equation.preferred), ("v", equation.alternative)}
        return set()

    # -- assembly ----------------------------------------------------------------------
    def build_statements(self) -> List[_Statement]:
        signals = self.process.all_signals()
        statements: Dict[Slot, _Statement] = {}
        candidates: Dict[Slot, List[_Candidate]] = {}

        for master in self.master_clock_inputs:
            slot = ("v", master)
            statements[slot] = _Statement(
                slot,
                [
                    "try:",
                    f"    {_value_var(master)} = io.read({master!r})",
                    "except EndOfStream:",
                    "    return False",
                ],
                [f"if (!r_{self.process.name}_{master}(&{master})) return FALSE;"],
                set(),
                StepOp(kind="master_read", target=master),
            )

        for name in signals:
            candidates[("p", name)] = self._presence_candidates(name)
            value_statement = self._value_statement(name)
            if value_statement is not None:
                statements[("v", name)] = value_statement

        # Greedy resolution: repeatedly emit any slot whose dependencies are met.
        resolved: Set[Slot] = set()
        order: List[_Statement] = []
        pending_presence = {("p", name) for name in signals}
        pending_values = set(statements.keys())

        def try_resolve_presence() -> bool:
            for slot in sorted(pending_presence):
                name = slot[1]
                for candidate in candidates[slot]:
                    if candidate.dependencies <= resolved:
                        order.append(
                            _Statement(
                                slot,
                                [f"{_presence_var(name)} = {candidate.python_expr}"],
                                [f"C_{name} = {candidate.c_expr};"],
                                set(candidate.dependencies),
                                StepOp(
                                    kind="presence",
                                    target=name,
                                    py_expr=candidate.python_expr,
                                    array_expr=candidate.array_expr,
                                ),
                            )
                        )
                        resolved.add(slot)
                        pending_presence.discard(slot)
                        return True
            return False

        def try_resolve_value() -> bool:
            for slot in sorted(pending_values):
                statement = statements[slot]
                hard = statement.dependencies - self._soften(statement)
                soft = statement.dependencies & self._soften(statement)
                soft_ready = all(dependency in resolved or dependency in pending_never for dependency in soft)
                if hard <= resolved and soft_ready:
                    order.append(statement)
                    resolved.add(slot)
                    pending_values.discard(slot)
                    return True
            return False

        # Slots that will never be produced (e.g. values of signals that are
        # neither inputs nor defined — they can only be absent).
        pending_never: Set[Slot] = {
            ("v", name) for name in signals if ("v", name) not in statements
        }

        while pending_presence or pending_values:
            if try_resolve_presence():
                continue
            if try_resolve_value():
                continue
            unresolved = sorted(pending_presence | pending_values)
            raise CodeGenerationError(
                f"cannot order the computations of {self.process.name!r}; "
                f"unresolved slots: {unresolved[:8]}"
            )
        return order

    def state_updates(self) -> Tuple[List[str], List[str], Dict[str, object]]:
        python_lines: List[str] = []
        c_lines: List[str] = []
        initial: Dict[str, object] = {}
        for equation in self.process.equations:
            if not isinstance(equation, DelayEquation):
                continue
            initial[equation.target] = equation.initial
            python_lines.append(
                f"if {_presence_var(equation.source)}:"
            )
            python_lines.append(
                f"    state[{equation.target!r}] = {_value_var(equation.source)}"
            )
            c_lines.append(f"if (C_{equation.source}) {equation.target} = {equation.source};")
        return python_lines, c_lines, initial

    def output_writes(self) -> Tuple[List[str], List[str]]:
        python_lines: List[str] = []
        c_lines: List[str] = []
        for name in self.process.outputs:
            python_lines.append(f"if {_presence_var(name)}:")
            python_lines.append(f"    io.write({name!r}, {_value_var(name)})")
            c_lines.append(f"if (C_{name}) w_{self.process.name}_{name}({name});")
        return python_lines, c_lines

    def step_ops(self, statements: Sequence[_Statement]) -> Tuple[StepOp, ...]:
        """The full semantic op stream in schedule order.

        Mirrors the layout of the rendered sources exactly: the scheduled
        statements, then the output writes, then the delay-register updates.
        """
        ops: List[StepOp] = [
            statement.op for statement in statements if statement.op is not None
        ]
        for name in self.process.outputs:
            ops.append(StepOp(kind="write", target=name))
        for equation in self.process.equations:
            if isinstance(equation, DelayEquation):
                ops.append(
                    StepOp(
                        kind="update",
                        target=equation.target,
                        register=equation.target,
                        source=equation.source,
                    )
                )
        return tuple(ops)


@dataclass
class CompiledProcess:
    """A sequentially compiled process: executable step function plus listings."""

    process: NormalizedProcess
    python_source: str
    c_source: str
    initial_state: Dict[str, object]
    master_clock_inputs: List[str] = field(default_factory=list)
    _step_function: object = None
    state: Dict[str, object] = field(default_factory=dict)
    program: Optional[StepProgram] = None

    def __post_init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Reset the delay registers to their initial values."""
        self.state = dict(self.initial_state)

    def step(self, io: StreamIO) -> bool:
        """Execute one reaction; returns False when an input stream ends."""
        return self._step_function(io, self.state)

    def run(self, io: StreamIO, max_steps: int = 1_000_000) -> int:
        """Iterate until the step function returns False (paper's simulation main)."""
        steps = 0
        while steps < max_steps and self.step(io):
            steps += 1
        return steps

    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(self.process.inputs) + tuple(self.master_clock_inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(self.process.outputs)


def compile_process(
    process: Union[NormalizedProcess, ProcessAnalysis],
    master_clocks: bool = False,
    check_compilable: bool = True,
) -> CompiledProcess:
    """Generate and compile the sequential step function of a process.

    ``master_clocks=True`` reproduces the *current scheme* of Section 5.1 for
    multi-rooted processes: one boolean master-clock input ``C_<root>`` per
    hierarchy root is added to the interface and read at every step.
    """
    analysis = process if isinstance(process, ProcessAnalysis) else ProcessAnalysis(process)
    if check_compilable and not analysis.is_compilable():
        raise CodeGenerationError(
            f"process {analysis.process.name!r} is not compilable "
            f"(well_clocked={analysis.is_well_clocked()}, acyclic={analysis.is_acyclic()})"
        )
    generator = _Generator(analysis, master_clocks)
    statements = generator.build_statements()
    update_py, update_c, initial_state = generator.state_updates()
    writes_py, writes_c = generator.output_writes()

    function_name = f"{analysis.process.name}_iterate"
    python_lines: List[str] = [f"def {function_name}(io, state):"]
    body: List[str] = []
    for statement in statements:
        body.extend(statement.python_lines)
    body.extend(writes_py)
    body.extend(update_py)
    body.append("return True")
    python_lines.extend(f"    {line}" for line in body)
    python_source = "\n".join(python_lines) + "\n"

    c_lines: List[str] = [f"bool {function_name}() {{"]
    for statement in statements:
        c_lines.extend(f"  {line}" for line in statement.c_lines)
    c_lines.extend(f"  {line}" for line in writes_c)
    c_lines.extend(f"  {line}" for line in update_c)
    c_lines.append("  return TRUE;")
    c_lines.append("}")
    c_source = "\n".join(c_lines) + "\n"

    namespace: Dict[str, object] = {"EndOfStream": EndOfStream}
    exec(compile(python_source, f"<generated {function_name}>", "exec"), namespace)
    program = StepProgram(
        process=analysis.process,
        ops=generator.step_ops(statements),
        initial_state=dict(initial_state),
        master_clock_inputs=tuple(generator.master_clock_inputs),
    )
    compiled = CompiledProcess(
        process=analysis.process,
        python_source=python_source,
        c_source=c_source,
        initial_state=initial_state,
        master_clock_inputs=list(generator.master_clock_inputs),
        _step_function=namespace[function_name],
        program=program,
    )
    return compiled


def build_step_program(
    process: Union[NormalizedProcess, ProcessAnalysis],
    master_clocks: bool = False,
    check_compilable: bool = True,
) -> StepProgram:
    """The scheduled :class:`StepProgram` of a process, without rendering text.

    This is the semantic artefact behind :func:`compile_process`; the
    specialized and batch runtimes compile it directly.
    """
    analysis = process if isinstance(process, ProcessAnalysis) else ProcessAnalysis(process)
    if check_compilable and not analysis.is_compilable():
        raise CodeGenerationError(
            f"process {analysis.process.name!r} is not compilable "
            f"(well_clocked={analysis.is_well_clocked()}, acyclic={analysis.is_acyclic()})"
        )
    generator = _Generator(analysis, master_clocks)
    statements = generator.build_statements()
    _update_py, _update_c, initial_state = generator.state_updates()
    return StepProgram(
        process=analysis.process,
        ops=generator.step_ops(statements),
        initial_state=initial_state,
        master_clock_inputs=tuple(generator.master_clock_inputs),
    )
