"""Exec-specialized step functions and the per-step-dispatch reference tier.

:func:`repro.codegen.sequential.compile_process` already turns the schedule
into exec-compiled Python, but the emitted step function still pays per-step
virtual costs: every ``io.read`` / ``io.write`` is a method dispatch plus a
dictionary lookup, and every delay register is a ``state[...]`` access.  This
module compiles the same :class:`~repro.codegen.sequential.StepProgram` one
tier further down:

* :class:`SpecializedProcess` (``runtime="specialized"``) exec-compiles a
  *bind* function per process.  Binding an IO object returns a closure whose
  body is straight-line code with the readers/writers resolved once (through
  :meth:`StreamIO.reader` / :meth:`StreamIO.writer` when available) and the
  delay registers held in closure locals, flushed back to the state dict at
  stream end — no per-step dictionary lookups at all.

* :class:`InterpretedProcess` (``runtime="interpreter"``) is the opposite
  end of the spectrum: it walks the op stream with one dispatch per
  operation, evaluating pre-compiled expression code objects against a
  per-step environment.  It is the measured baseline the specialized tier is
  benchmarked against (``benchmarks/bench_deploy.py``) and a second oracle
  for the differential suite.

Both execute the *same* scheduled ops as the textual listings, so all tiers
produce byte-identical flows.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.codegen.runtime import EndOfStream, StreamIO
from repro.codegen.sequential import (
    CodeGenerationError,
    StepProgram,
    build_step_program,
    compile_process,
)
from repro.lang.normalize import NormalizedProcess
from repro.properties.compilable import ProcessAnalysis


def _bind_reader(io: StreamIO, name: str) -> Callable[[], object]:
    """Resolve the fastest available read callable for one input signal."""
    factory = getattr(io, "reader", None)
    if factory is not None:
        return factory(name)

    def read_one() -> object:
        return io.read(name)

    return read_one


def _bind_writer(io: StreamIO, name: str) -> Callable[[object], None]:
    """Resolve the fastest available write callable for one output signal."""
    factory = getattr(io, "writer", None)
    if factory is not None:
        return factory(name)

    def write_one(value: object) -> None:
        io.write(name, value)

    return write_one


def render_bind_source(program: StepProgram) -> str:
    """The Python source of the bind function for one step program."""
    name = program.process.name
    registers = sorted(program.initial_state)
    lines: List[str] = [f"def {name}_bind(io, state):"]
    body: List[str] = []
    for signal in program.inputs:
        body.append(f"_r_{signal} = _reader(io, {signal!r})")
    for signal in program.outputs:
        body.append(f"_w_{signal} = _writer(io, {signal!r})")
    for register in registers:
        body.append(f"s_{register} = state[{register!r}]")
    body.append("def _sync():")
    if registers:
        body.extend(f"    state[{register!r}] = s_{register}" for register in registers)
    else:
        body.append("    pass")
    body.append("def step():")
    step_body: List[str] = []
    if registers:
        step_body.append("nonlocal " + ", ".join(f"s_{register}" for register in registers))
    for op in program.ops:
        if op.kind == "master_read":
            step_body.extend(
                [
                    "try:",
                    f"    v_{op.target} = _r_{op.target}()",
                    "except EndOfStream:",
                    "    _sync()",
                    "    return False",
                ]
            )
        elif op.kind == "presence":
            step_body.append(f"p_{op.target} = {op.py_expr}")
        elif op.kind == "read":
            step_body.extend(
                [
                    f"if p_{op.target}:",
                    "    try:",
                    f"        v_{op.target} = _r_{op.target}()",
                    "    except EndOfStream:",
                    "        _sync()",
                    "        return False",
                ]
            )
        elif op.kind == "delay":
            step_body.extend([f"if p_{op.target}:", f"    v_{op.target} = s_{op.register}"])
        elif op.kind == "compute":
            step_body.extend([f"if p_{op.target}:", f"    v_{op.target} = {op.py_expr}"])
        elif op.kind == "write":
            step_body.extend([f"if p_{op.target}:", f"    _w_{op.target}(v_{op.target})"])
        elif op.kind == "update":
            step_body.extend([f"if p_{op.source}:", f"    s_{op.register} = v_{op.source}"])
        else:  # pragma: no cover - exhaustive over StepOp kinds
            raise CodeGenerationError(f"unknown step op kind {op.kind!r}")
    step_body.append("return True")
    body.extend(f"    {line}" for line in step_body)
    body.extend(
        [
            "def run(limit):",
            "    n = 0",
            "    while n < limit and step():",
            "        n += 1",
            "    return n",
            "return step, run, _sync",
        ]
    )
    lines.extend(f"    {line}" for line in body)
    return "\n".join(lines) + "\n"


class SpecializedProcess:
    """A process compiled to closure-specialized straight-line step code.

    Mirrors the surface of :class:`~repro.codegen.sequential.CompiledProcess`
    (``reset`` / ``step(io)`` / ``run(io)`` / ``state`` / listings) but binds
    each IO object once: the first ``step``/``run`` against an IO compiles
    nothing and merely calls the cached closure.  Binding is keyed by IO
    identity — stepping a different IO flushes the registers of the previous
    binding and rebinds, so interleaved use stays correct (just slower).
    """

    def __init__(
        self,
        program: StepProgram,
        python_source: str,
        c_source: str,
        bind: Callable[[StreamIO, Dict[str, object]], tuple],
    ):
        self.program = program
        self.process: NormalizedProcess = program.process
        self.python_source = python_source
        self.c_source = c_source
        self.initial_state: Dict[str, object] = dict(program.initial_state)
        self.master_clock_inputs: List[str] = list(program.master_clock_inputs)
        self._bind = bind
        self._bound: Optional[tuple] = None  # (io, step, run, sync)
        self._state: Dict[str, object] = dict(self.initial_state)

    # -- state ------------------------------------------------------------------------
    @property
    def state(self) -> Dict[str, object]:
        """The delay registers, flushed from any live binding first."""
        bound = self._bound
        if bound is not None:
            bound[3]()
        return self._state

    @state.setter
    def state(self, value: Dict[str, object]) -> None:
        self._bound = None
        self._state = dict(value)

    def reset(self) -> None:
        self._bound = None
        self._state = dict(self.initial_state)

    # -- execution --------------------------------------------------------------------
    def _rebind(self, io: StreamIO) -> tuple:
        bound = self._bound
        if bound is not None:
            bound[3]()
        step, run, sync = self._bind(io, self._state)
        bound = (io, step, run, sync)
        self._bound = bound
        return bound

    def step(self, io: StreamIO) -> bool:
        bound = self._bound
        if bound is None or bound[0] is not io:
            bound = self._rebind(io)
        return bound[1]()

    def run(self, io: StreamIO, max_steps: int = 1_000_000) -> int:
        bound = self._bound
        if bound is None or bound[0] is not io:
            bound = self._rebind(io)
        return bound[2](max_steps)

    # -- interface --------------------------------------------------------------------
    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(self.process.inputs) + tuple(self.master_clock_inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(self.process.outputs)


def compile_specialized(
    process: Union[NormalizedProcess, ProcessAnalysis],
    master_clocks: bool = False,
    check_compilable: bool = True,
) -> SpecializedProcess:
    """Compile a process to a :class:`SpecializedProcess`.

    The C listing is shared with :func:`compile_process` (the schedule is the
    same); the Python source is the bind function whose closures execute it.
    """
    analysis = process if isinstance(process, ProcessAnalysis) else ProcessAnalysis(process)
    compiled = compile_process(analysis, master_clocks, check_compilable)
    program = compiled.program
    source = render_bind_source(program)
    namespace: Dict[str, object] = {
        "EndOfStream": EndOfStream,
        "_reader": _bind_reader,
        "_writer": _bind_writer,
    }
    exec(compile(source, f"<specialized {program.process.name}_bind>", "exec"), namespace)
    return SpecializedProcess(
        program=program,
        python_source=source,
        c_source=compiled.c_source,
        bind=namespace[f"{program.process.name}_bind"],
    )


class InterpretedProcess:
    """The per-step-dispatch execution tier: one dispatch per scheduled op.

    Walks the :class:`StepProgram` with pre-compiled expression code objects,
    looking values up in a per-step environment dict — the dynamic baseline
    that the exec-compiled tiers eliminate.
    """

    def __init__(self, program: StepProgram):
        self.program = program
        self.process: NormalizedProcess = program.process
        self.initial_state: Dict[str, object] = dict(program.initial_state)
        self.master_clock_inputs: List[str] = list(program.master_clock_inputs)
        self.state: Dict[str, object] = dict(self.initial_state)
        self._globals: Dict[str, object] = {}
        compiled_ops: List[tuple] = []
        for op in program.ops:
            presence = f"p_{op.target}"
            value = f"v_{op.target}"
            if op.kind == "master_read":
                compiled_ops.append(("master_read", op.target, value))
            elif op.kind == "presence":
                code = compile(op.py_expr, f"<presence {op.target}>", "eval")
                compiled_ops.append(("presence", presence, code))
            elif op.kind == "read":
                compiled_ops.append(("read", op.target, presence, value))
            elif op.kind == "delay":
                compiled_ops.append(("delay", value, presence, op.register))
            elif op.kind == "compute":
                code = compile(op.py_expr, f"<compute {op.target}>", "eval")
                compiled_ops.append(("compute", value, presence, code))
            elif op.kind == "write":
                compiled_ops.append(("write", op.target, presence, value))
            elif op.kind == "update":
                compiled_ops.append(("update", op.register, f"p_{op.source}", f"v_{op.source}"))
            else:  # pragma: no cover - exhaustive over StepOp kinds
                raise CodeGenerationError(f"unknown step op kind {op.kind!r}")
        self._ops: Tuple[tuple, ...] = tuple(compiled_ops)

    def reset(self) -> None:
        self.state = dict(self.initial_state)

    def step(self, io: StreamIO) -> bool:
        env: Dict[str, object] = {}
        env_globals = self._globals
        state = self.state
        for op in self._ops:
            kind = op[0]
            if kind == "presence":
                env[op[1]] = eval(op[2], env_globals, env)
            elif kind == "compute":
                if env[op[2]]:
                    env[op[1]] = eval(op[3], env_globals, env)
            elif kind == "read":
                if env[op[2]]:
                    try:
                        env[op[3]] = io.read(op[1])
                    except EndOfStream:
                        return False
            elif kind == "delay":
                if env[op[2]]:
                    env[op[1]] = state[op[3]]
            elif kind == "write":
                if env[op[2]]:
                    io.write(op[1], env[op[3]])
            elif kind == "update":
                if env[op[2]]:
                    state[op[1]] = env[op[3]]
            else:  # master_read
                try:
                    env[op[2]] = io.read(op[1])
                except EndOfStream:
                    return False
        return True

    def run(self, io: StreamIO, max_steps: int = 1_000_000) -> int:
        steps = 0
        while steps < max_steps and self.step(io):
            steps += 1
        return steps

    @property
    def inputs(self) -> Tuple[str, ...]:
        return tuple(self.process.inputs) + tuple(self.master_clock_inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(self.process.outputs)


def compile_interpreted(
    process: Union[NormalizedProcess, ProcessAnalysis],
    master_clocks: bool = False,
    check_compilable: bool = True,
) -> InterpretedProcess:
    """Build the per-step-dispatch tier for a process."""
    program = build_step_program(process, master_clocks, check_compilable)
    return InterpretedProcess(program)
