"""``repro.gen`` — grammar-driven scenario generation and differential testing.

The subsystem has four layers, each usable on its own:

* :mod:`repro.gen.grammar` — a typed grammar over the process language:
  rules keyed by :class:`~repro.gen.grammar.Sort` (value kind × clock
  class), depth-bounded unique enumeration, seeded sampling, whole-component
  derivation (:func:`~repro.gen.grammar.sample_component`).
* :mod:`repro.gen.topologies` — multi-component design families (pipelines,
  stars, buffer chains, token rings, arbiter trees, crossbars, clock
  dividers, mode automata, seeded-random networks) and the seeded design
  sampler :func:`~repro.gen.topologies.sample_design`.
* :mod:`repro.gen.differential` — every design through all four
  verification backends, held to the documented per-property agreement
  contract, with disagreements shrunk to minimal counterexamples.
* :mod:`repro.gen.corpus` — the persisted corpus of designs + known
  verdicts: regression oracle (:func:`~repro.gen.corpus.check_corpus`) and
  warm-store seed (:func:`~repro.gen.corpus.seed_store`).

``python -m repro.gen`` / ``repro-gen`` is the command-line entry point.
"""

from repro.gen.corpus import (
    Corpus,
    CorpusEntry,
    Drift,
    build_corpus,
    build_entry,
    check_corpus,
    seed_store,
)
from repro.gen.differential import (
    CONTRACTS,
    METHODS,
    PROPERTIES,
    AgreementContract,
    DifferentialReport,
    DifferentialResult,
    Disagreement,
    FormulationGap,
    ShrunkCounterexample,
    run_design,
    run_matrix,
    shrink,
    verdict_matrix,
)
from repro.gen.grammar import (
    BOOL,
    BOOL_SAMPLED,
    NUM,
    NUM_SAMPLED,
    SORTS,
    ComponentSpec,
    Grammar,
    Rule,
    Sort,
    build_component,
    default_rules,
    enumerate_components,
    sample_component,
)
from repro.gen.topologies import (
    FAMILIES,
    GeneratedDesign,
    arbiter_tree,
    chain_of_buffers,
    clock_divider,
    crossbar,
    design_space,
    independent_components,
    mode_automaton,
    pipeline_network,
    random_network,
    sample_design,
    star_network,
    token_ring,
)

__all__ = [
    # grammar
    "Sort", "Rule", "Grammar", "ComponentSpec", "SORTS",
    "BOOL", "NUM", "BOOL_SAMPLED", "NUM_SAMPLED",
    "default_rules", "build_component", "sample_component", "enumerate_components",
    # topologies
    "FAMILIES", "GeneratedDesign", "sample_design", "design_space",
    "independent_components", "pipeline_network", "star_network",
    "chain_of_buffers", "token_ring", "arbiter_tree", "crossbar",
    "clock_divider", "mode_automaton", "random_network",
    # differential
    "METHODS", "PROPERTIES", "CONTRACTS", "AgreementContract",
    "Disagreement", "FormulationGap", "DifferentialResult",
    "DifferentialReport", "ShrunkCounterexample",
    "verdict_matrix", "run_design", "run_matrix", "shrink",
    # corpus
    "Corpus", "CorpusEntry", "Drift", "build_corpus", "build_entry",
    "check_corpus", "seed_store",
]
