"""``python -m repro.gen`` / ``repro-gen`` — the scenario-generator CLI.

Subcommands::

    sample        --seed N [--count K] [--depth D] [--family F ...]
                  [--verify] [--max-states N]
    enumerate     --sort bool|num|bool@sampled|num@sampled --depth D
                  [--signal name:kind ...] [--limit K]
    differential  --seed N --count K [--depth D] [--max-states N]
                  [--no-shrink]
    corpus build  --out FILE --seed N --count K [--depth D] [--max-states N]
    corpus check  --corpus FILE [--store DIR]
    corpus seed-store --corpus FILE --store DIR

Everything that draws randomness takes an explicit ``--seed``; the tool
never consults wall-clock time, so a command line is a complete, replayable
description of its output.  All outputs are JSON on stdout, one object per
line, matching the ``repro-serve`` CLI convention.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.gen.corpus import Corpus, build_corpus, check_corpus, seed_store
from repro.gen.differential import run_matrix
from repro.gen.grammar import SORTS, Grammar
from repro.gen.topologies import FAMILIES, design_space
from repro.lang.printer import format_canonical, format_expression


def _emit(payload: object) -> None:
    json.dump(payload, sys.stdout)
    sys.stdout.write("\n")


def _seeds(arguments: argparse.Namespace) -> range:
    return range(arguments.seed, arguments.seed + arguments.count)


def _sample(arguments: argparse.Namespace) -> int:
    from repro.api.session import Design

    families = tuple(arguments.family) if arguments.family else FAMILIES
    for generated in design_space(
        _seeds(arguments), families=families, depth=arguments.depth
    ):
        design = Design.from_generated(generated)
        record = {
            "seed": generated.seed,
            "name": generated.name,
            "family": generated.family,
            "params": dict(generated.params),
            "components": len(generated.components),
            "digest": design.digest(),
        }
        if arguments.verify:
            record["verdicts"] = {
                prop: bool(design.verify(prop, max_states=arguments.max_states).holds)
                for prop in ("weak-endochrony", "non-blocking")
            }
        _emit(record)
    return 0


def _parse_sort(text: str):
    for sort in SORTS:
        if text in (str(sort), sort.kind if sort.clock == "sync" else None):
            return sort
    raise argparse.ArgumentTypeError(
        f"unknown sort {text!r}; expected one of {', '.join(str(s) for s in SORTS)}"
    )


def _enumerate(arguments: argparse.Namespace) -> int:
    vocabulary = {}
    for item in arguments.signal or []:
        name, _, kind = item.partition(":")
        if kind not in ("bool", "num"):
            raise SystemExit(f"--signal expects name:bool or name:num, got {item!r}")
        vocabulary[name] = kind
    grammar = Grammar()
    expressions = grammar.enumerate(arguments.sort, arguments.depth, vocabulary)
    limit = arguments.limit if arguments.limit is not None else len(expressions)
    for expression in expressions[:limit]:
        _emit({"expression": format_expression(expression)})
    _emit(
        {
            "sort": str(arguments.sort),
            "depth": arguments.depth,
            "unique_expressions": len(expressions),
            "printed": min(limit, len(expressions)),
        }
    )
    return 0


def _differential(arguments: argparse.Namespace) -> int:
    report = run_matrix(
        _seeds(arguments),
        depth=arguments.depth,
        max_states=arguments.max_states,
        shrink_disagreements=not arguments.no_shrink,
    )
    for disagreement in report.disagreements:
        _emit({"disagreement": disagreement.describe()})
    for shrunk in report.shrunk:
        _emit(
            {
                "shrunk": shrunk.disagreement.describe(),
                "components": [
                    format_canonical(component) for component in shrunk.components
                ],
            }
        )
    for gap in report.gaps:
        _emit(
            {
                "formulation_gap": {
                    "design": gap.design_name,
                    "prop": gap.prop,
                    "method": gap.method,
                    "exact": gap.exact_verdict,
                    "related": gap.related_verdict,
                }
            }
        )
    _emit(report.summary())
    return 0 if report.agreed else 1


def _corpus_build(arguments: argparse.Namespace) -> int:
    corpus = build_corpus(
        _seeds(arguments), depth=arguments.depth, max_states=arguments.max_states
    )
    path = corpus.save(arguments.out)
    _emit({"corpus": str(path), "entries": len(corpus)})
    return 0


def _corpus_check(arguments: argparse.Namespace) -> int:
    corpus = Corpus.load(arguments.corpus)
    context = None
    if arguments.store:
        from repro.api.session import AnalysisContext
        from repro.service.store import ArtifactStore

        context = AnalysisContext()
        context.artifact_cache = ArtifactStore(arguments.store)
    drift = check_corpus(corpus, context=context)
    for item in drift:
        _emit({"drift": item.describe()})
    _emit({"corpus": arguments.corpus, "entries": len(corpus), "drift": len(drift)})
    return 0 if not drift else 1


def _corpus_seed_store(arguments: argparse.Namespace) -> int:
    from repro.service.store import ArtifactStore

    corpus = Corpus.load(arguments.corpus)
    written = seed_store(corpus, ArtifactStore(arguments.store))
    _emit(
        {
            "corpus": arguments.corpus,
            "store": arguments.store,
            "verdicts_written": written,
        }
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gen",
        description="Typed grammar-driven design generator with differential testing",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def _seeded(command: argparse.ArgumentParser, count_default: int = 1) -> None:
        command.add_argument("--seed", type=int, required=True, help="first seed")
        command.add_argument(
            "--count", type=int, default=count_default,
            help="how many consecutive seeds to draw",
        )
        command.add_argument("--depth", type=int, default=2, help="grammar depth bound")

    sample = commands.add_parser("sample", help="draw seeded designs")
    _seeded(sample)
    sample.add_argument(
        "--family", action="append", choices=FAMILIES,
        help="restrict to specific families (repeatable)",
    )
    sample.add_argument("--verify", action="store_true", help="also verify each design")
    sample.add_argument("--max-states", type=int, default=256)
    sample.set_defaults(handler=_sample)

    enumerate_ = commands.add_parser(
        "enumerate", help="enumerate unique grammar expressions of a sort"
    )
    enumerate_.add_argument("--sort", type=_parse_sort, required=True)
    enumerate_.add_argument("--depth", type=int, default=1)
    enumerate_.add_argument(
        "--signal", action="append", help="vocabulary entry name:bool or name:num"
    )
    enumerate_.add_argument("--limit", type=int, default=20)
    # symmetry with the other subcommands: enumeration is deterministic, the
    # seed does not change the output but a fixed interface keeps scripts uniform
    enumerate_.add_argument("--seed", type=int, default=0, help=argparse.SUPPRESS)
    enumerate_.set_defaults(handler=_enumerate)

    differential = commands.add_parser(
        "differential", help="run the differential matrix over seeded designs"
    )
    _seeded(differential, count_default=50)
    differential.add_argument("--max-states", type=int, default=256)
    differential.add_argument(
        "--no-shrink", action="store_true", help="skip counterexample shrinking"
    )
    differential.set_defaults(handler=_differential)

    corpus = commands.add_parser("corpus", help="build / check the design corpus")
    corpus_commands = corpus.add_subparsers(dest="corpus_command", required=True)

    corpus_build = corpus_commands.add_parser("build", help="verify designs and save")
    _seeded(corpus_build, count_default=50)
    corpus_build.add_argument("--out", required=True, help="corpus JSON path")
    corpus_build.add_argument("--max-states", type=int, default=256)
    corpus_build.set_defaults(handler=_corpus_build)

    corpus_check = corpus_commands.add_parser(
        "check", help="regenerate and re-verify, failing on drift"
    )
    corpus_check.add_argument("--corpus", required=True, help="corpus JSON path")
    corpus_check.add_argument("--store", help="artifact store to answer queries warm")
    corpus_check.add_argument("--seed", type=int, default=0, help=argparse.SUPPRESS)
    corpus_check.set_defaults(handler=_corpus_check)

    corpus_seed = corpus_commands.add_parser(
        "seed-store", help="file recorded verdicts into an artifact store"
    )
    corpus_seed.add_argument("--corpus", required=True)
    corpus_seed.add_argument("--store", required=True)
    corpus_seed.add_argument("--seed", type=int, default=0, help=argparse.SUPPRESS)
    corpus_seed.set_defaults(handler=_corpus_seed_store)
    return parser


def main(argv=None) -> int:
    arguments = build_parser().parse_args(argv)
    return arguments.handler(arguments)


if __name__ == "__main__":
    sys.exit(main())
