"""A persisted corpus of generated designs with known verdicts.

The corpus is the regression memory of the generator subsystem: a JSON file
of entries, one per seeded design, each carrying

* **provenance** — ``seed``, ``family``, ``params``, generation ``depth``:
  the complete recipe, since :func:`repro.gen.topologies.sample_design` is
  deterministic from an explicit seed;
* **identity** — the design's :func:`~repro.lang.printer.canonical_digest`
  plus the per-component canonical forms (α- and order-invariant), so an
  entry is content-addressed with exactly the identity the
  :class:`~repro.service.store.ArtifactStore` and the session facade key
  verdicts by;
* **verdicts** — the full :meth:`~repro.api.results.Verdict.to_dict`
  payload of every recorded ``(property, method)`` query.

That combination makes one file serve two roles:

* **regression oracle** — :func:`check_corpus` regenerates each design from
  its seed, asserts the digest still matches (catching *generator* drift:
  a grammar or topology change that silently alters what a seed means),
  then re-verifies every recorded query and compares outcomes (catching
  *engine* drift: a backend change that flips a verdict).  CI runs this on
  every pull request.
* **warm-store seed** — :func:`seed_store` files every recorded verdict
  into an :class:`~repro.service.store.ArtifactStore` under the design
  digest and the same ``verdict-*`` object names the session facade uses,
  so a fresh service answers the corpus's queries from disk without
  recomputing (and the service benchmarks get a realistic mixed
  cold/warm workload from it).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.gen.topologies import FAMILIES, GeneratedDesign, sample_design
from repro.lang.printer import format_canonical, options_fingerprint

#: the (property, method) queries recorded for every corpus entry
DEFAULT_QUERIES: Tuple[Tuple[str, str], ...] = tuple(
    (prop, method)
    for prop in ("weak-endochrony", "non-blocking")
    for method in ("static", "explicit", "compiled", "symbolic")
)

CORPUS_VERSION = 1


def _query_key(prop: str, method: str) -> str:
    return f"{prop}|{method}"


@dataclass(frozen=True)
class CorpusEntry:
    """One design of the corpus: provenance, identity and known verdicts."""

    seed: int
    name: str
    family: str
    params: Mapping[str, object]
    depth: int
    digest: str
    components: Tuple[str, ...]  # canonical forms, for inspection/diffing
    verdicts: Mapping[str, Mapping[str, object]]  # "prop|method" -> Verdict payload

    def regenerate(self) -> GeneratedDesign:
        """The design this entry describes, rebuilt from its seed."""
        return sample_design(self.seed, depth=self.depth)

    def holds(self, prop: str, method: str) -> Optional[bool]:
        payload = self.verdicts.get(_query_key(prop, method))
        return None if payload is None else bool(payload["holds"])

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "name": self.name,
            "family": self.family,
            "params": dict(self.params),
            "depth": self.depth,
            "digest": self.digest,
            "components": list(self.components),
            "verdicts": {key: dict(value) for key, value in self.verdicts.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "CorpusEntry":
        return cls(
            seed=int(payload["seed"]),
            name=str(payload["name"]),
            family=str(payload["family"]),
            params=dict(payload.get("params", {})),
            depth=int(payload.get("depth", 2)),
            digest=str(payload["digest"]),
            components=tuple(payload.get("components", ())),
            verdicts={
                str(key): dict(value)
                for key, value in payload.get("verdicts", {}).items()
            },
        )


@dataclass
class Corpus:
    """A set of corpus entries plus the query options they were decided under.

    ``max_states`` is part of the corpus, not of each entry: the recorded
    verdicts are only comparable to re-runs under the same exploration
    budget, and the store keys (``options_fingerprint``) depend on it.
    """

    entries: List[CorpusEntry] = field(default_factory=list)
    max_states: int = 256
    version: int = CORPUS_VERSION

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def options(self) -> Dict[str, object]:
        return {"max_states": self.max_states}

    def options_key(self) -> str:
        return options_fingerprint(self.options())

    def by_digest(self) -> Dict[str, CorpusEntry]:
        return {entry.digest: entry for entry in self.entries}

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "max_states": self.max_states,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Corpus":
        version = int(payload.get("version", CORPUS_VERSION))
        if version > CORPUS_VERSION:
            raise ValueError(
                f"corpus version {version} is newer than supported {CORPUS_VERSION}"
            )
        return cls(
            entries=[
                CorpusEntry.from_dict(item) for item in payload.get("entries", ())
            ],
            max_states=int(payload.get("max_states", 256)),
            version=version,
        )

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Corpus":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def build_entry(
    generated: GeneratedDesign,
    context=None,
    queries: Sequence[Tuple[str, str]] = DEFAULT_QUERIES,
    max_states: int = 256,
    depth: int = 2,
) -> CorpusEntry:
    """Verify one generated design and record the outcome as a corpus entry."""
    design = generated.design(context=context)
    verdicts = design.verify_many(list(queries), max_states=max_states)
    return CorpusEntry(
        seed=generated.seed if generated.seed is not None else -1,
        name=generated.name,
        family=generated.family,
        params=dict(generated.params),
        depth=depth,
        digest=design.digest(),
        components=tuple(
            sorted(format_canonical(component) for component in generated.components)
        ),
        verdicts={
            _query_key(prop, method): verdict.to_dict()
            for (prop, method), verdict in zip(queries, verdicts)
        },
    )


def build_corpus(
    seeds: Iterable[int],
    families: Sequence[str] = FAMILIES,
    depth: int = 2,
    context=None,
    queries: Sequence[Tuple[str, str]] = DEFAULT_QUERIES,
    max_states: int = 256,
) -> Corpus:
    """Generate, verify and record one corpus entry per seed."""
    corpus = Corpus(max_states=max_states)
    for seed in seeds:
        generated = sample_design(seed, families=families, depth=depth)
        corpus.entries.append(
            build_entry(
                generated,
                context=context,
                queries=queries,
                max_states=max_states,
                depth=depth,
            )
        )
    return corpus


@dataclass(frozen=True)
class Drift:
    """One divergence between the corpus and the current code."""

    entry_name: str
    seed: int
    kind: str  # "digest" or "verdict"
    detail: str

    def describe(self) -> str:
        return f"{self.entry_name} (seed {self.seed}): {self.kind} drift — {self.detail}"


def check_corpus(corpus: Corpus, context=None) -> List[Drift]:
    """Re-derive every entry and report all drift against the recorded state.

    Two checks per entry, in order: the regenerated design's digest must
    equal the recorded one (generator determinism — a failure here means a
    seed no longer denotes the same design, and the corpus must be
    explicitly rebuilt, not silently re-verified); then every recorded
    query is re-run and its outcome compared (engine regression).  An
    entry whose digest drifted is not re-verified — its recorded verdicts
    describe a design that no longer exists.
    """
    drift: List[Drift] = []
    for entry in corpus.entries:
        generated = entry.regenerate()
        design = generated.design(context=context)
        digest = design.digest()
        if digest != entry.digest:
            drift.append(
                Drift(
                    entry_name=entry.name,
                    seed=entry.seed,
                    kind="digest",
                    detail=f"recorded {entry.digest[:12]}…, regenerated {digest[:12]}…",
                )
            )
            continue
        queries = [tuple(key.split("|", 1)) for key in entry.verdicts]
        verdicts = design.verify_many(
            [(prop, method) for prop, method in queries], **corpus.options()
        )
        for (prop, method), verdict in zip(queries, verdicts):
            recorded = entry.holds(prop, method)
            if bool(verdict.holds) != recorded:
                drift.append(
                    Drift(
                        entry_name=entry.name,
                        seed=entry.seed,
                        kind="verdict",
                        detail=(
                            f"{prop} via {method}: recorded holds={recorded}, "
                            f"now holds={bool(verdict.holds)}"
                        ),
                    )
                )
    return drift


def seed_store(corpus: Corpus, store) -> int:
    """File every recorded verdict into an artifact store; returns the count.

    Objects land under ``(design digest, verdict-<prop>-<method>-<options>)``
    — the exact keys :meth:`repro.api.Design.verify` resolves through — so
    a context attached to the store afterwards answers the corpus's
    queries warm, without recomputation.
    """
    options_key = corpus.options_key()
    written = 0
    for entry in corpus.entries:
        for key, payload in entry.verdicts.items():
            prop, method = key.split("|", 1)
            store.store_verdict(entry.digest, prop, method, options_key, dict(payload))
            written += 1
    return written
