"""Differential testing of the four verification engines against each other.

Every generated design is pushed through all four backends of
:meth:`repro.api.Design.verify` — ``static``, ``explicit``, ``compiled``,
``symbolic`` — for each checked property, and the verdict matrix is held to
the :data:`CONTRACTS` below.  The contract is *not* "all four agree": the
methods do not all decide the same predicate, and pretending they do would
either mask real engine bugs or reject correct engines.  What the codebase
actually promises, and what this harness enforces, is:

* **exact agreement classes** — methods that decide the same predicate on
  the same abstraction must return identical verdicts.  ``explicit`` and
  ``compiled`` both check Definition 2's diamond axioms on the product LTS
  (the compiled engine is a BDD-backed reimplementation of the same
  semantics, with a documented interpreter fallback outside the boolean
  fragment); for **non-blocking** the ``symbolic`` backend also decides the
  very same Definition 4, so all three must agree exactly.
* **soundness implications** — the static criterion (Theorem 1) is
  sufficient, not complete: ``static`` holding must imply the
  model-checking class holds; ``static`` failing implies nothing.
* **related formulations** — ``symbolic`` weak endochrony is the paper's
  Section 4.1 *invariant* formulation, quantified over clock-hierarchy
  root pairs.  On single-rooted designs it coincides with Definition 2,
  but on multi-rooted products the two genuinely diverge in both
  directions — e.g. an arbiter tree whose two leaf arbiters are mutually
  exclusive by construction fails ``StateIndependent`` while Definition
  2's axioms hold (the conflicting reactions share the selector signal and
  are therefore not independent), and normalization-introduced local
  signals can fail axiom 2b below the root pairs the invariants quantify
  over.  The harness still runs the method on every design and *records*
  the divergence as a :class:`FormulationGap` — tracked, counted, visible
  in reports — without calling it an engine disagreement.

Any violation of an exact class or an implication is a
:class:`Disagreement`; :func:`shrink` reduces the offending design to a
minimal counterexample (greedy component deletion, then per-component
equation deletion) that still exhibits the same disagreement, which is the
artifact a human wants to debug an engine with.
"""

from __future__ import annotations

import signal as _signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.gen.topologies import FAMILIES, GeneratedDesign, design_space
from repro.lang.normalize import NormalizedProcess

#: the four verification backends, in reporting order
METHODS: Tuple[str, ...] = ("static", "explicit", "compiled", "symbolic")

#: the properties every design is checked for
PROPERTIES: Tuple[str, ...] = ("weak-endochrony", "non-blocking")


@dataclass(frozen=True)
class AgreementContract:
    """What "the engines agree" means for one property.

    ``exact`` lists the methods that decide the same predicate and must
    return identical verdicts; ``implications`` lists ``(weaker, stronger)``
    pairs where the first method holding must imply the second holds
    (sufficient criteria); ``related`` lists methods that decide a
    *different but related* formulation — they are run and recorded, and a
    divergence from the exact class is reported as a formulation gap, not
    an engine disagreement.
    """

    exact: Tuple[str, ...]
    implications: Tuple[Tuple[str, str], ...] = ()
    related: Tuple[str, ...] = ()


#: the per-property agreement contract (see the module docstring for why
#: symbolic weak endochrony is `related` rather than `exact`)
CONTRACTS: Mapping[str, AgreementContract] = {
    "weak-endochrony": AgreementContract(
        exact=("explicit", "compiled"),
        implications=(("static", "explicit"), ("static", "compiled")),
        related=("symbolic",),
    ),
    "non-blocking": AgreementContract(
        exact=("explicit", "compiled", "symbolic"),
        implications=(("static", "explicit"),),
    ),
}


@dataclass(frozen=True)
class Disagreement:
    """One contract violation: the thing differential testing exists to find."""

    prop: str
    kind: str  # "exact" or "implication"
    methods: Tuple[str, ...]
    verdicts: Mapping[str, bool]
    design_name: str
    seed: Optional[int] = None
    family: Optional[str] = None

    def describe(self) -> str:
        votes = ", ".join(f"{m}={self.verdicts[m]}" for m in self.methods)
        return (
            f"{self.design_name}: {self.prop} {self.kind} violation "
            f"({votes})"
        )


@dataclass(frozen=True)
class FormulationGap:
    """A recorded divergence between an exact class and a related method."""

    prop: str
    method: str
    exact_verdict: bool
    related_verdict: bool
    design_name: str
    seed: Optional[int] = None
    family: Optional[str] = None


@dataclass
class DifferentialResult:
    """The full verdict matrix of one design, checked against the contracts."""

    design_name: str
    verdicts: Dict[str, Dict[str, bool]]  # prop -> method -> holds
    disagreements: List[Disagreement] = field(default_factory=list)
    gaps: List[FormulationGap] = field(default_factory=list)
    seed: Optional[int] = None
    family: Optional[str] = None

    @property
    def agreed(self) -> bool:
        return not self.disagreements


@dataclass
class DifferentialReport:
    """The aggregate of a differential run over a seeded design matrix."""

    results: List[DifferentialResult] = field(default_factory=list)
    shrunk: List["ShrunkCounterexample"] = field(default_factory=list)

    @property
    def designs(self) -> int:
        return len(self.results)

    @property
    def disagreements(self) -> List[Disagreement]:
        return [d for result in self.results for d in result.disagreements]

    @property
    def gaps(self) -> List[FormulationGap]:
        return [g for result in self.results for g in result.gaps]

    @property
    def agreed(self) -> bool:
        return not self.disagreements

    def summary(self) -> Dict[str, object]:
        return {
            "designs": self.designs,
            "disagreements": len(self.disagreements),
            "formulation_gaps": len(self.gaps),
            "agreed": self.agreed,
        }


def verdict_matrix(
    design,
    properties: Sequence[str] = PROPERTIES,
    methods: Sequence[str] = METHODS,
    max_states: int = 256,
) -> Dict[str, Dict[str, bool]]:
    """``prop -> method -> holds`` over a :class:`repro.api.Design`.

    Queries go through :meth:`Design.verify_many`, so verdicts are artifact
    nodes: a warm context (or attached store) answers repeats for free.
    """
    specs = [(prop, method) for prop in properties for method in methods]
    verdicts = design.verify_many(specs, max_states=max_states)
    matrix: Dict[str, Dict[str, bool]] = {prop: {} for prop in properties}
    for (prop, method), verdict in zip(specs, verdicts):
        matrix[prop][method] = bool(verdict.holds)
    return matrix


def check_contract(
    matrix: Mapping[str, Mapping[str, bool]],
    design_name: str,
    seed: Optional[int] = None,
    family: Optional[str] = None,
    contracts: Mapping[str, AgreementContract] = CONTRACTS,
) -> Tuple[List[Disagreement], List[FormulationGap]]:
    """Hold one verdict matrix to the per-property agreement contracts."""
    disagreements: List[Disagreement] = []
    gaps: List[FormulationGap] = []
    for prop, row in matrix.items():
        contract = contracts.get(prop)
        if contract is None:
            continue
        exact = {method: row[method] for method in contract.exact if method in row}
        if len(set(exact.values())) > 1:
            disagreements.append(
                Disagreement(
                    prop=prop,
                    kind="exact",
                    methods=tuple(exact),
                    verdicts=dict(exact),
                    design_name=design_name,
                    seed=seed,
                    family=family,
                )
            )
        for weaker, stronger in contract.implications:
            if weaker in row and stronger in row and row[weaker] and not row[stronger]:
                disagreements.append(
                    Disagreement(
                        prop=prop,
                        kind="implication",
                        methods=(weaker, stronger),
                        verdicts={weaker: row[weaker], stronger: row[stronger]},
                        design_name=design_name,
                        seed=seed,
                        family=family,
                    )
                )
        if exact:
            # the exact class is single-valued here (or already reported);
            # compare related formulations against its majority value
            reference = next(iter(exact.values()))
            for method in contract.related:
                if method in row and row[method] != reference:
                    gaps.append(
                        FormulationGap(
                            prop=prop,
                            method=method,
                            exact_verdict=reference,
                            related_verdict=row[method],
                            design_name=design_name,
                            seed=seed,
                            family=family,
                        )
                    )
    return disagreements, gaps


def run_design(
    generated: GeneratedDesign,
    context=None,
    properties: Sequence[str] = PROPERTIES,
    methods: Sequence[str] = METHODS,
    max_states: int = 256,
) -> DifferentialResult:
    """One design through the full matrix, checked against the contracts."""
    design = generated.design(context=context)
    matrix = verdict_matrix(
        design, properties=properties, methods=methods, max_states=max_states
    )
    disagreements, gaps = check_contract(
        matrix, generated.name, seed=generated.seed, family=generated.family
    )
    return DifferentialResult(
        design_name=generated.name,
        verdicts=matrix,
        disagreements=disagreements,
        gaps=gaps,
        seed=generated.seed,
        family=generated.family,
    )


def run_matrix(
    seeds: Iterable[int],
    families: Sequence[str] = FAMILIES,
    depth: int = 2,
    context=None,
    properties: Sequence[str] = PROPERTIES,
    methods: Sequence[str] = METHODS,
    max_states: int = 256,
    shrink_disagreements: bool = True,
) -> DifferentialReport:
    """The seeded differential run: every design of the matrix, contracted.

    This is what CI's differential job executes.  Each disagreement is
    shrunk to a minimal counterexample design (unless
    ``shrink_disagreements`` is off), because "seed 4711 disagrees" is not
    actionable and "these two equations disagree" is.
    """
    report = DifferentialReport()
    for generated in design_space(seeds, families=families, depth=depth):
        result = run_design(
            generated,
            context=context,
            properties=properties,
            methods=methods,
            max_states=max_states,
        )
        report.results.append(result)
        if shrink_disagreements:
            for disagreement in result.disagreements:
                report.shrunk.append(
                    shrink(generated, disagreement, max_states=max_states)
                )
    return report


# ---------------------------------------------------------------------------
# Shrinking: a disagreement is only useful once it is minimal
# ---------------------------------------------------------------------------

@dataclass
class ShrunkCounterexample:
    """A disagreement reduced to a minimal design still exhibiting it."""

    disagreement: Disagreement
    components: Tuple[NormalizedProcess, ...]
    removed_components: int
    removed_equations: int

    def sources(self) -> List[str]:
        """The minimal counterexample as re-parseable Signal source texts."""
        from repro.lang.printer import format_normalized_source

        return [format_normalized_source(component) for component in self.components]


class _ShrinkTimeout(Exception):
    """A candidate blew its verification budget during shrinking."""


@contextmanager
def _time_limit(seconds: Optional[float]) -> Iterator[None]:
    """Abort the block with :class:`_ShrinkTimeout` after ``seconds``.

    Dropping an equation can produce a degenerate process whose reaction
    enumeration explodes (an unconstrained signal multiplies every state's
    successor set), so candidate checks need a wall-clock budget, not just
    a state bound.  SIGALRM-based: active only on platforms that have it
    and in the main thread; elsewhere the block runs unbounded.
    """
    usable = (
        seconds is not None
        and hasattr(_signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _raise(signum, frame):  # pragma: no cover - timing dependent
        raise _ShrinkTimeout()

    previous = _signal.signal(_signal.SIGALRM, _raise)
    _signal.setitimer(_signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        _signal.setitimer(_signal.ITIMER_REAL, 0.0)
        _signal.signal(_signal.SIGALRM, previous)


def _still_disagrees(
    components: Sequence[NormalizedProcess],
    disagreement: Disagreement,
    max_states: int,
    candidate_timeout: Optional[float] = 5.0,
) -> bool:
    """Does the reduced component list still violate the same contract item?

    A reduced candidate that crashes an engine (dangling signal, empty
    process) or blows the verification budget does not *reproduce* the
    disagreement — treat it as a failed shrink step, never as a success.
    """
    if not components:
        return False
    from repro.api.session import Design

    try:
        with _time_limit(candidate_timeout):
            design = Design(name="shrink", components=list(components))
            row = {
                method: bool(
                    design.verify(
                        disagreement.prop, method=method, max_states=max_states
                    ).holds
                )
                for method in disagreement.methods
            }
    except Exception:
        return False
    if disagreement.kind == "implication":
        weaker, stronger = disagreement.methods
        return row[weaker] and not row[stronger]
    return len(set(row.values())) > 1


def _drop_equation(
    component: NormalizedProcess, index: int
) -> Optional[NormalizedProcess]:
    """``component`` without equation ``index`` (interface preserved)."""
    equations = list(component.equations)
    if not (0 <= index < len(equations)) or len(equations) <= 1:
        return None
    del equations[index]
    return NormalizedProcess(
        name=component.name,
        inputs=component.inputs,
        outputs=component.outputs,
        locals=component.locals,
        equations=tuple(equations),
        types=dict(component.types),
    )


def shrink(
    generated: GeneratedDesign,
    disagreement: Disagreement,
    max_states: int = 256,
    candidate_timeout: Optional[float] = 5.0,
) -> ShrunkCounterexample:
    """Greedily minimize a disagreeing design.

    Two passes to fixpoint: delete whole components (the coarse axis — a
    disagreement rarely needs every component of a crossbar), then delete
    individual equations inside the surviving components (the fine axis).
    Every candidate is re-checked with :func:`_still_disagrees`; a step
    that loses the disagreement — or times out (see :func:`_time_limit`) —
    is rolled back.  Greedy one-at-a-time deletion is quadratic in the
    worst case but the generated designs are small (≤ ~10 components) and
    each candidate check is budgeted.
    """
    components: List[NormalizedProcess] = list(generated.components)
    removed_components = 0
    removed_equations = 0

    changed = True
    while changed and len(components) > 1:
        changed = False
        for index in range(len(components) - 1, -1, -1):
            candidate = components[:index] + components[index + 1:]
            if _still_disagrees(candidate, disagreement, max_states, candidate_timeout):
                components = candidate
                removed_components += 1
                changed = True

    changed = True
    while changed:
        changed = False
        for c_index in range(len(components)):
            e_index = len(components[c_index].equations) - 1
            while e_index >= 0:
                reduced = _drop_equation(components[c_index], e_index)
                if reduced is not None:
                    candidate = list(components)
                    candidate[c_index] = reduced
                    if _still_disagrees(candidate, disagreement, max_states, candidate_timeout):
                        components = candidate
                        removed_equations += 1
                        changed = True
                e_index -= 1

    return ShrunkCounterexample(
        disagreement=replace(disagreement, design_name=f"{generated.name}_min"),
        components=tuple(components),
        removed_components=removed_components,
        removed_equations=removed_equations,
    )
