"""A typed grammar over the Signal process language.

Scenario diversity is the fuel of differential testing: the verification
engines (static criterion, explicit, compiled, symbolic) are only as
trustworthy as the designs they are exercised on.  This module defines a
**typed grammar** whose rules are keyed by a :class:`Sort` — the pair of a
value type (``bool`` / ``num``) and a clock class (``sync``: the expression
lives on its component's master clock; ``sampled``: it lives on a proper
subclock introduced by ``when``) — so that every derivation is a well-typed,
well-clocked Signal expression by construction:

* functional rules (``and``, ``or``, ``not``, ``+``, ``-``, comparisons)
  keep their operands on one clock, as the clock calculus requires of
  ``x = y f z``;
* ``pre`` rules delay a flow on its own clock (initial values are part of
  the rule, keeping derivations reproducible);
* the **merge** rule ``(e when b) default e'`` samples and re-merges on one
  clock — its result is again ``sync``, which is what lets merges nest
  freely without breaking clock consistency;
* the **when** rule is the only one that *changes* clock class: it produces
  the ``sampled`` sort used for outputs whose clock is a proper subclock of
  the component's activation (the clock-hierarchy workout).

Two consumers, both deterministic:

* :meth:`Grammar.enumerate` — depth-bounded *unique-expression* enumeration
  (every expression of structural depth exactly ``d`` combines operands of
  depth ``< d`` with at least one of depth ``d - 1``; results are
  deduplicated per ``(sort, depth, vocabulary)`` and memoized);
* :meth:`Grammar.sample` — weight-driven sampling from an explicit
  ``random.Random(seed)`` — **never** wall-clock time — so a seed is a
  complete, replayable identity for a derivation.

On top of expressions, :func:`sample_component` and
:func:`enumerate_components` derive whole :class:`ProcessDefinition`
components in the shape the paper's analyses expect — a boolean activation
input pacing the data inputs (``x^ = [go]``), optional ``pre`` state
feedback, one grammar-derived expression per output — which is what the
topology generators of :mod:`repro.gen.topologies` compose into
multi-component designs.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.lang.ast import (
    BinaryOp,
    Const,
    Default,
    Expression,
    Pre,
    ProcessDefinition,
    Ref,
    UnaryOp,
    When,
)
from repro.lang.builder import ProcessBuilder, tick, when_true


# ---------------------------------------------------------------------------
# Sorts: value type × clock class
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Sort:
    """The type a grammar rule is keyed by: value kind × clock class.

    ``kind`` is the coarse Signal type (``"bool"`` or ``"num"``, matching
    :func:`repro.lang.normalize.infer_types`); ``clock`` is ``"sync"`` for
    expressions on the component's master clock and ``"sampled"`` for
    expressions living on a proper subclock.
    """

    kind: str
    clock: str = "sync"

    def __post_init__(self) -> None:
        if self.kind not in ("bool", "num"):
            raise ValueError(f"unknown value kind {self.kind!r}")
        if self.clock not in ("sync", "sampled"):
            raise ValueError(f"unknown clock class {self.clock!r}")

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.kind}@{self.clock}"


BOOL = Sort("bool", "sync")
NUM = Sort("num", "sync")
BOOL_SAMPLED = Sort("bool", "sampled")
NUM_SAMPLED = Sort("num", "sampled")

SORTS = (BOOL, NUM, BOOL_SAMPLED, NUM_SAMPLED)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Rule:
    """One typed production: ``sort ::= name(operand sorts...)``.

    ``build`` combines already-derived operand expressions into the result
    expression; it is a pure function of its operands (initial values of
    ``pre`` rules are baked into the rule itself), which is what keeps
    enumeration and seeded sampling deterministic.
    """

    name: str
    sort: Sort
    operands: Tuple[Sort, ...]
    build: Callable[..., Expression]
    weight: float = 1.0

    @property
    def arity(self) -> int:
        return len(self.operands)


def _binary(operator: str) -> Callable[[Expression, Expression], Expression]:
    def build(left: Expression, right: Expression) -> Expression:
        return BinaryOp(operator, left, right)

    return build


def _pre(initial: object) -> Callable[[Expression], Expression]:
    def build(operand: Expression) -> Expression:
        return Pre(operand, initial)

    return build


def _merge(preferred: Expression, condition: Expression, alternative: Expression) -> Expression:
    # (preferred when condition) default alternative: sampled then re-merged
    # on the operands' shared clock, so the result is again `sync`
    return Default(When(preferred, condition), alternative)


def _when(operand: Expression, condition: Expression) -> Expression:
    return When(operand, condition)


def default_rules() -> Tuple[Rule, ...]:
    """The standard rule set over the paper's expression language.

    Comparisons (``<``, ``=``) produce booleans *derived from numeric data*,
    deliberately: such components fall outside the compiled engine's boolean
    fragment and exercise its documented interpreter fallback, which is
    exactly the kind of engine boundary differential testing must cover.
    """
    return (
        # boolean, master clock
        Rule("not", BOOL, (BOOL,), lambda e: UnaryOp("not", e)),
        Rule("and", BOOL, (BOOL, BOOL), _binary("and")),
        Rule("or", BOOL, (BOOL, BOOL), _binary("or")),
        Rule("pre-true", BOOL, (BOOL,), _pre(True)),
        Rule("pre-false", BOOL, (BOOL,), _pre(False)),
        Rule("lt", BOOL, (NUM, NUM), _binary("<"), weight=0.5),
        Rule("eq", BOOL, (NUM, NUM), _binary("="), weight=0.25),
        Rule("merge-bool", BOOL, (BOOL, BOOL, BOOL), _merge, weight=0.75),
        # numeric, master clock
        Rule("add", NUM, (NUM, NUM), _binary("+")),
        Rule("sub", NUM, (NUM, NUM), _binary("-")),
        Rule("pre-zero", NUM, (NUM,), _pre(0)),
        Rule("pre-one", NUM, (NUM,), _pre(1)),
        Rule("merge-num", NUM, (NUM, BOOL, NUM), _merge, weight=0.75),
        # clock-changing rules: the only producers of the sampled sorts
        Rule("when-bool", BOOL_SAMPLED, (BOOL, BOOL), _when),
        Rule("when-num", NUM_SAMPLED, (NUM, BOOL), _when),
    )


#: constant terminals per value kind (small, hashable, digest-stable)
DEFAULT_CONSTANTS: Mapping[str, Tuple[object, ...]] = {
    "bool": (True, False),
    "num": (0, 1, 2),
}


# ---------------------------------------------------------------------------
# The grammar
# ---------------------------------------------------------------------------

class Grammar:
    """Typed rules plus enumeration and seeded sampling over a vocabulary.

    A *vocabulary* maps signal names to value kinds (``"bool"``/``"num"``);
    its entries are the reference terminals of every derivation.  All
    signals of one vocabulary are assumed synchronous (the component
    generators guarantee this with ``x^ = [go]`` pacing constraints), so a
    reference terminal always has the ``sync`` clock class.
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        constants: Optional[Mapping[str, Sequence[object]]] = None,
    ):
        self.rules: Tuple[Rule, ...] = tuple(rules if rules is not None else default_rules())
        self.constants: Dict[str, Tuple[object, ...]] = {
            kind: tuple(values)
            for kind, values in (constants or DEFAULT_CONSTANTS).items()
        }
        self._by_sort: Dict[Sort, Tuple[Rule, ...]] = {}
        for sort in SORTS:
            self._by_sort[sort] = tuple(rule for rule in self.rules if rule.sort == sort)
        #: enumeration memo: (sort, depth, vocabulary items) -> expressions
        self._enumerated: Dict[Tuple, Tuple[Expression, ...]] = {}

    def rules_for(self, sort: Sort) -> Tuple[Rule, ...]:
        return self._by_sort.get(sort, ())

    # -- terminals -------------------------------------------------------------
    def terminals(self, sort: Sort, vocabulary: Mapping[str, str]) -> Tuple[Expression, ...]:
        """The depth-0 expressions of ``sort``: typed references, then constants."""
        refs: List[Expression] = [
            Ref(name) for name, kind in vocabulary.items() if kind == sort.kind
        ]
        if sort.clock != "sync":
            # sampled expressions only arise from `when` rules; there are no
            # sampled terminals (a bare reference is on the master clock)
            return ()
        consts = [Const(value) for value in self.constants.get(sort.kind, ())]
        return tuple(refs) + tuple(consts)

    # -- unique enumeration ------------------------------------------------------
    def enumerate(
        self, sort: Sort, depth: int, vocabulary: Mapping[str, str]
    ) -> Tuple[Expression, ...]:
        """All unique expressions of ``sort`` with structural depth ≤ ``depth``.

        Ordered deterministically (shallow before deep, rules in declaration
        order, operands in enumeration order) so the result can seed corpus
        matrices reproducibly.
        """
        return tuple(
            itertools.chain.from_iterable(
                self.enumerate_exact(sort, d, vocabulary) for d in range(depth + 1)
            )
        )

    def enumerate_exact(
        self, sort: Sort, depth: int, vocabulary: Mapping[str, str]
    ) -> Tuple[Expression, ...]:
        """All unique expressions of ``sort`` with structural depth exactly ``depth``."""
        key = (sort, depth, tuple(sorted(vocabulary.items())))
        cached = self._enumerated.get(key)
        if cached is not None:
            return cached
        if depth == 0:
            result = self.terminals(sort, vocabulary)
        else:
            seen: set = set()
            out: List[Expression] = []
            for rule in self.rules_for(sort):
                if rule.arity == 0:
                    continue
                # operand depth profiles: all < depth, at least one == depth-1
                pools = [
                    [
                        (d, expression)
                        for d in range(depth)
                        for expression in self.enumerate_exact(
                            rule.operands[index], d, vocabulary
                        )
                    ]
                    for index in range(rule.arity)
                ]
                for choice in itertools.product(*pools):
                    if max(d for d, _ in choice) != depth - 1:
                        continue
                    expression = rule.build(*(e for _, e in choice))
                    if expression not in seen:
                        seen.add(expression)
                        out.append(expression)
            result = tuple(out)
        self._enumerated[key] = result
        return result

    def count(self, sort: Sort, depth: int, vocabulary: Mapping[str, str]) -> int:
        """How many unique expressions :meth:`enumerate` would produce."""
        return len(self.enumerate(sort, depth, vocabulary))

    # -- seeded sampling ---------------------------------------------------------
    def sample(
        self,
        sort: Sort,
        vocabulary: Mapping[str, str],
        rng: random.Random,
        max_depth: int = 3,
    ) -> Expression:
        """One weight-sampled expression of ``sort``, depth ≤ ``max_depth``.

        Deterministic from ``rng`` (seed it with an explicit value); at the
        depth bound only terminals remain eligible.  Raises
        :class:`ValueError` when the sort has neither applicable rules nor
        terminals (e.g. a sampled sort at depth 0).
        """
        terminals = self.terminals(sort, vocabulary)
        rules = self.rules_for(sort) if max_depth > 0 else ()
        # terminals weigh like one rule application so shallow derivations
        # stay common even with many rules
        choices: List[Tuple[float, object]] = [(rule.weight, rule) for rule in rules]
        if terminals:
            choices.append((float(len(rules)) or 1.0, None))
        if not choices:
            raise ValueError(f"sort {sort} has no derivation at depth {max_depth}")
        total = sum(weight for weight, _ in choices)
        pick = rng.random() * total
        chosen: object = choices[-1][1]
        for weight, candidate in choices:
            pick -= weight
            if pick <= 0:
                chosen = candidate
                break
        if chosen is None:
            return terminals[rng.randrange(len(terminals))]
        rule: Rule = chosen
        operands = [
            self.sample(operand_sort, vocabulary, rng, max_depth - 1)
            for operand_sort in rule.operands
        ]
        return rule.build(*operands)

    def sample_referencing(
        self,
        sort: Sort,
        vocabulary: Mapping[str, str],
        rng: random.Random,
        max_depth: int = 3,
        attempts: int = 8,
    ) -> Expression:
        """Like :meth:`sample` but guaranteed to reference at least one signal.

        A pure-constant equation has no clock of its own, which leaves the
        defined signal's clock unconstrained; component generation avoids
        that degenerate shape by resampling (bounded), then falling back to
        merging a reference in.
        """
        names = [name for name, kind in vocabulary.items() if kind == sort.kind]
        for _ in range(attempts):
            expression = self.sample(sort, vocabulary, rng, max_depth)
            if expression.free_signals():
                return expression
        if not names:
            # no same-kind signal to anchor the clock; synchronize through a
            # comparison (num) or parity (bool) of whatever the vocabulary has
            others = sorted(vocabulary)
            if not others:
                raise ValueError("vocabulary has no signals to reference")
            anchor = Ref(others[rng.randrange(len(others))])
            if sort.kind == "bool":
                return BinaryOp("=", anchor, anchor)
            return BinaryOp("-", anchor, anchor)
        anchor = Ref(names[rng.randrange(len(names))])
        expression = self.sample(sort, vocabulary, rng, max_depth - 1 if max_depth else 0)
        operator = "or" if sort.kind == "bool" else "+"
        return BinaryOp(operator, anchor, expression)


# ---------------------------------------------------------------------------
# Whole components
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ComponentSpec:
    """The interface/clock shape of one grammar-derived component.

    ``outputs`` maps output names to sorts: a ``sync`` output lives on the
    activation clock, a ``sampled`` output on a grammar-chosen subclock.
    ``state`` adds, per output, a ``pre`` feedback signal (``<out>_prev``)
    to the expression vocabulary, giving derivations access to their own
    history.
    """

    name: str
    inputs: Tuple[Tuple[str, str], ...] = ()  # (signal, kind)
    outputs: Tuple[Tuple[str, Sort], ...] = ()
    activation: Optional[str] = None  # defaults to "<name>_go"
    state: bool = True
    depth: int = 2

    def activation_name(self) -> str:
        return self.activation or f"{self.name}_go"


def _component_vocabulary(spec: ComponentSpec) -> Dict[str, str]:
    vocabulary: Dict[str, str] = {name: kind for name, kind in spec.inputs}
    if spec.state:
        for output, sort in spec.outputs:
            if sort.clock == "sync":
                vocabulary[f"{output}_prev"] = sort.kind
    return vocabulary


def build_component(
    spec: ComponentSpec, expressions: Mapping[str, Expression]
) -> ProcessDefinition:
    """Assemble a :class:`ProcessDefinition` from per-output expressions.

    The component follows the endochronous shape of the paper's examples:
    a boolean activation input paces every data input (``x^ = [go]``), the
    optional state signals are delayed copies of the outputs, and each
    output is defined by its grammar-derived expression.
    """
    activation = spec.activation_name()
    builder = ProcessBuilder(
        spec.name,
        inputs=[activation] + [name for name, _kind in spec.inputs],
        outputs=[name for name, _sort in spec.outputs],
    )
    for name, _kind in spec.inputs:
        builder.constrain(tick(name), when_true(activation))
    vocabulary = _component_vocabulary(spec)
    for output, sort in spec.outputs:
        expression = expressions[output]
        builder.define(output, expression)
        if sort.clock == "sync":
            # anchor the output on the activation clock even when its
            # expression is built from constants and state only
            builder.constrain(tick(output), when_true(activation))
        previous = f"{output}_prev"
        if previous in vocabulary:
            builder.local(previous)
            builder.define(previous, Pre(Ref(output), True if sort.kind == "bool" else 0))
    return builder.build()


def sample_component(
    spec: ComponentSpec,
    rng: random.Random,
    grammar: Optional[Grammar] = None,
) -> ProcessDefinition:
    """One seeded-random component: per-output expressions drawn by sort."""
    grammar = grammar or Grammar()
    vocabulary = _component_vocabulary(spec)
    expressions = {
        output: grammar.sample_referencing(sort, vocabulary, rng, spec.depth)
        for output, sort in spec.outputs
    }
    return build_component(spec, expressions)


def enumerate_components(
    spec: ComponentSpec,
    grammar: Optional[Grammar] = None,
    limit: Optional[int] = None,
) -> Iterator[ProcessDefinition]:
    """Every unique component over ``spec``: the cartesian product, per
    output, of the unique expressions of that output's sort (depth-bounded
    by ``spec.depth``).  Deterministically ordered; ``limit`` truncates."""
    grammar = grammar or Grammar()
    vocabulary = _component_vocabulary(spec)
    per_output = [
        [
            expression
            for expression in grammar.enumerate(sort, spec.depth, vocabulary)
            if expression.free_signals()
        ]
        for _output, sort in spec.outputs
    ]
    names = [output for output, _sort in spec.outputs]
    produced = 0
    for index, choice in enumerate(itertools.product(*per_output)):
        if limit is not None and produced >= limit:
            return
        expressions = dict(zip(names, choice))
        definition = build_component(
            ComponentSpec(
                name=f"{spec.name}_{index}",
                inputs=spec.inputs,
                outputs=spec.outputs,
                activation=spec.activation,
                state=spec.state,
                depth=spec.depth,
            ),
            expressions,
        )
        produced += 1
        yield definition
