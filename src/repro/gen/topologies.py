"""Topology generators: grammar components composed into multi-component designs.

Where :mod:`repro.gen.grammar` derives single well-typed components, this
module wires components into the multi-component shapes the compositional
criterion is about — shared signals between independently clocked
endochronous components:

* the historical benchmark families, migrated from
  ``repro.library.generators`` (which now re-exports them):
  :func:`independent_components`, :func:`pipeline_network`,
  :func:`star_network`, :func:`chain_of_buffers`;
* new structural families: :func:`token_ring` (a closed delay ring),
  :func:`arbiter_tree` (a binary tree of endochronous merges),
  :func:`crossbar` (sources × sinks through per-crossing relays),
  :func:`clock_divider` (a chain of by-2 subsampling stages — genuine
  clock-hierarchy depth), :func:`mode_automaton` (a rotating one-hot mode
  controller sampling its output per mode);
* :func:`random_network` — the generic grammar workout: seeded-random
  components wired into a seeded-random DAG.

Every family returns ``(components, composition)`` over
:class:`~repro.lang.normalize.NormalizedProcess`, the same convention the
benchmarks have always used.  :func:`sample_design` draws one
:class:`GeneratedDesign` — family, parameters and component bodies — from an
explicit seed (never wall-clock), and :func:`design_space` iterates the
seeded matrix used by CI's differential job and the corpus builder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.gen.grammar import (
    BOOL,
    BOOL_SAMPLED,
    NUM,
    NUM_SAMPLED,
    ComponentSpec,
    Grammar,
    Sort,
    sample_component,
)
from repro.lang.ast import ProcessDefinition
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_false, when_true
from repro.lang.normalize import NormalizedProcess, normalize

Family = Tuple[List[NormalizedProcess], NormalizedProcess]

#: the public surface — mirrored verbatim by the historical
#: ``repro.library.generators`` shim (pinned by ``tests/test_generators_and_library.py``)
__all__ = [
    "Family",
    "FAMILIES",
    "GeneratedDesign",
    "arbiter_component",
    "arbiter_tree",
    "chain_of_buffers",
    "clock_divider",
    "crossbar",
    "design_space",
    "divider_stage",
    "independent_components",
    "mode_automaton",
    "mode_automaton_component",
    "pipeline_network",
    "random_network",
    "sample_design",
    "star_network",
    "token_ring",
]


def _compose(
    components: Sequence[NormalizedProcess], name: str
) -> Family:
    composition = components[0]
    for component in components[1:]:
        composition = composition.compose(component)
    composition.name = name
    return list(components), composition


# ---------------------------------------------------------------------------
# Historical families (migrated from repro.library.generators)
# ---------------------------------------------------------------------------

def _counter_component(index: int) -> ProcessDefinition:
    """An endochronous counter paced by its own boolean activation input."""
    activation = f"c{index}"
    output = f"u{index}"
    builder = ProcessBuilder(f"counter{index}", inputs=[activation], outputs=[output])
    builder.constrain(tick(output), when_true(activation))
    builder.define(output, const(1) + signal(output).pre(0))
    return builder.build()


def independent_components(count: int) -> Family:
    """``count`` endochronous counters with no shared signal."""
    components = [normalize(_counter_component(index)) for index in range(count)]
    return _compose(components, f"independent_{count}")


def _relay_component(index: int, input_signal: str, output_signal: str) -> ProcessDefinition:
    """A relay adding one to its input, paced by its own activation input."""
    activation = f"c{index}"
    builder = ProcessBuilder(
        f"relay{index}", inputs=[activation, input_signal], outputs=[output_signal]
    )
    builder.constrain(tick(input_signal), when_true(activation))
    builder.define(output_signal, signal(input_signal) + const(1))
    return builder.build()


def pipeline_network(length: int) -> Family:
    """A chain of ``length`` relays; stage ``i`` feeds stage ``i + 1``.

    Every stage is endochronous (rooted at its activation input); the
    composition is multi-rooted and exhibits one reported clock constraint
    ``[c_i] = [c_{i+1}]`` per connection, exactly the situation the
    compositional criterion is designed for.
    """
    components: List[NormalizedProcess] = []
    for index in range(length):
        input_signal = "x0" if index == 0 else f"x{index}"
        output_signal = f"x{index + 1}"
        components.append(normalize(_relay_component(index, input_signal, output_signal)))
    return _compose(components, f"pipeline_{length}")


def star_network(branches: int) -> Family:
    """A source feeding ``branches`` independent consumers of its output."""
    source_builder = ProcessBuilder("source", inputs=["c0"], outputs=["x"])
    source_builder.constrain(tick("x"), when_true("c0"))
    source_builder.define("x", const(1) + signal("x").pre(0))
    components = [normalize(source_builder.build())]
    for index in range(1, branches + 1):
        consumer_builder = ProcessBuilder(
            f"sink{index}", inputs=[f"c{index}", "x"], outputs=[f"y{index}"]
        )
        consumer_builder.constrain(tick("x"), when_true(f"c{index}"))
        consumer_builder.define(f"y{index}", signal("x") + const(index))
        components.append(normalize(consumer_builder.build()))
    return _compose(components, f"star_{branches}")


def chain_of_buffers(length: int) -> Family:
    """``length`` one-place buffers in sequence (a generalized LTTA bus)."""
    from repro.library.basic import buffer_process  # local: avoids an import cycle

    components: List[NormalizedProcess] = []
    for index in range(length):
        input_signal = "y0" if index == 0 else f"y{index}"
        output_signal = f"y{index + 1}"
        definition = buffer_process(
            name=f"buffer{index}", input_name=input_signal, output_name=output_signal
        )
        components.append(normalize(definition))
    return _compose(components, f"buffer_chain_{length}")


# ---------------------------------------------------------------------------
# New structural families
# ---------------------------------------------------------------------------

def token_ring(size: int) -> Family:
    """``size`` stations passing a delayed token around a closed ring.

    Station ``i`` relays ``t_{i-1}`` to ``t_i`` through a one-instant delay,
    paced by its own activation — the delay at every station is what keeps
    the closed ring free of instantaneous cycles.
    """
    if size < 2:
        raise ValueError("a token ring needs at least 2 stations")
    components: List[NormalizedProcess] = []
    for index in range(size):
        previous = f"t{(index - 1) % size}"
        builder = ProcessBuilder(
            f"station{index}", inputs=[f"c{index}", previous], outputs=[f"t{index}"]
        )
        builder.constrain(tick(previous), when_true(f"c{index}"))
        builder.define(f"t{index}", signal(previous).pre(1 if index == 0 else 0))
        components.append(normalize(builder.build()))
    return _compose(components, f"ring_{size}")


def arbiter_component(
    name: str, select: str, left: str, right: str, output: str
) -> ProcessDefinition:
    """One endochronous two-way arbiter: the paper's merge shape.

    ``output = (left when select) default (right when not select)`` with the
    branch clocks pinned to the two values of ``select`` — the process's
    whole timing is reconstructed from the flow of ``select``.
    """
    negated = f"{name}_nsel"
    builder = ProcessBuilder(name, inputs=[select, left, right], outputs=[output])
    builder.local(negated)
    builder.define(negated, signal(select).not_())
    builder.define(
        output,
        signal(left).when(signal(select)).default(signal(right).when(signal(negated))),
    )
    builder.constrain(tick(left), when_true(select))
    builder.constrain(tick(right), when_false(select))
    return builder.build()


def arbiter_tree(depth: int) -> Family:
    """A complete binary tree of two-way arbiters granting one of 2^depth requests.

    Leaves are external request inputs; every internal node is an
    endochronous merge with its own selector input, so the tree composes
    ``2^depth - 1`` components sharing one wire per edge.
    """
    if depth < 1:
        raise ValueError("an arbiter tree needs depth >= 1")
    components: List[NormalizedProcess] = []
    # level `depth` holds the external requests r0.., each internal level
    # halves the signal count until the root grant g0_0
    signals = [f"r{index}" for index in range(2 ** depth)]
    for level in range(depth, 0, -1):
        next_signals = []
        for index in range(2 ** (level - 1)):
            name = f"arb{level - 1}_{index}"
            output = f"g{level - 1}_{index}"
            definition = arbiter_component(
                name,
                select=f"s{level - 1}_{index}",
                left=signals[2 * index],
                right=signals[2 * index + 1],
                output=output,
            )
            components.append(normalize(definition))
            next_signals.append(output)
        signals = next_signals
    return _compose(components, f"arbiter_{depth}")


def crossbar(sources: int, sinks: int) -> Family:
    """``sources`` producers fanned out to ``sinks`` consumers through
    per-crossing relays: every (i, j) crossing is its own component with its
    own activation, so the composition carries sources × sinks shared wires.
    """
    components: List[NormalizedProcess] = []
    for index in range(sources):
        builder = ProcessBuilder(f"src{index}", inputs=[f"p{index}"], outputs=[f"x{index}"])
        builder.constrain(tick(f"x{index}"), when_true(f"p{index}"))
        builder.define(f"x{index}", const(1) + signal(f"x{index}").pre(0))
        components.append(normalize(builder.build()))
    for i in range(sources):
        for j in range(sinks):
            builder = ProcessBuilder(
                f"xbar{i}_{j}", inputs=[f"e{i}_{j}", f"x{i}"], outputs=[f"z{i}_{j}"]
            )
            builder.constrain(tick(f"x{i}"), when_true(f"e{i}_{j}"))
            builder.define(f"z{i}_{j}", signal(f"x{i}") + const(j))
            components.append(normalize(builder.build()))
    for j in range(sinks):
        inputs = [f"z{i}_{j}" for i in range(sources)]
        builder = ProcessBuilder(f"snk{j}", inputs=inputs, outputs=[f"y{j}"])
        total = signal(inputs[0])
        for name in inputs[1:]:
            total = total + signal(name)
        builder.define(f"y{j}", total)
        components.append(normalize(builder.build()))
    return _compose(components, f"crossbar_{sources}x{sinks}")


def divider_stage(name: str, input_signal: str, output_signal: str) -> ProcessDefinition:
    """One by-2 clock divider: emit every other input instant.

    A boolean toggle flips at every input instant; the output samples the
    input on the toggle's true instants, so ``output^`` is a proper
    subclock of ``input^`` — one extra level of clock hierarchy per stage.
    """
    toggle = f"{name}_t"
    previous = f"{name}_tp"
    builder = ProcessBuilder(name, inputs=[input_signal], outputs=[output_signal])
    builder.local(toggle, previous)
    builder.define(toggle, signal(previous).not_())
    builder.define(previous, signal(toggle).pre(False))
    builder.constrain(tick(toggle), tick(input_signal))
    builder.define(output_signal, signal(input_signal).when(signal(toggle)))
    return builder.build()


def clock_divider(stages: int) -> Family:
    """A chain of ``stages`` by-2 dividers: stage ``i`` ticks half as often
    as stage ``i - 1``, building a clock hierarchy ``stages`` levels deep
    from a single root input."""
    if stages < 1:
        raise ValueError("a divider chain needs at least 1 stage")
    components = [
        normalize(divider_stage(f"div{index}", f"k{index}", f"k{index + 1}"))
        for index in range(stages)
    ]
    return _compose(components, f"divider_{stages}")


def mode_automaton_component(
    name: str, modes: int, input_signal: str, activation: Optional[str] = None
) -> ProcessDefinition:
    """A rotating one-hot mode controller sampling its input per mode.

    ``modes`` boolean state bits rotate one position per activation instant
    (exactly one is true at a time); output ``j`` carries the input sampled
    on mode ``j``'s instants — ``modes`` sibling subclocks under one root.
    """
    if modes < 2:
        raise ValueError("a mode automaton needs at least 2 modes")
    activation = activation or f"{name}_go"
    builder = ProcessBuilder(
        name,
        inputs=[activation, input_signal],
        outputs=[f"{name}_y{j}" for j in range(modes)],
    )
    builder.constrain(tick(input_signal), when_true(activation))
    bits = [f"{name}_m{j}" for j in range(modes)]
    builder.local(*bits)
    for j in range(modes):
        # bit j holds yesterday's bit j-1: a one-hot token rotating through
        # the modes, initially parked on mode 0
        builder.define(bits[j], signal(bits[(j - 1) % modes]).pre(j == 0))
    builder.constrain(tick(bits[0]), tick(input_signal))
    for j in range(modes):
        builder.define(f"{name}_y{j}", signal(input_signal).when(signal(bits[j])))
    return builder.build()


def mode_automaton(modes: int) -> Family:
    """A producer feeding a rotating ``modes``-way mode automaton."""
    producer = ProcessBuilder("feeder", inputs=["p0"], outputs=["v"])
    producer.constrain(tick("v"), when_true("p0"))
    producer.define("v", const(1) + signal("v").pre(0))
    controller = mode_automaton_component("modes", modes, "v")
    components = [normalize(producer.build()), normalize(controller)]
    return _compose(components, f"modes_{modes}")


# ---------------------------------------------------------------------------
# Grammar-wired networks and the design sampler
# ---------------------------------------------------------------------------

def random_network(
    rng: random.Random,
    size: int = 2,
    depth: int = 2,
    grammar: Optional[Grammar] = None,
    name: str = "network",
) -> Family:
    """``size`` grammar-sampled components wired into a seeded-random DAG.

    Component ``i`` draws its interface shape (numbers of boolean/numeric
    inputs, output sorts, state feedback) and its output expressions from
    ``rng``; each data input is then either wired to an output of an
    earlier component (a shared signal, the compositional situation) or
    left as a fresh external input.
    """
    grammar = grammar or Grammar()
    components: List[NormalizedProcess] = []
    available: List[Tuple[str, str]] = []  # (signal, kind) of produced outputs
    for index in range(size):
        component_name = f"{name}{index}"
        inputs: List[Tuple[str, str]] = []
        for position in range(rng.randint(1, 2)):
            kind = rng.choice(["bool", "num"])
            candidates = [entry for entry in available if entry[1] == kind]
            if candidates and rng.random() < 0.6:
                wired = candidates[rng.randrange(len(candidates))]
                if wired not in inputs:
                    inputs.append(wired)
                    continue
            inputs.append((f"{component_name}_i{position}", kind))
        outputs: List[Tuple[str, Sort]] = []
        for position in range(rng.randint(1, 2)):
            sort = rng.choice([BOOL, NUM, BOOL, NUM, BOOL_SAMPLED, NUM_SAMPLED])
            outputs.append((f"{component_name}_o{position}", sort))
        spec = ComponentSpec(
            name=component_name,
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            state=rng.random() < 0.7,
            depth=depth,
        )
        components.append(normalize(sample_component(spec, rng, grammar)))
        # only master-clock outputs are re-wirable: a sampled output's clock
        # is a proper subclock, and pacing it with a downstream activation
        # (`x^ = [go]`) would contradict its producer's clock
        available.extend(
            (output, sort.kind) for output, sort in outputs if sort.clock == "sync"
        )
    return _compose(components, name)


#: families the seeded sampler draws from; each entry maps a parameter draw
#: onto one family call (sizes kept small so sampled designs stay cheap to
#: verify — corpus and differential throughput multiply over many designs)
FAMILIES: Tuple[str, ...] = (
    "pipeline",
    "star",
    "buffers",
    "ring",
    "arbiter",
    "crossbar",
    "divider",
    "modes",
    "network",
)


@dataclass(frozen=True)
class GeneratedDesign:
    """One generated design: its components, composition and provenance.

    ``seed``/``family``/``params`` are the full provenance — re-running
    :func:`sample_design` with the same seed reproduces the same components
    (and therefore the same :func:`~repro.lang.printer.canonical_digest`).
    """

    name: str
    family: str
    components: Tuple[NormalizedProcess, ...]
    composition: NormalizedProcess
    seed: Optional[int] = None
    params: Mapping[str, object] = field(default_factory=dict)

    def design(self, context: Optional[object] = None):
        """This generated design as a :class:`repro.api.Design` session."""
        from repro.api.session import Design

        return Design.from_generated(self, context=context)


def _family(family: str, rng: random.Random, depth: int) -> Tuple[Family, Dict[str, object]]:
    if family == "pipeline":
        length = rng.randint(2, 4)
        return pipeline_network(length), {"length": length}
    if family == "star":
        branches = rng.randint(2, 3)
        return star_network(branches), {"branches": branches}
    if family == "buffers":
        length = rng.randint(1, 2)
        return chain_of_buffers(length), {"length": length}
    if family == "ring":
        size = rng.randint(2, 4)
        return token_ring(size), {"size": size}
    if family == "arbiter":
        tree_depth = rng.randint(1, 2)
        return arbiter_tree(tree_depth), {"depth": tree_depth}
    if family == "crossbar":
        sources, sinks = rng.randint(1, 2), rng.randint(1, 2)
        return crossbar(sources, sinks), {"sources": sources, "sinks": sinks}
    if family == "divider":
        stages = rng.randint(1, 3)
        return clock_divider(stages), {"stages": stages}
    if family == "modes":
        modes = rng.randint(2, 4)
        return mode_automaton(modes), {"modes": modes}
    if family == "network":
        size = rng.randint(1, 3)
        return (
            random_network(rng, size=size, depth=depth),
            {"size": size, "depth": depth},
        )
    raise ValueError(f"unknown design family {family!r}; expected one of {FAMILIES}")


def sample_design(
    seed: int,
    families: Sequence[str] = FAMILIES,
    depth: int = 2,
) -> GeneratedDesign:
    """One seeded design: family, parameters and component bodies from ``seed``.

    Deterministic from the explicit seed — the sampler never consults
    wall-clock time or global random state — so ``seed`` is a replayable
    identity suitable for CI matrices and corpus entries.
    """
    rng = random.Random(seed)
    family = families[rng.randrange(len(families))]
    (components, composition), params = _family(family, rng, depth)
    return GeneratedDesign(
        name=f"{composition.name}_s{seed}",
        family=family,
        components=tuple(components),
        composition=composition,
        seed=seed,
        params=params,
    )


def design_space(
    seeds: Sequence[int],
    families: Sequence[str] = FAMILIES,
    depth: int = 2,
) -> Iterator[GeneratedDesign]:
    """The seeded design matrix: one :func:`sample_design` per seed."""
    for seed in seeds:
        yield sample_design(seed, families=families, depth=depth)
