"""Signal language front-end.

This package defines the abstract syntax of the Signal subset used in the
paper (functional equations, delay ``pre``, sampling ``when``, merge
``default``, synchronous composition and restriction), a programmatic builder
for constructing processes, a small textual parser, a pretty printer, the
normalization pass that expands arbitrary signal expressions into *primitive*
equations, and static validation of process definitions.
"""

from repro.lang.ast import (
    Const,
    Ref,
    UnaryOp,
    BinaryOp,
    Pre,
    When,
    Default,
    Cell,
    ClockOf,
    ClockTrue,
    ClockFalse,
    ClockEmpty,
    ClockBinary,
    Definition,
    ClockConstraint,
    Instantiation,
    Composition,
    Restriction,
    ProcessDefinition,
)
from repro.lang.builder import ProcessBuilder, signal
from repro.lang.normalize import (
    NormalizedProcess,
    PrimitiveEquation,
    FunctionEquation,
    DelayEquation,
    SamplingEquation,
    MergeEquation,
    ClockEquation,
    normalize,
)
from repro.lang.parser import parse_program, parse_process, ParseError
from repro.lang.printer import format_expression, format_process
from repro.lang.validate import validate_process, ValidationError

__all__ = [
    "Const",
    "Ref",
    "UnaryOp",
    "BinaryOp",
    "Pre",
    "When",
    "Default",
    "Cell",
    "ClockOf",
    "ClockTrue",
    "ClockFalse",
    "ClockEmpty",
    "ClockBinary",
    "Definition",
    "ClockConstraint",
    "Instantiation",
    "Composition",
    "Restriction",
    "ProcessDefinition",
    "ProcessBuilder",
    "signal",
    "NormalizedProcess",
    "PrimitiveEquation",
    "FunctionEquation",
    "DelayEquation",
    "SamplingEquation",
    "MergeEquation",
    "ClockEquation",
    "normalize",
    "parse_program",
    "parse_process",
    "ParseError",
    "format_expression",
    "format_process",
    "validate_process",
    "ValidationError",
]
