"""Abstract syntax of the Signal subset used in the paper.

The grammar follows Section 2 of the paper::

    P, Q ::= x = y f z | P | Q | P / x          (processes)

extended with the constructs that appear in the worked examples: clock
constraint equations (``x^ = [t]``, ``r^ = x^ ∨ y^``), sub-process
instantiation (``x = filter(y)``), the derived ``cell`` operator used by the
synthesized scheduler, and named process definitions with input/output
interfaces.

Expression nodes are immutable dataclasses.  Every node exposes
``free_signals()`` so later passes (normalization, validation, clock
inference) can be written uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Signal expressions
# ---------------------------------------------------------------------------

class Expression:
    """Base class of signal expressions."""

    def free_signals(self) -> FrozenSet[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expression):
    """A constant signal; it adopts the clock of its context."""

    value: object

    def free_signals(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True)
class Ref(Expression):
    """A reference to a named signal."""

    name: str

    def free_signals(self) -> FrozenSet[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class UnaryOp(Expression):
    """A unary functional operator (``not``, ``-``)."""

    operator: str
    operand: Expression

    def free_signals(self) -> FrozenSet[str]:
        return self.operand.free_signals()


@dataclass(frozen=True)
class BinaryOp(Expression):
    """A binary functional operator (arithmetic, boolean, comparison)."""

    operator: str
    left: Expression
    right: Expression

    def free_signals(self) -> FrozenSet[str]:
        return self.left.free_signals() | self.right.free_signals()


@dataclass(frozen=True)
class Pre(Expression):
    """The delay operator ``y pre v``: previous value of ``y``, initially ``v``."""

    operand: Expression
    initial: object

    def free_signals(self) -> FrozenSet[str]:
        return self.operand.free_signals()


@dataclass(frozen=True)
class When(Expression):
    """The sampling operator ``y when z``: ``y`` when ``z`` is present and true."""

    operand: Expression
    condition: Expression

    def free_signals(self) -> FrozenSet[str]:
        return self.operand.free_signals() | self.condition.free_signals()


@dataclass(frozen=True)
class Default(Expression):
    """The deterministic merge ``y default z``: ``y`` when present, else ``z``."""

    preferred: Expression
    alternative: Expression

    def free_signals(self) -> FrozenSet[str]:
        return self.preferred.free_signals() | self.alternative.free_signals()


@dataclass(frozen=True)
class Cell(Expression):
    """The derived operator ``y cell c init v``.

    It memorizes the last value of ``y`` and is present whenever ``y`` is
    present or the boolean ``c`` is present and true.  It is expanded during
    normalization into a ``default`` over a delayed memory signal.
    """

    operand: Expression
    condition: Expression
    initial: object

    def free_signals(self) -> FrozenSet[str]:
        return self.operand.free_signals() | self.condition.free_signals()


# ---------------------------------------------------------------------------
# Clock expressions (syntax level)
# ---------------------------------------------------------------------------

class ClockExpressionSyntax:
    """Base class of syntactic clock expressions used in clock constraints."""

    def free_signals(self) -> FrozenSet[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class ClockOf(ClockExpressionSyntax):
    """``x^``: the clock (presence instants) of signal ``x``."""

    name: str

    def free_signals(self) -> FrozenSet[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class ClockTrue(ClockExpressionSyntax):
    """``[x]``: the instants at which boolean signal ``x`` is present and true."""

    name: str

    def free_signals(self) -> FrozenSet[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class ClockFalse(ClockExpressionSyntax):
    """``[¬x]``: the instants at which boolean signal ``x`` is present and false."""

    name: str

    def free_signals(self) -> FrozenSet[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class ClockEmpty(ClockExpressionSyntax):
    """``0``: the empty clock (no instant)."""

    def free_signals(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True)
class ClockBinary(ClockExpressionSyntax):
    """Conjunction ``^*``, disjunction ``^+`` or difference ``^-`` of clocks."""

    operator: str  # one of "and", "or", "diff"
    left: ClockExpressionSyntax
    right: ClockExpressionSyntax

    def free_signals(self) -> FrozenSet[str]:
        return self.left.free_signals() | self.right.free_signals()


# ---------------------------------------------------------------------------
# Statements (equations) and processes
# ---------------------------------------------------------------------------

class Statement:
    """Base class of process statements."""

    def defined_signals(self) -> FrozenSet[str]:
        raise NotImplementedError

    def free_signals(self) -> FrozenSet[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class Definition(Statement):
    """An equation ``x := e`` defining signal ``x`` by expression ``e``."""

    target: str
    expression: Expression

    def defined_signals(self) -> FrozenSet[str]:
        return frozenset({self.target})

    def free_signals(self) -> FrozenSet[str]:
        return frozenset({self.target}) | self.expression.free_signals()


@dataclass(frozen=True)
class ClockConstraint(Statement):
    """A synchronization constraint ``c1 = c2 (= c3 ...)`` between clocks."""

    clocks: Tuple[ClockExpressionSyntax, ...]

    def __post_init__(self) -> None:
        if len(self.clocks) < 2:
            raise ValueError("a clock constraint relates at least two clock expressions")

    def defined_signals(self) -> FrozenSet[str]:
        return frozenset()

    def free_signals(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for clock in self.clocks:
            names |= clock.free_signals()
        return names


@dataclass(frozen=True)
class Instantiation(Statement):
    """An instantiation ``(x1, ..., xn) := p(y1, ..., ym)`` of a named process."""

    outputs: Tuple[str, ...]
    process: str
    arguments: Tuple[Expression, ...]

    def defined_signals(self) -> FrozenSet[str]:
        return frozenset(self.outputs)

    def free_signals(self) -> FrozenSet[str]:
        names = frozenset(self.outputs)
        for argument in self.arguments:
            names |= argument.free_signals()
        return names


@dataclass(frozen=True)
class Composition(Statement):
    """Synchronous composition ``P | Q`` of statements."""

    statements: Tuple[Statement, ...]

    def defined_signals(self) -> FrozenSet[str]:
        defined: FrozenSet[str] = frozenset()
        for statement in self.statements:
            defined |= statement.defined_signals()
        return defined

    def free_signals(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for statement in self.statements:
            names |= statement.free_signals()
        return names


@dataclass(frozen=True)
class Restriction(Statement):
    """Restriction ``P / x``: the signals ``hidden`` are local to ``body``."""

    body: Statement
    hidden: Tuple[str, ...]

    def defined_signals(self) -> FrozenSet[str]:
        return self.body.defined_signals() - frozenset(self.hidden)

    def free_signals(self) -> FrozenSet[str]:
        return self.body.free_signals() - frozenset(self.hidden)


@dataclass(frozen=True)
class ProcessDefinition:
    """A named process with an explicit input/output interface.

    ``body`` is a statement; signals that are neither inputs nor outputs but
    occur in the body are implicitly local (the front-end wraps the body in a
    :class:`Restriction` over them when normalizing).
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    body: Statement
    locals: Tuple[str, ...] = ()

    def interface(self) -> Tuple[str, ...]:
        return tuple(self.inputs) + tuple(self.outputs)

    def free_signals(self) -> FrozenSet[str]:
        return self.body.free_signals() - frozenset(self.locals)

    def with_body(self, body: Statement) -> "ProcessDefinition":
        return ProcessDefinition(self.name, self.inputs, self.outputs, body, self.locals)


def compose(*statements: Statement) -> Statement:
    """Flattened synchronous composition of statements."""
    flat: List[Statement] = []
    for statement in statements:
        if isinstance(statement, Composition):
            flat.extend(statement.statements)
        else:
            flat.append(statement)
    if len(flat) == 1:
        return flat[0]
    return Composition(tuple(flat))
