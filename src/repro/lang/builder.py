"""Programmatic construction of Signal processes.

The :class:`ProcessBuilder` offers a small fluent API used throughout the
library (:mod:`repro.library`) and the examples to assemble
:class:`~repro.lang.ast.ProcessDefinition` values without going through the
textual parser.  Signal expressions can be written with plain AST
constructors or with the operator-overloading wrapper returned by
:func:`signal`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.lang.ast import (
    BinaryOp,
    Cell,
    ClockBinary,
    ClockConstraint,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
    Composition,
    Const,
    Default,
    Definition,
    Expression,
    Instantiation,
    Pre,
    ProcessDefinition,
    Ref,
    Restriction,
    Statement,
    UnaryOp,
    When,
    compose,
)

ExpressionLike = Union["SignalExpr", Expression, str, bool, int, float]


def _to_expression(value: ExpressionLike) -> Expression:
    """Coerce Python values, names and wrappers into AST expressions."""
    if isinstance(value, SignalExpr):
        return value.node
    if isinstance(value, Expression):
        return value
    if isinstance(value, str):
        return Ref(value)
    if isinstance(value, (bool, int, float)):
        return Const(value)
    raise TypeError(f"cannot interpret {value!r} as a signal expression")


class SignalExpr:
    """Operator-overloading wrapper around AST expressions.

    ``signal("y") != signal("z")`` builds ``BinaryOp("/=", Ref("y"), Ref("z"))``,
    ``signal("y").pre(True)`` builds a delay, and so on.  The wrapper is a thin
    convenience layer: ``.node`` always exposes the underlying AST.
    """

    __slots__ = ("node",)

    def __init__(self, node: ExpressionLike):
        self.node = _to_expression(node)

    # arithmetic -----------------------------------------------------------
    def __add__(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("+", self.node, _to_expression(other)))

    def __radd__(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("+", _to_expression(other), self.node))

    def __sub__(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("-", self.node, _to_expression(other)))

    def __rsub__(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("-", _to_expression(other), self.node))

    def __mul__(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("*", self.node, _to_expression(other)))

    def __rmul__(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("*", _to_expression(other), self.node))

    def __neg__(self) -> "SignalExpr":
        return SignalExpr(UnaryOp("-", self.node))

    # comparisons (note: == and != build signal expressions, not Python bools)
    def eq(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("=", self.node, _to_expression(other)))

    def ne(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("/=", self.node, _to_expression(other)))

    def lt(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("<", self.node, _to_expression(other)))

    def le(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("<=", self.node, _to_expression(other)))

    def gt(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp(">", self.node, _to_expression(other)))

    def ge(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp(">=", self.node, _to_expression(other)))

    # boolean ----------------------------------------------------------------
    def and_(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("and", self.node, _to_expression(other)))

    def or_(self, other: ExpressionLike) -> "SignalExpr":
        return SignalExpr(BinaryOp("or", self.node, _to_expression(other)))

    def not_(self) -> "SignalExpr":
        return SignalExpr(UnaryOp("not", self.node))

    # Signal operators --------------------------------------------------------
    def pre(self, initial: object) -> "SignalExpr":
        return SignalExpr(Pre(self.node, initial))

    def when(self, condition: ExpressionLike) -> "SignalExpr":
        return SignalExpr(When(self.node, _to_expression(condition)))

    def default(self, alternative: ExpressionLike) -> "SignalExpr":
        return SignalExpr(Default(self.node, _to_expression(alternative)))

    def cell(self, condition: ExpressionLike, initial: object) -> "SignalExpr":
        return SignalExpr(Cell(self.node, _to_expression(condition), initial))

    def __repr__(self) -> str:
        return f"SignalExpr({self.node!r})"


def signal(name: str) -> SignalExpr:
    """A reference to the signal called ``name``, wrapped for operator use."""
    return SignalExpr(Ref(name))


def const(value: object) -> SignalExpr:
    """A constant signal expression."""
    return SignalExpr(Const(value))


# -- clock expression helpers ---------------------------------------------

def tick(name: str) -> ClockOf:
    """The clock ``x^`` of signal ``name``."""
    return ClockOf(name)


def when_true(name: str) -> ClockTrue:
    """The clock ``[x]`` (signal present and true)."""
    return ClockTrue(name)


def when_false(name: str) -> ClockFalse:
    """The clock ``[¬x]`` (signal present and false)."""
    return ClockFalse(name)


def clock_and(left: ClockExpressionSyntax, right: ClockExpressionSyntax) -> ClockBinary:
    return ClockBinary("and", left, right)


def clock_or(left: ClockExpressionSyntax, right: ClockExpressionSyntax) -> ClockBinary:
    return ClockBinary("or", left, right)


def clock_diff(left: ClockExpressionSyntax, right: ClockExpressionSyntax) -> ClockBinary:
    return ClockBinary("diff", left, right)


class ProcessBuilder:
    """Accumulates equations and produces a :class:`ProcessDefinition`.

    Example building the paper's ``filter`` process::

        builder = ProcessBuilder("filter", inputs=["y"], outputs=["x"])
        builder.local("z")
        builder.define("x", const(True).when(signal("y").ne(signal("z"))))
        builder.define("z", signal("y").pre(True))
        process = builder.build()
    """

    def __init__(self, name: str, inputs: Sequence[str] = (), outputs: Sequence[str] = ()):
        self.name = name
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.outputs: Tuple[str, ...] = tuple(outputs)
        self._locals: List[str] = []
        self._statements: List[Statement] = []

    # -- declarations ---------------------------------------------------------
    def local(self, *names: str) -> "ProcessBuilder":
        """Declare local (hidden) signals."""
        for name in names:
            if name not in self._locals:
                self._locals.append(name)
        return self

    # -- statements -------------------------------------------------------------
    def define(self, target: str, expression: ExpressionLike) -> "ProcessBuilder":
        """Add an equation ``target := expression``."""
        self._statements.append(Definition(target, _to_expression(expression)))
        return self

    def constrain(self, *clocks: ClockExpressionSyntax) -> "ProcessBuilder":
        """Add a synchronization constraint between two or more clocks."""
        self._statements.append(ClockConstraint(tuple(clocks)))
        return self

    def synchronize(self, *names: str) -> "ProcessBuilder":
        """Constrain the named signals to be synchronous (``x^ = y^ = ...``)."""
        self._statements.append(ClockConstraint(tuple(ClockOf(name) for name in names)))
        return self

    def instantiate(
        self,
        process: Union[str, ProcessDefinition],
        arguments: Sequence[ExpressionLike],
        outputs: Sequence[str],
    ) -> "ProcessBuilder":
        """Add an instantiation ``(outputs) := process(arguments)``."""
        process_name = process.name if isinstance(process, ProcessDefinition) else process
        self._statements.append(
            Instantiation(
                tuple(outputs),
                process_name,
                tuple(_to_expression(argument) for argument in arguments),
            )
        )
        return self

    def add(self, statement: Statement) -> "ProcessBuilder":
        """Add an arbitrary pre-built statement."""
        self._statements.append(statement)
        return self

    # -- result ---------------------------------------------------------------
    def build(self) -> ProcessDefinition:
        """Produce the process definition accumulated so far."""
        if not self._statements:
            raise ValueError(f"process {self.name!r} has no equations")
        body: Statement = compose(*self._statements)
        if self._locals:
            body = Restriction(body, tuple(self._locals))
        return ProcessDefinition(
            name=self.name,
            inputs=self.inputs,
            outputs=self.outputs,
            body=body,
            locals=tuple(self._locals),
        )
