"""Normalization of Signal processes into primitive equations.

The analyses of the paper (clock inference, hierarchy, scheduling graph) are
defined over the four primitive equation forms of Section 2:

* functional equations  ``x = y f z``
* delay equations       ``x = y pre v``
* sampling equations    ``x = y when z``
* merge equations       ``x = y default z``

plus explicit clock constraints (``x^ = [t]``, ``r^ = x^ ∨ y^``, ...) which
the worked examples use freely.  This module expands an arbitrary
:class:`~repro.lang.ast.ProcessDefinition` — including nested expressions,
the derived ``cell`` operator and instantiations of other named processes —
into a :class:`NormalizedProcess`: a flat list of primitive equations over
plain signal names, together with the process interface and inferred signal
types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.lang.ast import (
    BinaryOp,
    Cell,
    ClockBinary,
    ClockConstraint,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
    Composition,
    Const,
    Default,
    Definition,
    Expression,
    Instantiation,
    Pre,
    ProcessDefinition,
    Ref,
    Restriction,
    Statement,
    UnaryOp,
    When,
)

#: operators whose result is boolean
BOOLEAN_RESULT_OPERATORS = frozenset({"and", "or", "not", "xor", "=", "/=", "<", "<=", ">", ">="})
#: operators whose operands are boolean
BOOLEAN_OPERAND_OPERATORS = frozenset({"and", "or", "not", "xor"})
#: operators whose operands are numeric
NUMERIC_OPERAND_OPERATORS = frozenset({"+", "-", "*", "/", "<", "<=", ">", ">="})


# ---------------------------------------------------------------------------
# Primitive equations
# ---------------------------------------------------------------------------

Operand = Union[str, Const]


def operand_signals(operands: Iterable[Operand]) -> Tuple[str, ...]:
    """The signal names among a list of operands (constants are dropped)."""
    return tuple(operand for operand in operands if isinstance(operand, str))


class PrimitiveEquation:
    """Base class of primitive equations."""

    def defined_signal(self) -> Optional[str]:
        """The signal defined by this equation, or None for pure constraints."""
        return None

    def read_signals(self) -> Tuple[str, ...]:
        """The signals read by this equation."""
        return ()

    def signals(self) -> Tuple[str, ...]:
        defined = self.defined_signal()
        reads = self.read_signals()
        return ((defined,) if defined else ()) + reads


@dataclass(frozen=True)
class FunctionEquation(PrimitiveEquation):
    """``x = f(a1, ..., an)`` — all signal operands are synchronous with ``x``."""

    target: str
    operator: str
    operands: Tuple[Operand, ...]

    def defined_signal(self) -> Optional[str]:
        return self.target

    def read_signals(self) -> Tuple[str, ...]:
        return operand_signals(self.operands)


@dataclass(frozen=True)
class DelayEquation(PrimitiveEquation):
    """``x = y pre v`` — ``x`` and ``y`` are synchronous; ``x`` holds the previous ``y``."""

    target: str
    source: str
    initial: object

    def defined_signal(self) -> Optional[str]:
        return self.target

    def read_signals(self) -> Tuple[str, ...]:
        return (self.source,)


@dataclass(frozen=True)
class SamplingEquation(PrimitiveEquation):
    """``x = y when z`` — present iff ``y`` (or a constant) and ``z`` present with ``z`` true."""

    target: str
    source: Operand
    condition: str

    def defined_signal(self) -> Optional[str]:
        return self.target

    def read_signals(self) -> Tuple[str, ...]:
        return operand_signals((self.source,)) + (self.condition,)


@dataclass(frozen=True)
class MergeEquation(PrimitiveEquation):
    """``x = y default z`` — ``y`` when present, otherwise ``z``."""

    target: str
    preferred: str
    alternative: str

    def defined_signal(self) -> Optional[str]:
        return self.target

    def read_signals(self) -> Tuple[str, ...]:
        return (self.preferred, self.alternative)


@dataclass(frozen=True)
class ClockEquation(PrimitiveEquation):
    """A synchronization constraint ``c1 = c2`` between two clock expressions."""

    left: ClockExpressionSyntax
    right: ClockExpressionSyntax

    def read_signals(self) -> Tuple[str, ...]:
        return tuple(sorted(self.left.free_signals() | self.right.free_signals()))


# ---------------------------------------------------------------------------
# Normalized process
# ---------------------------------------------------------------------------

@dataclass
class NormalizedProcess:
    """A Signal process expanded into primitive equations.

    ``types`` maps each signal to ``"bool"``, ``"num"`` or ``"any"`` as
    inferred by :func:`infer_types`; the clock calculus only introduces
    ``[x]`` / ``[¬x]`` literals for boolean signals.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    locals: Tuple[str, ...]
    equations: Tuple[PrimitiveEquation, ...]
    types: Dict[str, str] = field(default_factory=dict)

    def all_signals(self) -> Tuple[str, ...]:
        names: Set[str] = set(self.inputs) | set(self.outputs) | set(self.locals)
        for equation in self.equations:
            names.update(equation.signals())
        return tuple(sorted(names))

    def interface_signals(self) -> Tuple[str, ...]:
        return tuple(self.inputs) + tuple(self.outputs)

    def defined_signals(self) -> FrozenSet[str]:
        return frozenset(
            equation.defined_signal()
            for equation in self.equations
            if equation.defined_signal() is not None
        )

    def boolean_signals(self) -> Tuple[str, ...]:
        return tuple(sorted(name for name, kind in self.types.items() if kind == "bool"))

    def state_signals(self) -> Tuple[str, ...]:
        """Targets of delay equations: the signals that carry state."""
        return tuple(
            sorted(
                equation.target
                for equation in self.equations
                if isinstance(equation, DelayEquation)
            )
        )

    def equations_defining(self, name: str) -> Tuple[PrimitiveEquation, ...]:
        return tuple(eq for eq in self.equations if eq.defined_signal() == name)

    def compose(self, other: "NormalizedProcess", name: Optional[str] = None) -> "NormalizedProcess":
        """Synchronous composition of two normalized processes.

        Shared signals are identified by name, as in the paper's ``P | Q``.
        A signal is an output of the composition if it is defined in either
        component; it is an input if it is read but never defined.
        """
        equations = tuple(self.equations) + tuple(other.equations)
        defined = {
            eq.defined_signal() for eq in equations if eq.defined_signal() is not None
        }
        read: Set[str] = set()
        for eq in equations:
            read.update(eq.read_signals())
        locals_ = (set(self.locals) | set(other.locals)) - set(self.interface_signals()) - set(
            other.interface_signals()
        )
        visible = (read | defined) - locals_
        outputs = tuple(sorted((visible & defined)))
        inputs = tuple(sorted(visible - defined))
        composed = NormalizedProcess(
            name=name or f"{self.name}|{other.name}",
            inputs=inputs,
            outputs=outputs,
            locals=tuple(sorted(locals_)),
            equations=equations,
        )
        composed.types = infer_types(composed)
        return composed

    def hide(self, names: Iterable[str], name: Optional[str] = None) -> "NormalizedProcess":
        """Restriction: make the given signals local."""
        hidden = set(names)
        result = NormalizedProcess(
            name=name or self.name,
            inputs=tuple(n for n in self.inputs if n not in hidden),
            outputs=tuple(n for n in self.outputs if n not in hidden),
            locals=tuple(sorted(set(self.locals) | hidden)),
            equations=self.equations,
        )
        result.types = infer_types(result)
        return result


# ---------------------------------------------------------------------------
# Type inference
# ---------------------------------------------------------------------------

def infer_types(process: NormalizedProcess) -> Dict[str, str]:
    """Infer a coarse type (``bool`` / ``num`` / ``any``) for every signal.

    The inference is a fixpoint propagation: booleans flow through delays,
    merges and samplings; comparison operators produce booleans; arithmetic
    operators force numeric operands.  Signals used as ``when`` conditions or
    inside ``[x]`` / ``[¬x]`` clock literals are boolean.
    """
    types: Dict[str, str] = {name: "any" for name in process.all_signals()}

    def set_type(name: Optional[str], kind: str) -> bool:
        if name is None or not isinstance(name, str):
            return False
        current = types.get(name, "any")
        if kind == "any" or current == kind:
            return False
        if current != "any":
            # Conflicting evidence (e.g. a signal used both as a boolean and as a
            # number after composing two processes that reuse a name): keep the
            # first inferred type rather than oscillating forever.
            return False
        types[name] = kind
        return True

    def const_type(value: object) -> str:
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, (int, float)):
            return "num"
        return "any"

    def clock_booleans(expression: ClockExpressionSyntax) -> Set[str]:
        if isinstance(expression, (ClockTrue, ClockFalse)):
            return {expression.name}
        if isinstance(expression, ClockBinary):
            return clock_booleans(expression.left) | clock_booleans(expression.right)
        return set()

    changed = True
    while changed:
        changed = False
        for equation in process.equations:
            if isinstance(equation, FunctionEquation):
                operator = equation.operator
                if operator in BOOLEAN_RESULT_OPERATORS:
                    changed |= set_type(equation.target, "bool")
                if operator in BOOLEAN_OPERAND_OPERATORS:
                    for operand in equation.operands:
                        if isinstance(operand, str):
                            changed |= set_type(operand, "bool")
                if operator in NUMERIC_OPERAND_OPERATORS:
                    for operand in equation.operands:
                        if isinstance(operand, str):
                            changed |= set_type(operand, "num")
                if operator in {"+", "-", "*", "/"}:
                    changed |= set_type(equation.target, "num")
                if operator == "id":
                    operand = equation.operands[0]
                    if isinstance(operand, str):
                        if types[operand] != "any":
                            changed |= set_type(equation.target, types[operand])
                        if types[equation.target] != "any":
                            changed |= set_type(operand, types[equation.target])
                    elif isinstance(operand, Const):
                        changed |= set_type(equation.target, const_type(operand.value))
            elif isinstance(equation, DelayEquation):
                changed |= set_type(equation.target, const_type(equation.initial))
                if types[equation.source] != "any":
                    changed |= set_type(equation.target, types[equation.source])
                if types[equation.target] != "any":
                    changed |= set_type(equation.source, types[equation.target])
            elif isinstance(equation, SamplingEquation):
                changed |= set_type(equation.condition, "bool")
                source = equation.source
                if isinstance(source, str):
                    if types[source] != "any":
                        changed |= set_type(equation.target, types[source])
                    if types[equation.target] != "any":
                        changed |= set_type(source, types[equation.target])
                elif isinstance(source, Const):
                    changed |= set_type(equation.target, const_type(source.value))
            elif isinstance(equation, MergeEquation):
                for source in (equation.preferred, equation.alternative):
                    if types[source] != "any":
                        changed |= set_type(equation.target, types[source])
                if types[equation.target] != "any":
                    changed |= set_type(equation.preferred, types[equation.target])
                    changed |= set_type(equation.alternative, types[equation.target])
            elif isinstance(equation, ClockEquation):
                for name in clock_booleans(equation.left) | clock_booleans(equation.right):
                    changed |= set_type(name, "bool")
    return types


# ---------------------------------------------------------------------------
# Normalizer
# ---------------------------------------------------------------------------

class _Normalizer:
    """Stateful expansion of one process definition into primitive equations."""

    def __init__(self, registry: Mapping[str, ProcessDefinition]):
        self.registry = dict(registry)
        self.equations: List[PrimitiveEquation] = []
        self.extra_locals: List[str] = []
        self._fresh_counter = 0
        self._used_names: Set[str] = set()

    # -- fresh names -----------------------------------------------------------
    def fresh(self, hint: str) -> str:
        """A fresh local signal name based on ``hint``."""
        while True:
            self._fresh_counter += 1
            candidate = f"_{hint}_{self._fresh_counter}"
            if candidate not in self._used_names:
                self._used_names.add(candidate)
                self.extra_locals.append(candidate)
                return candidate

    def reserve(self, names: Iterable[str]) -> None:
        self._used_names.update(names)

    # -- expressions ------------------------------------------------------------
    def operand(self, expression: Expression, hint: str) -> Operand:
        """Normalize an expression into an operand (a name or a constant)."""
        if isinstance(expression, Ref):
            return expression.name
        if isinstance(expression, Const):
            return expression
        name = self.fresh(hint)
        self.define(name, expression)
        return name

    def named_operand(self, expression: Expression, hint: str) -> str:
        """Normalize an expression into a signal name (constants get an equation)."""
        operand = self.operand(expression, hint)
        if isinstance(operand, Const):
            name = self.fresh(hint)
            self.equations.append(FunctionEquation(name, "id", (operand,)))
            return name
        return operand

    def merge_operand(self, expression: Expression, target: str, hint: str) -> str:
        """Normalize a ``default`` operand; a constant adopts the clock of the result.

        In Signal, a constant literal in a merge (``x default 1``) is present
        whenever the surrounding expression needs it, so the fresh signal
        carrying it is synchronized with the merge's result.
        """
        operand = self.operand(expression, hint)
        if isinstance(operand, Const):
            name = self.fresh(hint)
            self.equations.append(FunctionEquation(name, "id", (operand,)))
            self.equations.append(ClockEquation(ClockOf(name), ClockOf(target)))
            return name
        return operand

    def define(self, target: str, expression: Expression) -> None:
        """Emit primitive equations defining ``target`` by ``expression``."""
        if isinstance(expression, Pre):
            source = self.named_operand(expression.operand, f"{target}_pre")
            self.equations.append(DelayEquation(target, source, expression.initial))
        elif isinstance(expression, When):
            source = self.operand(expression.operand, f"{target}_val")
            condition = self.named_operand(expression.condition, f"{target}_cond")
            self.equations.append(SamplingEquation(target, source, condition))
        elif isinstance(expression, Default):
            preferred = self.merge_operand(expression.preferred, target, f"{target}_pref")
            alternative = self.merge_operand(expression.alternative, target, f"{target}_alt")
            self.equations.append(MergeEquation(target, preferred, alternative))
        elif isinstance(expression, Cell):
            # x := y cell c init v  expands to
            #   x := y default m   |  m := x pre v  |  x^ = y^ ∨ [c]
            source = self.named_operand(expression.operand, f"{target}_cellsrc")
            condition = self.named_operand(expression.condition, f"{target}_cellcond")
            memory = self.fresh(f"{target}_mem")
            self.equations.append(DelayEquation(memory, target, expression.initial))
            self.equations.append(MergeEquation(target, source, memory))
            self.equations.append(
                ClockEquation(
                    ClockOf(target),
                    ClockBinary("or", ClockOf(source), ClockTrue(condition)),
                )
            )
        elif isinstance(expression, UnaryOp):
            operand = self.operand(expression.operand, f"{target}_arg")
            self.equations.append(FunctionEquation(target, expression.operator, (operand,)))
        elif isinstance(expression, BinaryOp):
            left = self.operand(expression.left, f"{target}_lhs")
            right = self.operand(expression.right, f"{target}_rhs")
            self.equations.append(FunctionEquation(target, expression.operator, (left, right)))
        elif isinstance(expression, Ref):
            self.equations.append(FunctionEquation(target, "id", (expression.name,)))
        elif isinstance(expression, Const):
            self.equations.append(FunctionEquation(target, "id", (expression,)))
        else:
            raise TypeError(f"unsupported expression node: {expression!r}")

    # -- statements ----------------------------------------------------------
    def statement(self, statement: Statement) -> None:
        if isinstance(statement, Definition):
            self.define(statement.target, statement.expression)
        elif isinstance(statement, ClockConstraint):
            reference = statement.clocks[0]
            for other in statement.clocks[1:]:
                self.equations.append(ClockEquation(reference, other))
        elif isinstance(statement, Composition):
            for child in statement.statements:
                self.statement(child)
        elif isinstance(statement, Restriction):
            self.extra_locals.extend(
                name for name in statement.hidden if name not in self.extra_locals
            )
            self.statement(statement.body)
        elif isinstance(statement, Instantiation):
            self.instantiate(statement)
        else:
            raise TypeError(f"unsupported statement node: {statement!r}")

    def instantiate(self, statement: Instantiation) -> None:
        """Inline an instantiation of a named process with renamed locals."""
        definition = self.registry.get(statement.process)
        if definition is None:
            raise KeyError(
                f"instantiation of unknown process {statement.process!r}; "
                f"known processes: {sorted(self.registry)}"
            )
        if len(statement.outputs) != len(definition.outputs):
            raise ValueError(
                f"process {definition.name!r} has {len(definition.outputs)} outputs, "
                f"instantiation binds {len(statement.outputs)}"
            )
        if len(statement.arguments) != len(definition.inputs):
            raise ValueError(
                f"process {definition.name!r} has {len(definition.inputs)} inputs, "
                f"instantiation passes {len(statement.arguments)}"
            )
        # Normalize the callee separately, then rename.
        callee = normalize(definition, self.registry)
        renaming: Dict[str, str] = {}
        for formal, actual in zip(definition.inputs, statement.arguments):
            renaming[formal] = self.named_operand(actual, f"{statement.process}_{formal}")
        for formal, actual in zip(definition.outputs, statement.outputs):
            renaming[formal] = actual
        instance = self.fresh(f"{statement.process}_inst")
        # ``instance`` is only used as a renaming prefix; it is not a signal.
        self.extra_locals.remove(instance)
        self._used_names.discard(instance)
        for name in callee.all_signals():
            if name not in renaming:
                renamed = f"{instance[1:]}_{name}"
                renaming[name] = renamed
                if renamed not in self.extra_locals:
                    self.extra_locals.append(renamed)
                self._used_names.add(renamed)
        for equation in callee.equations:
            self.equations.append(rename_equation(equation, renaming))


def rename_operand(operand: Operand, renaming: Mapping[str, str]) -> Operand:
    if isinstance(operand, str):
        return renaming.get(operand, operand)
    return operand


def rename_clock(expression: ClockExpressionSyntax, renaming: Mapping[str, str]) -> ClockExpressionSyntax:
    if isinstance(expression, ClockOf):
        return ClockOf(renaming.get(expression.name, expression.name))
    if isinstance(expression, ClockTrue):
        return ClockTrue(renaming.get(expression.name, expression.name))
    if isinstance(expression, ClockFalse):
        return ClockFalse(renaming.get(expression.name, expression.name))
    if isinstance(expression, ClockEmpty):
        return expression
    if isinstance(expression, ClockBinary):
        return ClockBinary(
            expression.operator,
            rename_clock(expression.left, renaming),
            rename_clock(expression.right, renaming),
        )
    raise TypeError(f"unsupported clock expression: {expression!r}")


def rename_equation(equation: PrimitiveEquation, renaming: Mapping[str, str]) -> PrimitiveEquation:
    """Apply a signal renaming to a primitive equation."""
    if isinstance(equation, FunctionEquation):
        return FunctionEquation(
            renaming.get(equation.target, equation.target),
            equation.operator,
            tuple(rename_operand(operand, renaming) for operand in equation.operands),
        )
    if isinstance(equation, DelayEquation):
        return DelayEquation(
            renaming.get(equation.target, equation.target),
            renaming.get(equation.source, equation.source),
            equation.initial,
        )
    if isinstance(equation, SamplingEquation):
        return SamplingEquation(
            renaming.get(equation.target, equation.target),
            rename_operand(equation.source, renaming),
            renaming.get(equation.condition, equation.condition),
        )
    if isinstance(equation, MergeEquation):
        return MergeEquation(
            renaming.get(equation.target, equation.target),
            renaming.get(equation.preferred, equation.preferred),
            renaming.get(equation.alternative, equation.alternative),
        )
    if isinstance(equation, ClockEquation):
        return ClockEquation(
            rename_clock(equation.left, renaming), rename_clock(equation.right, renaming)
        )
    raise TypeError(f"unsupported primitive equation: {equation!r}")


def normalize(
    process: ProcessDefinition,
    registry: Optional[Mapping[str, ProcessDefinition]] = None,
) -> NormalizedProcess:
    """Expand a process definition into a :class:`NormalizedProcess`.

    ``registry`` provides the definitions of processes referenced by
    instantiation statements; the paper's examples compose `filter`, `buffer`,
    `writer`, `reader`, ... this way.
    """
    normalizer = _Normalizer(registry or {})
    normalizer.reserve(process.inputs)
    normalizer.reserve(process.outputs)
    normalizer.reserve(process.locals)
    normalizer.statement(process.body)

    declared = set(process.inputs) | set(process.outputs) | set(process.locals)
    mentioned: Set[str] = set()
    for equation in normalizer.equations:
        mentioned.update(equation.signals())
    implicit_locals = mentioned - declared - set(normalizer.extra_locals)
    locals_ = tuple(
        dict.fromkeys(list(process.locals) + normalizer.extra_locals + sorted(implicit_locals))
    )
    result = NormalizedProcess(
        name=process.name,
        inputs=tuple(process.inputs),
        outputs=tuple(process.outputs),
        locals=locals_,
        equations=tuple(normalizer.equations),
    )
    result.types = infer_types(result)
    return result
