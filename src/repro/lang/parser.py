"""A small recursive-descent parser for a Signal-like concrete syntax.

The accepted syntax covers the subset used in the paper.  A program is a
sequence of process definitions::

    process filter (y) returns (x) {
      local z;
      x := true when (y /= z);
      z := y pre true;
    }

    process buffer (y) returns (x) {
      (x) := current(y);
      () := flip(x, y);
    }

Statements are equations ``name := expression;``, clock constraints such as
``^x = [t];`` or ``^r = ^x ^+ ^y;``, instantiations ``(a, b) := p(c, d);``
and ``local`` declarations.  Expression operators follow Signal:
``default`` < ``when`` < ``or`` < ``and`` < comparisons < additive <
multiplicative < unary, plus the postfix-style ``pre`` and ``cell`` forms.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.ast import (
    BinaryOp,
    Cell,
    ClockBinary,
    ClockConstraint,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
    Composition,
    Const,
    Default,
    Definition,
    Expression,
    Instantiation,
    Pre,
    ProcessDefinition,
    Ref,
    Restriction,
    Statement,
    UnaryOp,
    When,
    compose,
)


class ParseError(Exception):
    """Raised when the source text does not conform to the grammar."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


_KEYWORDS = {
    "process",
    "returns",
    "local",
    "when",
    "default",
    "pre",
    "cell",
    "init",
    "and",
    "or",
    "not",
    "xor",
    "true",
    "false",
}

_TOKEN_SPEC = [
    ("COMMENT", r"(#|%)[^\n]*"),
    ("NUMBER", r"\d+(\.\d+)?"),
    ("NAME", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("CLOCKOP", r"\^\*|\^\+|\^\-|\^="),
    ("HAT", r"\^"),
    ("ASSIGN", r":="),
    ("COMPARE", r"/=|<=|>=|=|<|>"),
    ("ARITH", r"[+\-*/]"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("MISMATCH", r"."),
]


def tokenize(source: str) -> List[Token]:
    """Split source text into tokens, dropping whitespace and comments."""
    specification = "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC)
    tokens: List[Token] = []
    line = 1
    line_start = 0
    for match in re.finditer(specification, source):
        kind = match.lastgroup or "MISMATCH"
        text = match.group()
        column = match.start() - line_start + 1
        if kind == "NEWLINE":
            line += 1
            line_start = match.end()
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise ParseError(f"unexpected character {text!r}", line, column)
        if kind == "NAME" and text in _KEYWORDS:
            kind = text.upper()
        tokens.append(Token(kind, text, line, column))
    tokens.append(Token("EOF", "", line, 1))
    return tokens


class _Parser:
    def __init__(self, tokens: Sequence[Token]):
        self.tokens = list(tokens)
        self.position = 0

    # -- token helpers ---------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.position + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if self.check(kind, text):
            return self.advance()
        token = self.peek()
        expected = text or kind
        raise ParseError(f"expected {expected!r}, found {token.text!r}", token.line, token.column)

    # -- program --------------------------------------------------------------
    def program(self) -> Dict[str, ProcessDefinition]:
        processes: Dict[str, ProcessDefinition] = {}
        while not self.check("EOF"):
            definition = self.process_definition()
            processes[definition.name] = definition
        return processes

    def process_definition(self) -> ProcessDefinition:
        self.expect("PROCESS")
        name = self.expect("NAME").text
        inputs = self.name_list()
        self.expect("RETURNS")
        outputs = self.name_list()
        self.expect("LBRACE")
        locals_: List[str] = []
        statements: List[Statement] = []
        while not self.check("RBRACE"):
            if self.accept("LOCAL"):
                locals_.extend(self.comma_names())
                self.expect("SEMI")
            else:
                statements.append(self.statement())
        self.expect("RBRACE")
        if not statements:
            token = self.peek()
            raise ParseError(f"process {name!r} has no equations", token.line, token.column)
        body: Statement = compose(*statements)
        if locals_:
            body = Restriction(body, tuple(locals_))
        return ProcessDefinition(name, tuple(inputs), tuple(outputs), body, tuple(locals_))

    def name_list(self) -> List[str]:
        self.expect("LPAREN")
        names: List[str] = []
        if not self.check("RPAREN"):
            names = self.comma_names()
        self.expect("RPAREN")
        return names

    def comma_names(self) -> List[str]:
        names = [self.expect("NAME").text]
        while self.accept("COMMA"):
            names.append(self.expect("NAME").text)
        return names

    # -- statements ---------------------------------------------------------
    def statement(self) -> Statement:
        if self.check("HAT") or self.check("LBRACKET"):
            statement = self.clock_constraint()
        elif self.check("LPAREN"):
            statement = self.instantiation()
        else:
            statement = self.equation_or_constraint()
        self.expect("SEMI")
        return statement

    def instantiation(self) -> Statement:
        self.expect("LPAREN")
        outputs: List[str] = []
        if not self.check("RPAREN"):
            outputs = self.comma_names()
        self.expect("RPAREN")
        self.expect("ASSIGN")
        process = self.expect("NAME").text
        self.expect("LPAREN")
        arguments: List[Expression] = []
        if not self.check("RPAREN"):
            arguments.append(self.expression())
            while self.accept("COMMA"):
                arguments.append(self.expression())
        self.expect("RPAREN")
        return Instantiation(tuple(outputs), process, tuple(arguments))

    def equation_or_constraint(self) -> Statement:
        name_token = self.expect("NAME")
        if self.accept("ASSIGN"):
            expression = self.expression()
            return Definition(name_token.text, expression)
        if self.check("CLOCKOP", "^=") or self.check("COMPARE", "="):
            # ``x ^= y`` or, for robustness, ``x = y`` between bare names is a
            # synchronization constraint between the clocks of x and y.
            clocks: List[ClockExpressionSyntax] = [ClockOf(name_token.text)]
            while self.accept("CLOCKOP", "^=") or self.accept("COMPARE", "="):
                clocks.append(self.clock_expression())
            return ClockConstraint(tuple(clocks))
        token = self.peek()
        raise ParseError(
            f"expected ':=' or '^=' after {name_token.text!r}, found {token.text!r}",
            token.line,
            token.column,
        )

    def clock_constraint(self) -> Statement:
        clocks: List[ClockExpressionSyntax] = [self.clock_expression()]
        while self.accept("COMPARE", "=") or self.accept("CLOCKOP", "^="):
            clocks.append(self.clock_expression())
        if len(clocks) < 2:
            token = self.peek()
            raise ParseError("clock constraint needs at least two clocks", token.line, token.column)
        return ClockConstraint(tuple(clocks))

    # -- clock expressions -----------------------------------------------------
    def clock_expression(self) -> ClockExpressionSyntax:
        left = self.clock_atom()
        while self.check("CLOCKOP") and self.peek().text in ("^*", "^+", "^-"):
            operator = {"^*": "and", "^+": "or", "^-": "diff"}[self.advance().text]
            right = self.clock_atom()
            left = ClockBinary(operator, left, right)
        return left

    def clock_atom(self) -> ClockExpressionSyntax:
        if self.accept("HAT"):
            if self.check("NUMBER") and self.peek().text == "0":
                self.advance()
                return ClockEmpty()
            return ClockOf(self.expect("NAME").text)
        if self.accept("LBRACKET"):
            negated = bool(self.accept("NOT"))
            name = self.expect("NAME").text
            self.expect("RBRACKET")
            return ClockFalse(name) if negated else ClockTrue(name)
        if self.accept("LPAREN"):
            inner = self.clock_expression()
            self.expect("RPAREN")
            return inner
        if self.check("NAME"):
            return ClockOf(self.advance().text)
        token = self.peek()
        raise ParseError(f"expected a clock expression, found {token.text!r}", token.line, token.column)

    # -- signal expressions ---------------------------------------------------
    def expression(self) -> Expression:
        return self.default_expression()

    def default_expression(self) -> Expression:
        left = self.when_expression()
        while self.accept("DEFAULT"):
            right = self.when_expression()
            left = Default(left, right)
        return left

    def when_expression(self) -> Expression:
        left = self.or_expression()
        while True:
            if self.accept("WHEN"):
                condition = self.or_expression()
                left = When(left, condition)
            elif self.accept("PRE"):
                initial = self.constant_value()
                left = Pre(left, initial)
            elif self.accept("CELL"):
                condition = self.or_expression()
                self.expect("INIT")
                initial = self.constant_value()
                left = Cell(left, condition, initial)
            else:
                return left

    def or_expression(self) -> Expression:
        left = self.and_expression()
        while self.check("OR") or self.check("XOR"):
            operator = self.advance().text
            right = self.and_expression()
            left = BinaryOp(operator, left, right)
        return left

    def and_expression(self) -> Expression:
        left = self.comparison_expression()
        while self.accept("AND"):
            right = self.comparison_expression()
            left = BinaryOp("and", left, right)
        return left

    def comparison_expression(self) -> Expression:
        left = self.additive_expression()
        while self.check("COMPARE"):
            operator = self.advance().text
            right = self.additive_expression()
            left = BinaryOp(operator, left, right)
        return left

    def additive_expression(self) -> Expression:
        left = self.multiplicative_expression()
        while self.check("ARITH") and self.peek().text in ("+", "-"):
            operator = self.advance().text
            right = self.multiplicative_expression()
            left = BinaryOp(operator, left, right)
        return left

    def multiplicative_expression(self) -> Expression:
        left = self.unary_expression()
        while self.check("ARITH") and self.peek().text in ("*", "/"):
            operator = self.advance().text
            right = self.unary_expression()
            left = BinaryOp(operator, left, right)
        return left

    def unary_expression(self) -> Expression:
        if self.accept("NOT"):
            return UnaryOp("not", self.unary_expression())
        if self.check("ARITH", "-"):
            self.advance()
            return UnaryOp("-", self.unary_expression())
        return self.primary_expression()

    def primary_expression(self) -> Expression:
        if self.accept("TRUE"):
            return Const(True)
        if self.accept("FALSE"):
            return Const(False)
        if self.check("NUMBER"):
            return Const(self.number_value(self.advance().text))
        if self.check("NAME"):
            return Ref(self.advance().text)
        if self.accept("LPAREN"):
            inner = self.expression()
            self.expect("RPAREN")
            return inner
        token = self.peek()
        raise ParseError(f"expected an expression, found {token.text!r}", token.line, token.column)

    def constant_value(self) -> object:
        if self.accept("TRUE"):
            return True
        if self.accept("FALSE"):
            return False
        if self.check("ARITH", "-"):
            self.advance()
            return -self.number_value(self.expect("NUMBER").text)
        if self.check("NUMBER"):
            return self.number_value(self.advance().text)
        token = self.peek()
        raise ParseError(f"expected a constant, found {token.text!r}", token.line, token.column)

    @staticmethod
    def number_value(text: str) -> object:
        return float(text) if "." in text else int(text)


def parse_program(source: str) -> Dict[str, ProcessDefinition]:
    """Parse a program: a sequence of process definitions, keyed by name."""
    return _Parser(tokenize(source)).program()


def parse_process(source: str) -> ProcessDefinition:
    """Parse a program containing exactly one process and return it."""
    processes = parse_program(source)
    if len(processes) != 1:
        raise ParseError(f"expected exactly one process, found {len(processes)}", 1, 1)
    return next(iter(processes.values()))
