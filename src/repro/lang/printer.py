"""Pretty printing of Signal expressions, statements and processes.

The output uses the ASCII rendering of Signal operators (``^`` for clocks,
``^*`` / ``^+`` / ``^-`` for clock conjunction / disjunction / difference,
``[x]`` and ``[not x]`` for value-sampled clocks) so that printed processes
can be re-parsed by :mod:`repro.lang.parser`.

Besides the re-parseable rendering, this module defines the **canonical
form** used to content-address designs (:func:`format_canonical` /
:func:`canonical_digest`): a deterministic text rendering of a
:class:`~repro.lang.normalize.NormalizedProcess` with stable signal
ordering, stable equation ordering and α-renamed locals, so that two
processes with the same primitive semantics print — and therefore hash — to
the same bytes regardless of how they were built (source text, builder,
printed-and-reparsed source).  The digest is what the service layer's
design registry and artifact store key on.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Mapping, Optional

from repro.lang.ast import (
    BinaryOp,
    Cell,
    ClockBinary,
    ClockConstraint,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
    Composition,
    Const,
    Default,
    Definition,
    Expression,
    Instantiation,
    Pre,
    ProcessDefinition,
    Ref,
    Restriction,
    Statement,
    UnaryOp,
    When,
)
from repro.lang.normalize import (
    ClockEquation,
    DelayEquation,
    FunctionEquation,
    MergeEquation,
    NormalizedProcess,
    PrimitiveEquation,
    SamplingEquation,
)


def format_constant(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value)


def format_expression(expression: Expression) -> str:
    """Render a signal expression as Signal-like concrete syntax."""
    if isinstance(expression, Const):
        return format_constant(expression.value)
    if isinstance(expression, Ref):
        return expression.name
    if isinstance(expression, UnaryOp):
        return f"({expression.operator} {format_expression(expression.operand)})"
    if isinstance(expression, BinaryOp):
        return (
            f"({format_expression(expression.left)} {expression.operator} "
            f"{format_expression(expression.right)})"
        )
    if isinstance(expression, Pre):
        return f"({format_expression(expression.operand)} pre {format_constant(expression.initial)})"
    if isinstance(expression, When):
        return f"({format_expression(expression.operand)} when {format_expression(expression.condition)})"
    if isinstance(expression, Default):
        return (
            f"({format_expression(expression.preferred)} default "
            f"{format_expression(expression.alternative)})"
        )
    if isinstance(expression, Cell):
        return (
            f"({format_expression(expression.operand)} cell "
            f"{format_expression(expression.condition)} init {format_constant(expression.initial)})"
        )
    raise TypeError(f"unsupported expression node: {expression!r}")


def format_clock(expression: ClockExpressionSyntax) -> str:
    """Render a clock expression."""
    if isinstance(expression, ClockOf):
        return f"^{expression.name}"
    if isinstance(expression, ClockTrue):
        return f"[{expression.name}]"
    if isinstance(expression, ClockFalse):
        return f"[not {expression.name}]"
    if isinstance(expression, ClockEmpty):
        return "^0"
    if isinstance(expression, ClockBinary):
        symbol = {"and": "^*", "or": "^+", "diff": "^-"}[expression.operator]
        return f"({format_clock(expression.left)} {symbol} {format_clock(expression.right)})"
    raise TypeError(f"unsupported clock expression node: {expression!r}")


def format_statement(statement: Statement, indent: int = 0) -> str:
    """Render a statement (equation, constraint, composition, restriction)."""
    pad = "  " * indent
    if isinstance(statement, Definition):
        return f"{pad}{statement.target} := {format_expression(statement.expression)};"
    if isinstance(statement, ClockConstraint):
        return f"{pad}{' = '.join(format_clock(clock) for clock in statement.clocks)};"
    if isinstance(statement, Instantiation):
        outputs = ", ".join(statement.outputs)
        arguments = ", ".join(format_expression(argument) for argument in statement.arguments)
        # Outputs are always parenthesized: the parser recognizes an
        # instantiation by its leading '(' (a bare `x := p(y)` would be read
        # as an equation whose right-hand side the expression grammar rejects).
        return f"{pad}({outputs}) := {statement.process}({arguments});"
    if isinstance(statement, Composition):
        return "\n".join(format_statement(child, indent) for child in statement.statements)
    if isinstance(statement, Restriction):
        hidden = ", ".join(statement.hidden)
        body = format_statement(statement.body, indent + 1)
        return f"{pad}local {hidden};\n{body}"
    raise TypeError(f"unsupported statement node: {statement!r}")


def format_process(process: ProcessDefinition) -> str:
    """Render a full process definition."""
    inputs = ", ".join(process.inputs)
    outputs = ", ".join(process.outputs)
    lines: List[str] = [f"process {process.name} ({inputs}) returns ({outputs}) {{"]
    if process.locals:
        lines.append(f"  local {', '.join(process.locals)};")
    body = process.body
    if isinstance(body, Restriction) and set(body.hidden) <= set(process.locals):
        body = body.body
    lines.append(format_statement(body, 1))
    lines.append("}")
    return "\n".join(lines)


def format_primitive_equation(equation: PrimitiveEquation) -> str:
    """Render a primitive equation of a normalized process."""
    if isinstance(equation, FunctionEquation):
        rendered = [
            operand if isinstance(operand, str) else format_constant(operand.value)
            for operand in equation.operands
        ]
        if equation.operator == "id":
            return f"{equation.target} := {rendered[0]}"
        if len(rendered) == 1:
            return f"{equation.target} := {equation.operator} {rendered[0]}"
        return f"{equation.target} := {rendered[0]} {equation.operator} {rendered[1]}"
    if isinstance(equation, DelayEquation):
        return f"{equation.target} := {equation.source} pre {format_constant(equation.initial)}"
    if isinstance(equation, SamplingEquation):
        source = (
            equation.source
            if isinstance(equation.source, str)
            else format_constant(equation.source.value)
        )
        return f"{equation.target} := {source} when {equation.condition}"
    if isinstance(equation, MergeEquation):
        return f"{equation.target} := {equation.preferred} default {equation.alternative}"
    if isinstance(equation, ClockEquation):
        return f"{format_clock(equation.left)} = {format_clock(equation.right)}"
    raise TypeError(f"unsupported primitive equation: {equation!r}")


def _surface_primitive_equation(equation: PrimitiveEquation) -> str:
    """One primitive equation as re-parseable Signal surface syntax."""
    if isinstance(equation, FunctionEquation):
        rendered = [
            operand if isinstance(operand, str) else format_constant(operand.value)
            for operand in equation.operands
        ]
        if equation.operator == "id":
            return f"{equation.target} := {rendered[0]}"
        if len(rendered) == 1:
            return f"{equation.target} := ({equation.operator} {rendered[0]})"
        return f"{equation.target} := ({rendered[0]} {equation.operator} {rendered[1]})"
    if isinstance(equation, DelayEquation):
        return (
            f"{equation.target} := "
            f"({equation.source} pre {format_constant(equation.initial)})"
        )
    if isinstance(equation, SamplingEquation):
        source = (
            equation.source
            if isinstance(equation.source, str)
            else format_constant(equation.source.value)
        )
        return f"{equation.target} := ({source} when {equation.condition})"
    if isinstance(equation, MergeEquation):
        return (
            f"{equation.target} := "
            f"({equation.preferred} default {equation.alternative})"
        )
    if isinstance(equation, ClockEquation):
        return f"{format_clock(equation.left)} = {format_clock(equation.right)}"
    raise TypeError(f"unsupported primitive equation: {equation!r}")


def format_normalized_source(process: NormalizedProcess) -> str:
    """Render a normalized process as **re-parseable** Signal source.

    Every primitive equation has a surface-syntax equivalent, so a
    normalized process — unlike an arbitrary analysis artifact — can be
    printed back into the language:
    ``normalize(parse_process(format_normalized_source(p)))`` re-derives
    the same primitive equations and therefore the same
    :func:`process_digest` as ``p``.  This is what lets *generated* designs
    (whose components exist only in normalized form) round-trip through
    the printer and parser like hand-written library sources do, and what
    makes corpus entries inspectable as source rather than only as
    canonical-form text.
    """
    inputs = ", ".join(process.inputs)
    outputs = ", ".join(process.outputs)
    lines: List[str] = [f"process {process.name} ({inputs}) returns ({outputs}) {{"]
    if process.locals:
        lines.append(f"  local {', '.join(process.locals)};")
    lines.extend(
        f"  {_surface_primitive_equation(equation)};" for equation in process.equations
    )
    lines.append("}")
    return "\n".join(lines)


def format_normalized_process(process: NormalizedProcess) -> str:
    """Render a normalized process: interface followed by its primitive equations."""
    lines = [
        f"process {process.name}",
        f"  inputs:  {', '.join(process.inputs) or '(none)'}",
        f"  outputs: {', '.join(process.outputs) or '(none)'}",
        f"  locals:  {', '.join(process.locals) or '(none)'}",
        "  equations:",
    ]
    lines.extend(f"    {format_primitive_equation(equation)}" for equation in process.equations)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Canonical form and content digests
# ---------------------------------------------------------------------------

def _canonical_local_renaming(process: NormalizedProcess) -> Dict[str, str]:
    """α-rename hidden locals canonically, independently of input order.

    Normalization invents fresh local names (``_t1``, ...) whose spelling
    depends on the construction path, and callers may list equations in any
    order; the renaming must therefore be a function of the process's
    *content* only.  Each hidden local is characterized by a signature —
    the sorted renders of the equations it occurs in, with itself marked
    and every other hidden local replaced by its current equivalence-class
    rank — and the ranks are refined until stable (Weisfeiler–Leman style
    partition refinement).  Distinguishable locals end in distinct classes
    whatever order the equations were listed in; residual ties are broken
    by original spelling.  Like WL refinement in general this is complete
    for the occurrence structures arising in practice but not in theory: a
    pathologically regular reference pattern among hidden locals could
    leave distinguishable locals tied, letting α-variants digest apart —
    such designs then merely miss each other's cached artifacts; verdicts
    are never wrong, because the compiled-payload loader independently
    rejects signal-name mismatches.

    The canonical names live in a ``\\x00``-prefixed namespace no parsed or
    built process can occupy, so a renamed local can never collide with —
    and alias itself to — a real signal of the process.
    """
    from repro.lang.normalize import rename_equation

    interface = set(process.inputs) | set(process.outputs)
    hidden = set(process.locals) - interface
    if not hidden:
        return {}
    rank: Dict[str, int] = {name: 0 for name in hidden}
    for _round in range(len(hidden) + 2):
        signatures: Dict[str, List[str]] = {}
        for name in hidden:
            marking = {
                other: ("\x00self" if other == name else f"\x00c{rank[other]}")
                for other in hidden
            }
            signatures[name] = sorted(
                format_primitive_equation(rename_equation(equation, marking))
                for equation in process.equations
                if name in equation.signals()
            )
        ordered = sorted(hidden, key=lambda name: (rank[name], signatures[name]))
        refined: Dict[str, int] = {}
        previous_key = None
        next_rank = -1
        for name in ordered:
            key = (rank[name], signatures[name])
            if key != previous_key:
                next_rank += 1
                previous_key = key
            refined[name] = next_rank
        if refined == rank:
            break
        rank = refined
    # distinct final names per local; classes that refinement could not
    # split are tie-broken by original spelling (see the docstring caveat)
    ordered = sorted(hidden, key=lambda name: (rank[name], name))
    return {name: f"\x00l{position}" for position, name in enumerate(ordered)}


def format_canonical(process: NormalizedProcess) -> str:
    """The canonical, digest-stable rendering of a normalized process.

    Deterministic by construction: the interface is listed in sorted order,
    hidden locals are α-renamed positionally (order-independently, see
    :func:`_canonical_local_renaming`), types are listed sorted by signal,
    and the primitive equations are rendered then sorted as text.  Two
    processes with the same primitive equations (up to local renaming and
    equation order) produce the same canonical form, which is what makes
    content-addressing reproducible across parse ∘ print round trips.
    """
    from repro.lang.normalize import rename_equation

    renaming = _canonical_local_renaming(process)
    equations = (
        [rename_equation(equation, renaming) for equation in process.equations]
        if renaming
        else list(process.equations)
    )
    rendered = sorted(format_primitive_equation(equation) for equation in equations)
    signals = sorted(
        {renaming.get(name, name) for name in process.all_signals()}
        | set(process.inputs)
        | set(process.outputs)
    )
    types = {
        renaming.get(name, name): kind for name, kind in process.types.items()
    }
    lines = [
        f"process {process.name}",
        f"inputs: {', '.join(sorted(process.inputs))}",
        f"outputs: {', '.join(sorted(process.outputs))}",
        "types: " + ", ".join(name + ":" + types.get(name, "any") for name in signals),
        "equations:",
    ]
    lines.extend(f"  {line}" for line in rendered)
    return "\n".join(lines) + "\n"


def digest_of_forms(forms: Iterable[str], extra: Optional[str] = None) -> str:
    """The SHA-256 digest of already-rendered canonical forms.

    The single implementation of the content-digest hash: both
    :func:`canonical_digest` (rendering the forms itself) and callers that
    memoize canonical forms (``AnalysisContext.design_digest``) go through
    here, so the byte layout cannot silently fork.
    """
    digest = hashlib.sha256()
    for form in sorted(forms):
        digest.update(form.encode("utf-8"))
        digest.update(b"\x00")
    if extra:
        digest.update(extra.encode("utf-8"))
    return digest.hexdigest()


def canonical_digest(processes: Iterable[NormalizedProcess], extra: Optional[str] = None) -> str:
    """The SHA-256 content digest of one or more normalized processes.

    The digest covers the concatenated canonical forms (component order is
    irrelevant: forms are sorted before hashing) plus an optional ``extra``
    discriminator.  This is the identity the design registry and the
    artifact store key on: same digest ⇔ same canonical source ⇔ same
    analyses, same compiled relations, same verdicts.
    """
    return digest_of_forms(
        (format_canonical(process) for process in processes), extra
    )


def process_digest(process: NormalizedProcess) -> str:
    """The content digest of a single normalized process."""
    return canonical_digest([process])


def process_fingerprint(process: NormalizedProcess) -> str:
    """An *exact* (α-sensitive) fingerprint of a normalized process.

    Unlike :func:`process_digest`, hidden locals are **not** α-renamed: two
    processes that differ only in the spelling of a hidden local share a
    digest but get distinct fingerprints.  The artifact graph keys its
    in-memory nodes by ``(digest, fingerprint)`` because most in-memory
    artifacts (analyses, hierarchies, compiled relations, LTS states) name
    concrete signals — an α-variant must not adopt them — while the
    persistent tier keys by digest alone and *validates* names on load.

    Cheap by construction: no partition refinement, just a sorted render.
    """
    digest = hashlib.sha256()
    digest.update(process.name.encode("utf-8"))
    for group in (process.inputs, process.outputs, process.locals):
        digest.update(("\x00" + ",".join(group)).encode("utf-8"))
    digest.update(
        ("\x00" + ",".join(f"{k}:{v}" for k, v in sorted(process.types.items()))).encode("utf-8")
    )
    for line in sorted(format_primitive_equation(equation) for equation in process.equations):
        digest.update(("\x00" + line).encode("utf-8"))
    return digest.hexdigest()[:24]


def options_fingerprint(options: Mapping[str, object]) -> str:
    """The canonical rendering of a query-options mapping.

    One deterministic spelling shared by every layer that keys on options —
    the session's verdict nodes, the artifact store's ``verdict-*`` object
    names and the service scheduler's coalescing table — so that "the same
    query" resolves to the same artifact everywhere.
    """
    return repr(sorted(options.items(), key=repr))
