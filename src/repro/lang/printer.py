"""Pretty printing of Signal expressions, statements and processes.

The output uses the ASCII rendering of Signal operators (``^`` for clocks,
``^*`` / ``^+`` / ``^-`` for clock conjunction / disjunction / difference,
``[x]`` and ``[not x]`` for value-sampled clocks) so that printed processes
can be re-parsed by :mod:`repro.lang.parser`.
"""

from __future__ import annotations

from typing import List

from repro.lang.ast import (
    BinaryOp,
    Cell,
    ClockBinary,
    ClockConstraint,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
    Composition,
    Const,
    Default,
    Definition,
    Expression,
    Instantiation,
    Pre,
    ProcessDefinition,
    Ref,
    Restriction,
    Statement,
    UnaryOp,
    When,
)
from repro.lang.normalize import (
    ClockEquation,
    DelayEquation,
    FunctionEquation,
    MergeEquation,
    NormalizedProcess,
    PrimitiveEquation,
    SamplingEquation,
)


def format_constant(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value)


def format_expression(expression: Expression) -> str:
    """Render a signal expression as Signal-like concrete syntax."""
    if isinstance(expression, Const):
        return format_constant(expression.value)
    if isinstance(expression, Ref):
        return expression.name
    if isinstance(expression, UnaryOp):
        return f"({expression.operator} {format_expression(expression.operand)})"
    if isinstance(expression, BinaryOp):
        return (
            f"({format_expression(expression.left)} {expression.operator} "
            f"{format_expression(expression.right)})"
        )
    if isinstance(expression, Pre):
        return f"({format_expression(expression.operand)} pre {format_constant(expression.initial)})"
    if isinstance(expression, When):
        return f"({format_expression(expression.operand)} when {format_expression(expression.condition)})"
    if isinstance(expression, Default):
        return (
            f"({format_expression(expression.preferred)} default "
            f"{format_expression(expression.alternative)})"
        )
    if isinstance(expression, Cell):
        return (
            f"({format_expression(expression.operand)} cell "
            f"{format_expression(expression.condition)} init {format_constant(expression.initial)})"
        )
    raise TypeError(f"unsupported expression node: {expression!r}")


def format_clock(expression: ClockExpressionSyntax) -> str:
    """Render a clock expression."""
    if isinstance(expression, ClockOf):
        return f"^{expression.name}"
    if isinstance(expression, ClockTrue):
        return f"[{expression.name}]"
    if isinstance(expression, ClockFalse):
        return f"[not {expression.name}]"
    if isinstance(expression, ClockEmpty):
        return "^0"
    if isinstance(expression, ClockBinary):
        symbol = {"and": "^*", "or": "^+", "diff": "^-"}[expression.operator]
        return f"({format_clock(expression.left)} {symbol} {format_clock(expression.right)})"
    raise TypeError(f"unsupported clock expression node: {expression!r}")


def format_statement(statement: Statement, indent: int = 0) -> str:
    """Render a statement (equation, constraint, composition, restriction)."""
    pad = "  " * indent
    if isinstance(statement, Definition):
        return f"{pad}{statement.target} := {format_expression(statement.expression)};"
    if isinstance(statement, ClockConstraint):
        return f"{pad}{' = '.join(format_clock(clock) for clock in statement.clocks)};"
    if isinstance(statement, Instantiation):
        outputs = ", ".join(statement.outputs)
        arguments = ", ".join(format_expression(argument) for argument in statement.arguments)
        # Outputs are always parenthesized: the parser recognizes an
        # instantiation by its leading '(' (a bare `x := p(y)` would be read
        # as an equation whose right-hand side the expression grammar rejects).
        return f"{pad}({outputs}) := {statement.process}({arguments});"
    if isinstance(statement, Composition):
        return "\n".join(format_statement(child, indent) for child in statement.statements)
    if isinstance(statement, Restriction):
        hidden = ", ".join(statement.hidden)
        body = format_statement(statement.body, indent + 1)
        return f"{pad}local {hidden};\n{body}"
    raise TypeError(f"unsupported statement node: {statement!r}")


def format_process(process: ProcessDefinition) -> str:
    """Render a full process definition."""
    inputs = ", ".join(process.inputs)
    outputs = ", ".join(process.outputs)
    lines: List[str] = [f"process {process.name} ({inputs}) returns ({outputs}) {{"]
    if process.locals:
        lines.append(f"  local {', '.join(process.locals)};")
    body = process.body
    if isinstance(body, Restriction) and set(body.hidden) <= set(process.locals):
        body = body.body
    lines.append(format_statement(body, 1))
    lines.append("}")
    return "\n".join(lines)


def format_primitive_equation(equation: PrimitiveEquation) -> str:
    """Render a primitive equation of a normalized process."""
    if isinstance(equation, FunctionEquation):
        rendered = [
            operand if isinstance(operand, str) else format_constant(operand.value)
            for operand in equation.operands
        ]
        if equation.operator == "id":
            return f"{equation.target} := {rendered[0]}"
        if len(rendered) == 1:
            return f"{equation.target} := {equation.operator} {rendered[0]}"
        return f"{equation.target} := {rendered[0]} {equation.operator} {rendered[1]}"
    if isinstance(equation, DelayEquation):
        return f"{equation.target} := {equation.source} pre {format_constant(equation.initial)}"
    if isinstance(equation, SamplingEquation):
        source = (
            equation.source
            if isinstance(equation.source, str)
            else format_constant(equation.source.value)
        )
        return f"{equation.target} := {source} when {equation.condition}"
    if isinstance(equation, MergeEquation):
        return f"{equation.target} := {equation.preferred} default {equation.alternative}"
    if isinstance(equation, ClockEquation):
        return f"{format_clock(equation.left)} = {format_clock(equation.right)}"
    raise TypeError(f"unsupported primitive equation: {equation!r}")


def format_normalized_process(process: NormalizedProcess) -> str:
    """Render a normalized process: interface followed by its primitive equations."""
    lines = [
        f"process {process.name}",
        f"  inputs:  {', '.join(process.inputs) or '(none)'}",
        f"  outputs: {', '.join(process.outputs) or '(none)'}",
        f"  locals:  {', '.join(process.locals) or '(none)'}",
        "  equations:",
    ]
    lines.extend(f"    {format_primitive_equation(equation)}" for equation in process.equations)
    return "\n".join(lines)
