"""Static validation of Signal process definitions.

Validation catches the errors that would otherwise surface as confusing
failures deep inside the clock calculus: signals defined more than once,
outputs without a defining equation, inputs that are written, references to
undeclared signals and malformed ``pre`` initial values.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from repro.lang.ast import ProcessDefinition
from repro.lang.normalize import (
    ClockEquation,
    DelayEquation,
    NormalizedProcess,
    normalize,
)


class ValidationError(Exception):
    """Raised when a process definition is statically ill-formed."""

    def __init__(self, issues: List[str]):
        super().__init__("; ".join(issues))
        self.issues = list(issues)


def collect_issues(process: NormalizedProcess) -> List[str]:
    """Return the list of static issues of a normalized process (possibly empty)."""
    issues: List[str] = []
    defined_by: Dict[str, int] = {}
    for equation in process.equations:
        target = equation.defined_signal()
        if target is not None:
            defined_by[target] = defined_by.get(target, 0) + 1

    for name, count in sorted(defined_by.items()):
        if count > 1:
            issues.append(f"signal {name!r} is defined by {count} equations")

    for name in process.inputs:
        if name in defined_by:
            issues.append(f"input signal {name!r} is defined inside the process")

    for name in process.outputs:
        if name not in defined_by:
            issues.append(f"output signal {name!r} has no defining equation")

    declared: Set[str] = set(process.inputs) | set(process.outputs) | set(process.locals)
    for equation in process.equations:
        for name in equation.signals():
            if name not in declared:
                issues.append(f"signal {name!r} is used but never declared")
                declared.add(name)

    for equation in process.equations:
        if isinstance(equation, DelayEquation) and not isinstance(
            equation.initial, (bool, int, float)
        ):
            issues.append(
                f"delay defining {equation.target!r} has non-constant initial value "
                f"{equation.initial!r}"
            )
    return issues


def validate_process(
    process: ProcessDefinition,
    registry: Optional[Mapping[str, ProcessDefinition]] = None,
) -> NormalizedProcess:
    """Normalize and validate a process definition.

    Returns the normalized process when it is well-formed, otherwise raises
    :class:`ValidationError` listing every issue found.
    """
    normalized = normalize(process, registry)
    issues = collect_issues(normalized)
    if issues:
        raise ValidationError(issues)
    return normalized


def validate_normalized(process: NormalizedProcess) -> None:
    """Validate an already-normalized process, raising on any issue."""
    issues = collect_issues(process)
    if issues:
        raise ValidationError(issues)
