"""The processes used in the paper, plus synthetic generators for benchmarks.

* :mod:`repro.library.basic` — ``filter``, ``merge``, the one-place ``buffer``
  (``flip`` | ``current``) of Sections 1-3;
* :mod:`repro.library.producer_consumer` — the producer / consumer / main
  processes of Section 5;
* :mod:`repro.library.ltta` — the loosely time-triggered architecture of
  Section 4.2 (writer, bus, reader);
* :mod:`repro.library.controllers` — Signal-level controller and scheduler
  processes in the spirit of Section 5.2;
* :mod:`repro.library.generators` — scalable synthetic networks of
  endochronous components used by the benchmarks.
"""

from repro.library.basic import (
    filter_process,
    merge_process,
    buffer_process,
    buffer2_process,
    filter_merge_composition,
)
from repro.library.producer_consumer import (
    producer_process,
    consumer_process,
    main_process,
    main2_process,
)
from repro.library.ltta import writer_process, bus_process, reader_process, ltta_process
from repro.library.controllers import rendezvous_controller_process
from repro.library.generators import (
    pipeline_network,
    star_network,
    independent_components,
    chain_of_buffers,
)

__all__ = [
    "filter_process",
    "merge_process",
    "buffer_process",
    "buffer2_process",
    "filter_merge_composition",
    "producer_process",
    "consumer_process",
    "main_process",
    "main2_process",
    "writer_process",
    "bus_process",
    "reader_process",
    "ltta_process",
    "rendezvous_controller_process",
    "pipeline_network",
    "star_network",
    "independent_components",
    "chain_of_buffers",
]
