"""The basic processes of Sections 1-3: filter, merge and the one-place buffer.

Every constructor returns a :class:`~repro.lang.ast.ProcessDefinition`; use
:func:`repro.lang.normalize.normalize` (or :class:`repro.api.SignalProgram`)
to obtain the primitive-equation form consumed by the analyses.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.lang.ast import ProcessDefinition
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_false, when_true
from repro.lang.normalize import NormalizedProcess, normalize


def filter_process(
    name: str = "filter", input_name: str = "y", output_name: str = "x"
) -> ProcessDefinition:
    """The paper's filter: emit ``x = true`` every time the value of ``y`` changes.

    ``x = true when (y /= z) | z = y pre true`` with ``z`` local.
    """
    previous = f"{output_name}_prev"
    builder = ProcessBuilder(name, inputs=[input_name], outputs=[output_name])
    builder.local(previous)
    builder.define(
        output_name, const(True).when(signal(input_name).ne(signal(previous)))
    )
    builder.define(previous, signal(input_name).pre(True))
    return builder.build()


def merge_process(
    name: str = "merge",
    condition: str = "c",
    then_input: str = "y",
    else_input: str = "z",
    output_name: str = "d",
) -> ProcessDefinition:
    """The paper's merge: ``d`` equals ``if c then y else z``.

    The inputs are sampled on the two values of the condition
    (``y^ = [c]``, ``z^ = [¬c]``), which makes the process endochronous:
    its whole timing is reconstructed from the flow of ``c``.
    """
    negated = f"not_{condition}"
    builder = ProcessBuilder(name, inputs=[condition, then_input, else_input], outputs=[output_name])
    builder.local(negated)
    builder.define(negated, signal(condition).not_())
    builder.define(
        output_name,
        signal(then_input).when(signal(condition)).default(signal(else_input).when(signal(negated))),
    )
    builder.constrain(tick(then_input), when_true(condition))
    builder.constrain(tick(else_input), when_false(condition))
    return builder.build()


def buffer_process(
    name: str = "buffer", input_name: str = "y", output_name: str = "x", initial: object = False
) -> ProcessDefinition:
    """The one-place buffer of Section 3: ``buffer = current | flip``.

    The alternator ``flip`` (signals ``s``, ``t``) synchronizes the input to
    the false value of ``t`` and the output to its true value; ``current``
    (signals ``r``, ``m``) stores the last input and serves it on request:

    * ``s := t pre true``, ``t := not s``
    * ``y^ = [¬t]``, ``x^ = [t]``, ``r^ = t^``
    * ``r := y default (r pre initial)``, ``x := r when t``
    """
    builder = ProcessBuilder(name, inputs=[input_name], outputs=[output_name])
    state = f"{name}_s"
    toggle = f"{name}_t"
    register = f"{name}_r"
    memory = f"{name}_m"
    builder.local(state, toggle, register, memory)
    builder.define(state, signal(toggle).pre(True))
    builder.define(toggle, signal(state).not_())
    builder.constrain(tick(input_name), when_false(toggle))
    builder.define(memory, signal(register).pre(initial))
    builder.define(register, signal(input_name).default(signal(memory)))
    builder.constrain(tick(register), tick(toggle))
    builder.define(output_name, signal(register).when(signal(toggle)))
    return builder.build()


def buffer2_process(
    name: str = "buffer2",
    value_input: str = "y",
    flag_input: str = "b",
    value_output: str = "x",
    flag_output: str = "c",
    value_initial: object = 0,
    flag_initial: object = True,
) -> ProcessDefinition:
    """A one-place buffer carrying a (value, boolean flag) pair synchronously.

    Used by the LTTA bus, which forwards the writer's value together with its
    alternating flag.  Structure and clocks are those of :func:`buffer_process`,
    duplicated for the two payload signals.
    """
    builder = ProcessBuilder(
        name, inputs=[value_input, flag_input], outputs=[value_output, flag_output]
    )
    state = f"{name}_s"
    toggle = f"{name}_t"
    value_register = f"{name}_rv"
    value_memory = f"{name}_mv"
    flag_register = f"{name}_rf"
    flag_memory = f"{name}_mf"
    builder.local(state, toggle, value_register, value_memory, flag_register, flag_memory)
    builder.define(state, signal(toggle).pre(True))
    builder.define(toggle, signal(state).not_())
    builder.constrain(tick(value_input), when_false(toggle))
    builder.constrain(tick(flag_input), when_false(toggle))
    builder.define(value_memory, signal(value_register).pre(value_initial))
    builder.define(value_register, signal(value_input).default(signal(value_memory)))
    builder.constrain(tick(value_register), tick(toggle))
    builder.define(value_output, signal(value_register).when(signal(toggle)))
    builder.define(flag_memory, signal(flag_register).pre(flag_initial))
    builder.define(flag_register, signal(flag_input).default(signal(flag_memory)))
    builder.constrain(tick(flag_register), tick(toggle))
    builder.define(flag_output, signal(flag_register).when(signal(toggle)))
    return builder.build()


def filter_merge_composition(name: str = "filter_merge") -> Dict[str, NormalizedProcess]:
    """The Section 1 composition: ``x = filter(y) | d = merge(c, x, z)``.

    Returns the normalized filter, merge and composition, keyed by role; the
    filter's output feeds the ``then`` branch of the merge, as in the paper's
    example where the merged flow interleaves filtered events with ``z``.
    """
    filter_definition = filter_process(input_name="y", output_name="x")
    merge_definition = merge_process(condition="c", then_input="x", else_input="z", output_name="d")
    normalized_filter = normalize(filter_definition)
    normalized_merge = normalize(merge_definition)
    composition = normalized_filter.compose(normalized_merge, name=name)
    return {
        "filter": normalized_filter,
        "merge": normalized_merge,
        "composition": composition,
    }
