"""Signal-level synchronization processes in the spirit of Section 5.2.

The code generator of :mod:`repro.codegen.controller` synthesizes, at the
generated-code level, the controller of Section 5.2 — the component that
suspends a process once it has reached a reported clock constraint until its
peer reaches the matching constraint.  The synchronization skeleton of that
controller is itself expressible in Signal; :func:`rendezvous_controller_process`
provides it as a reusable library process (a two-party barrier), and
:func:`scheduler_process` the per-party half of it, mirroring the paper's
``scheduler`` sub-process.
"""

from __future__ import annotations

from repro.lang.ast import ProcessDefinition
from repro.lang.builder import ProcessBuilder, const, signal, tick


def rendezvous_controller_process(name: str = "rendezvous") -> ProcessDefinition:
    """A two-party rendez-vous: fire when both sides have arrived.

    Inputs ``ta`` and ``tb`` are synchronous booleans meaning "this side has
    reached its synchronization point during this step"; outputs ``ga`` and
    ``gb`` grant the rendez-vous (both true at the instant where both sides
    have arrived, possibly after one side waited).  Pending arrivals are
    remembered in the ``wa`` / ``wb`` flags, exactly like the ``pre_ra`` /
    ``pre_rb`` variables of the generated ``main_iterate`` of Section 5.2.
    """
    builder = ProcessBuilder(name, inputs=["ta", "tb"], outputs=["ga", "gb"])
    builder.local("wa", "wb", "pwa", "pwb", "fire")
    builder.synchronize("ta", "tb", "fire", "wa", "wb", "ga", "gb")
    builder.define("pwa", signal("wa").pre(False))
    builder.define("pwb", signal("wb").pre(False))
    builder.define("fire", (signal("ta").or_(signal("pwa"))).and_(signal("tb").or_(signal("pwb"))))
    builder.define("wa", (signal("ta").or_(signal("pwa"))).and_(signal("fire").not_()))
    builder.define("wb", (signal("tb").or_(signal("pwb"))).and_(signal("fire").not_()))
    builder.define("ga", signal("fire"))
    builder.define("gb", signal("fire"))
    return builder.build()


def scheduler_process(name: str = "scheduler") -> ProcessDefinition:
    """One party's half of the rendez-vous, after the paper's ``scheduler``.

    Input ``arrived`` is true when the party reaches its synchronization
    point, ``peer_ready`` is true when the other party has arrived (possibly
    earlier); the output ``may_run`` tells the party whether it may execute
    this step (it must pause once it has arrived until the peer is ready).
    """
    builder = ProcessBuilder(name, inputs=["arrived", "peer_ready"], outputs=["may_run"])
    builder.local("waiting", "previous_waiting")
    builder.synchronize("arrived", "peer_ready", "may_run", "waiting", "previous_waiting")
    builder.define("previous_waiting", signal("waiting").pre(False))
    builder.define(
        "waiting",
        (signal("arrived").or_(signal("previous_waiting"))).and_(signal("peer_ready").not_()),
    )
    builder.define("may_run", signal("previous_waiting").not_().or_(signal("peer_ready")))
    return builder.build()
