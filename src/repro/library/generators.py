"""Scalable synthetic networks of endochronous components.

The paper's central claim is qualitative: the static weakly-hierarchic
criterion scales where model-checking weak endochrony does not, because the
latter explores a state/reaction space that grows exponentially with the
number of independently clocked components.  These generators produce
families of networks parameterized by their size so that the benchmarks can
sweep that dimension:

* :func:`independent_components` — ``n`` unconnected endochronous counters;
* :func:`pipeline_network` — a chain of ``n`` relay components, each paced by
  its own activation input and connected to the next by a shared signal;
* :func:`star_network` — one source feeding ``n`` consumers;
* :func:`chain_of_buffers` — ``n`` one-place buffers in sequence (the LTTA
  bus generalized).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lang.ast import ProcessDefinition
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_true
from repro.lang.normalize import NormalizedProcess, normalize
from repro.library.basic import buffer_process


def _counter_component(index: int) -> ProcessDefinition:
    """An endochronous counter paced by its own boolean activation input."""
    activation = f"c{index}"
    output = f"u{index}"
    builder = ProcessBuilder(f"counter{index}", inputs=[activation], outputs=[output])
    builder.constrain(tick(output), when_true(activation))
    builder.define(output, const(1) + signal(output).pre(0))
    return builder.build()


def independent_components(count: int) -> Tuple[List[NormalizedProcess], NormalizedProcess]:
    """``count`` endochronous counters with no shared signal."""
    components = [normalize(_counter_component(index)) for index in range(count)]
    composition = components[0]
    for component in components[1:]:
        composition = composition.compose(component)
    composition.name = f"independent_{count}"
    return components, composition


def _relay_component(index: int, input_signal: str, output_signal: str) -> ProcessDefinition:
    """A relay adding one to its input, paced by its own activation input."""
    activation = f"c{index}"
    builder = ProcessBuilder(
        f"relay{index}", inputs=[activation, input_signal], outputs=[output_signal]
    )
    builder.constrain(tick(input_signal), when_true(activation))
    builder.define(output_signal, signal(input_signal) + const(1))
    return builder.build()


def pipeline_network(length: int) -> Tuple[List[NormalizedProcess], NormalizedProcess]:
    """A chain of ``length`` relays; stage ``i`` feeds stage ``i + 1``.

    Every stage is endochronous (rooted at its activation input); the
    composition is multi-rooted and exhibits one reported clock constraint
    ``[c_i] = [c_{i+1}]`` per connection, exactly the situation the
    compositional criterion is designed for.
    """
    components: List[NormalizedProcess] = []
    for index in range(length):
        input_signal = "x0" if index == 0 else f"x{index}"
        output_signal = f"x{index + 1}"
        components.append(normalize(_relay_component(index, input_signal, output_signal)))
    composition = components[0]
    for component in components[1:]:
        composition = composition.compose(component)
    composition.name = f"pipeline_{length}"
    return components, composition


def star_network(branches: int) -> Tuple[List[NormalizedProcess], NormalizedProcess]:
    """A source feeding ``branches`` independent consumers of its output."""
    source_builder = ProcessBuilder("source", inputs=["c0"], outputs=["x"])
    source_builder.constrain(tick("x"), when_true("c0"))
    source_builder.define("x", const(1) + signal("x").pre(0))
    components = [normalize(source_builder.build())]
    for index in range(1, branches + 1):
        consumer_builder = ProcessBuilder(
            f"sink{index}", inputs=[f"c{index}", "x"], outputs=[f"y{index}"]
        )
        consumer_builder.constrain(tick("x"), when_true(f"c{index}"))
        consumer_builder.define(f"y{index}", signal("x") + const(index))
        components.append(normalize(consumer_builder.build()))
    composition = components[0]
    for component in components[1:]:
        composition = composition.compose(component)
    composition.name = f"star_{branches}"
    return components, composition


def chain_of_buffers(length: int) -> Tuple[List[NormalizedProcess], NormalizedProcess]:
    """``length`` one-place buffers in sequence (a generalized LTTA bus)."""
    components: List[NormalizedProcess] = []
    for index in range(length):
        input_signal = "y0" if index == 0 else f"y{index}"
        output_signal = f"y{index + 1}"
        definition = buffer_process(
            name=f"buffer{index}", input_name=input_signal, output_name=output_signal
        )
        components.append(normalize(definition))
    composition = components[0]
    for component in components[1:]:
        composition = composition.compose(component)
    composition.name = f"buffer_chain_{length}"
    return components, composition
