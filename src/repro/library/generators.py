"""Scalable synthetic networks of endochronous components (compatibility shim).

The generator families that used to live here — the size-parameterized
benchmark networks the paper's scalability argument sweeps over — are now
grammar-level primitives of :mod:`repro.gen.topologies`, alongside the
richer families (token rings, arbiter trees, crossbars, clock dividers,
mode automata) and the seeded design sampler.

This module lazily re-exports **everything** :mod:`repro.gen.topologies`
declares public, via module ``__getattr__`` (PEP 562): the export set is
read from ``repro.gen.topologies.__all__`` at lookup time, so the shim can
never drift from the real module — a family added there is immediately
importable from here, with no import cost until a name is actually touched
(``tests/test_generators_and_library.py`` pins the two ``__all__`` lists
equal).
"""

from __future__ import annotations

from typing import List


def _topologies():
    from repro.gen import topologies

    return topologies


def __getattr__(name: str):
    if name == "__all__":
        return list(_topologies().__all__)
    topologies = _topologies()
    if name in topologies.__all__:
        return getattr(topologies, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_topologies().__all__))
