"""Scalable synthetic networks of endochronous components (compatibility shim).

The generator families that used to live here — the size-parameterized
benchmark networks the paper's scalability argument sweeps over — are now
grammar-level primitives of :mod:`repro.gen.topologies`, alongside the
richer families (token rings, arbiter trees, crossbars, clock dividers,
mode automata) and the seeded design sampler.  This module re-exports the
historical names so existing imports keep working:

* :func:`independent_components` — ``n`` unconnected endochronous counters;
* :func:`pipeline_network` — a chain of ``n`` relay components, each paced by
  its own activation input and connected to the next by a shared signal;
* :func:`star_network` — one source feeding ``n`` consumers;
* :func:`chain_of_buffers` — ``n`` one-place buffers in sequence (the LTTA
  bus generalized).
"""

from __future__ import annotations

from repro.gen.topologies import (
    chain_of_buffers,
    independent_components,
    pipeline_network,
    star_network,
)

__all__ = [
    "independent_components",
    "pipeline_network",
    "star_network",
    "chain_of_buffers",
]
