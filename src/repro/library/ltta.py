"""The loosely time-triggered architecture of Section 4.2.

The LTTA is composed of a writer, a bus and a reader, each paced by its own
clock.  The writer emits a value together with an alternating boolean flag;
the bus is two one-place buffers in sequence; the reader samples the value
whenever the flag it observes has changed (an alternating-bit protocol).
The LTTA is *not* endochronous (its hierarchy has several roots — one per
device) but it is isochronous because every device is endochronous and the
composition is well-clocked and acyclic.
"""

from __future__ import annotations

from typing import Dict

from repro.lang.ast import ProcessDefinition
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_false, when_true
from repro.lang.normalize import NormalizedProcess, normalize
from repro.library.basic import buffer2_process, filter_process


def writer_process(name: str = "writer") -> ProcessDefinition:
    """``(yw, bw) = writer(xw, cw)``: emit the input with an alternating flag.

    * ``xw^ = bw^ = [cw]``
    * ``yw = xw``
    * ``bw = not (bw pre true)``
    """
    builder = ProcessBuilder(name, inputs=["xw", "cw"], outputs=["yw", "bw"])
    builder.constrain(tick("xw"), tick("bw"), when_true("cw"))
    builder.define("yw", signal("xw"))
    builder.define("bw", signal("bw").pre(True).not_())
    return builder.build()


def bus_process(name: str = "bus") -> ProcessDefinition:
    """``(yr, br) = bus(yw, bw)``: two one-place buffers in sequence.

    The paper passes an unused bus clock ``cb`` (the buffers are paced by
    their own local clocks); it is omitted here since an unconstrained unused
    input would only add a spurious hierarchy root.
    """
    builder = ProcessBuilder(name, inputs=["yw", "bw"], outputs=["yr", "br"])
    builder.local("yb", "bb")
    builder.instantiate("buffer2", [signal("yw"), signal("bw")], ["yb", "bb"])
    builder.instantiate("buffer2", [signal("yb"), signal("bb")], ["yr", "br"])
    return builder.build()


def reader_process(name: str = "reader") -> ProcessDefinition:
    """``xr = reader(yr, br, cr)``: sample ``yr`` whenever the flag ``br`` changed.

    * ``xr = yr when filter(br)``
    * ``yr^ = br^ = [cr]``
    """
    builder = ProcessBuilder(name, inputs=["yr", "br", "cr"], outputs=["xr"])
    builder.local("fr")
    builder.instantiate("filter", [signal("br")], ["fr"])
    builder.define("xr", signal("yr").when(signal("fr")))
    builder.constrain(tick("yr"), tick("br"), when_true("cr"))
    return builder.build()


def ltta_process(name: str = "ltta") -> ProcessDefinition:
    """``xr = ltta(xw, cw, cr)``: writer → bus → reader."""
    builder = ProcessBuilder(name, inputs=["xw", "cw", "cr"], outputs=["xr"])
    builder.local("yw", "bw", "yr", "br")
    builder.instantiate("writer", [signal("xw"), signal("cw")], ["yw", "bw"])
    builder.instantiate("bus", [signal("yw"), signal("bw")], ["yr", "br"])
    builder.instantiate("reader", [signal("yr"), signal("br"), signal("cr")], ["xr"])
    return builder.build()


def ltta_components() -> Dict[str, NormalizedProcess]:
    """The four endochronous components of the LTTA, as the paper decomposes it.

    The bus is split into its two one-place buffers (each endochronous); the
    hierarchy of the composition then has four single-rooted trees — writer,
    first buffer, second buffer, reader — connected by rendez-vous points,
    which is the situation depicted in the paper's LTTA hierarchy figure.
    """
    definitions = registry()
    first_buffer = buffer2_process(
        name="bus_stage1",
        value_input="yw",
        flag_input="bw",
        value_output="yb",
        flag_output="bb",
    )
    second_buffer = buffer2_process(
        name="bus_stage2",
        value_input="yb",
        flag_input="bb",
        value_output="yr",
        flag_output="br",
    )
    return {
        "writer": normalize(definitions["writer"], definitions),
        "bus_stage1": normalize(first_buffer, definitions),
        "bus_stage2": normalize(second_buffer, definitions),
        "reader": normalize(definitions["reader"], definitions),
    }


def registry() -> Dict[str, ProcessDefinition]:
    """The process registry needed to normalize the LTTA."""
    return {
        "filter": filter_process(),
        "buffer2": buffer2_process(),
        "writer": writer_process(),
        "bus": bus_process(),
        "reader": reader_process(),
    }


def normalized_suite() -> Dict[str, NormalizedProcess]:
    """Normalized writer, bus, reader and full LTTA (keyed by name)."""
    definitions = registry()
    return {
        "writer": normalize(definitions["writer"], definitions),
        "bus": normalize(definitions["bus"], definitions),
        "reader": normalize(definitions["reader"], definitions),
        "ltta": normalize(ltta_process(), definitions),
    }
