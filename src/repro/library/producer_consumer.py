"""The producer / consumer / main processes of Section 5.

The producer increments ``u`` when its input ``a`` is true and increments a
shared counter ``x`` otherwise; the consumer adds ``x`` (or 1 when ``x`` is
absent) to its count ``v`` at the pace of its own input ``b``.  Both are
endochronous, but their composition is only *weakly* endochronous: the clock
constraint ``[¬a] = [b]`` relating the two inputs has to be enforced by a
synthesized controller (Section 5.2).
"""

from __future__ import annotations

from typing import Dict

from repro.lang.ast import ProcessDefinition
from repro.lang.builder import ProcessBuilder, const, signal, tick, when_false, when_true
from repro.lang.normalize import NormalizedProcess, normalize


def producer_process(name: str = "producer") -> ProcessDefinition:
    """``(u, x) = producer(a)``: count the true and false occurrences of ``a``.

    * ``u^ = [a]``,  ``u = 1 + (u pre 0)``
    * ``x^ = [¬a]``, ``x = 1 + (x pre 0)``
    """
    builder = ProcessBuilder(name, inputs=["a"], outputs=["u", "x"])
    builder.constrain(tick("u"), when_true("a"))
    builder.define("u", const(1) + signal("u").pre(0))
    builder.constrain(tick("x"), when_false("a"))
    builder.define("x", const(1) + signal("x").pre(0))
    return builder.build()


def consumer_process(name: str = "consumer") -> ProcessDefinition:
    """``v = consumer(b, x)``: add ``x`` (or 1) to the count ``v`` at the pace of ``b``.

    * ``v^ = b^``
    * ``x^ = [b]``
    * ``v = (v pre 0) + (x default 1)``
    """
    builder = ProcessBuilder(name, inputs=["b", "x"], outputs=["v"])
    builder.constrain(tick("v"), tick("b"))
    builder.constrain(tick("x"), when_true("b"))
    builder.define("v", signal("v").pre(0) + signal("x").default(const(1)))
    return builder.build()


def main_process(name: str = "main") -> ProcessDefinition:
    """``(u, v) = main(a, b)``: the composition of the producer and the consumer.

    The shared signal ``x`` is local to the composition; its clock is
    constrained to ``[¬a]`` by the producer and to ``[b]`` by the consumer,
    which is exactly the clock constraint ``[¬a] = [b]`` that Polychrony
    reports and that the controller of Section 5.2 enforces.
    """
    builder = ProcessBuilder(name, inputs=["a", "b"], outputs=["u", "v"])
    builder.local("x")
    builder.instantiate("producer", ["a"], ["u", "x"])
    builder.instantiate("consumer", ["b", "x"], ["v"])
    return builder.build()


def main2_process(name: str = "main2") -> ProcessDefinition:
    """``(u, w) = main2(a, b, c)``: main composed with a second consumer (Section 5.2).

    Demonstrates the compositionality of the scheme: adding one more
    endochronous component only requires one more controller between the new
    component and the existing network.
    """
    builder = ProcessBuilder(name, inputs=["a", "b", "c"], outputs=["u", "w"])
    builder.local("x", "v")
    builder.instantiate("producer", ["a"], ["u", "x"])
    builder.instantiate("consumer", ["b", "x"], ["v"])
    builder.instantiate("consumer", ["c", "v"], ["w"])
    return builder.build()


def registry() -> Dict[str, ProcessDefinition]:
    """The process registry needed to normalize ``main`` and ``main2``."""
    return {
        "producer": producer_process(),
        "consumer": consumer_process(),
    }


def normalized_suite() -> Dict[str, NormalizedProcess]:
    """Normalized producer, consumer, main and main2 (keyed by name)."""
    definitions = registry()
    return {
        "producer": normalize(definitions["producer"]),
        "consumer": normalize(definitions["consumer"]),
        "main": normalize(main_process(), definitions),
        "main2": normalize(main2_process(), definitions),
    }
