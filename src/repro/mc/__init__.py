"""Model-checking substrate (the role Sigali plays for Polychrony).

The paper checks weak endochrony by model checking three invariants over the
boolean abstraction of a Signal process (Section 4.1).  This package builds
that abstraction as a finite labelled transition system whose labels are
reactions, explores it eagerly (:mod:`repro.mc.transition`), on the fly with
lazy product construction and early termination (:mod:`repro.mc.onthefly`),
or symbolically with BDDs (:mod:`repro.mc.symbolic`), and implements the
``StateIndependent``, ``OrderIndependent`` and ``FlowIndependent``
invariants used by Property 3 (:mod:`repro.mc.invariants`).
"""

from repro.mc.transition import BooleanAbstraction, ReactionChoice, ReactionLTS, build_lts
from repro.mc.explicit import ExplicitStateChecker, InvariantResult
from repro.mc.onthefly import LazyReactionLTS, OnTheFlyChecker, ProductLTS
from repro.mc.symbolic import SymbolicChecker, SymbolicProductChecker
from repro.mc.compiled import (
    CompilationError,
    CompiledAbstraction,
    build_lts_compiled,
    compilation_obstacles,
)
from repro.mc.invariants import (
    check_state_independent,
    check_order_independent,
    check_flow_independent,
    check_weak_endochrony_invariants,
    WeakEndochronyInvariantReport,
)

__all__ = [
    "BooleanAbstraction",
    "ReactionChoice",
    "ReactionLTS",
    "build_lts",
    "ExplicitStateChecker",
    "InvariantResult",
    "LazyReactionLTS",
    "OnTheFlyChecker",
    "ProductLTS",
    "SymbolicChecker",
    "SymbolicProductChecker",
    "CompilationError",
    "CompiledAbstraction",
    "build_lts_compiled",
    "compilation_obstacles",
    "check_state_independent",
    "check_order_independent",
    "check_flow_independent",
    "check_weak_endochrony_invariants",
    "WeakEndochronyInvariantReport",
]
