"""The compiled reaction engine: solve for admissible reactions, don't guess.

The paper compiles Signal programs to polynomial transition systems so that
Sigali can *solve* for admissible reactions; the eager engine of
:mod:`repro.mc.transition` instead enumerates all ``2^k`` candidate
activations per state and runs the full :class:`SignalInterpreter` on each
to accept or reject it.  This module reproduces the paper's move for the
boolean abstraction: the normalized equations are compiled **once** into a
BDD over event, value and register variables —

* ``e·x``  — presence of signal ``x`` in the reaction;
* ``d·x``  — the boolean value ``x`` carries when present (boolean signals
  only; absent signals have ``d·x`` normalized to false so each admissible
  reaction is exactly one satisfying assignment);
* ``s·r`` / ``s'·r`` — the current / next value of boolean register ``r``

— and ``reactions(state)`` becomes ``step.restrict(state)`` followed by the
output-sensitive :meth:`~repro.bdd.bdd.BDDManager.satisfy_all` walk: the
cost per state is proportional to the number of *admissible* reactions, not
to the number of candidates, and **zero interpreter evaluations** happen on
the per-state path (``tests/test_compiled.py`` pins this on the
interpreter's instrumentation counter).

The engine compiles the fragment of the abstraction whose boolean values
are boolean-definable: processes whose boolean signals are computed by
boolean operators, delays, samplings and merges over boolean operands.
Boolean values produced from *numeric data* (comparisons such as
``x < y``), and boolean non-input signals with no defining equation (whose
value only the interpreter's solver could rule out), are outside the
fragment — :func:`compilation_obstacles` names the offending equations and
:meth:`CompiledAbstraction.try_compile` returns ``None`` so callers fall
back to the interpreter-backed enumeration transparently.

The compiled step relation lives on a **private** manager (any registered
:mod:`repro.bdd.backend` kernel; ``backend=`` or ``REPRO_BDD_BACKEND``
selects it) whose variable order is seeded from the clock hierarchy (registers interleaved
current/next first, then signals forest-ordered with each ``e·x`` adjacent
to its ``d·x``); after compilation the manager sheds its intermediate
conjuncts (:meth:`~repro.bdd.bdd.BDDManager.collect_garbage`) and — for
large relations — runs a sifting pass to shrink the order further.

The interpreter is kept as a *cross-check oracle*: ``cross_check=True``
verifies every per-state answer against
:meth:`~repro.mc.transition.BooleanAbstraction.reactions` (used by the
equivalence tests; off on the production path).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bdd.backend import create_manager, load_manager
from repro.bdd.bdd import BDD, BDDManager
from repro.clocks.hierarchy import ClockHierarchy, build_hierarchy
from repro.lang.ast import (
    ClockBinary,
    ClockEmpty,
    ClockExpressionSyntax,
    ClockFalse,
    ClockOf,
    ClockTrue,
    Const,
)
from repro.lang.normalize import (
    ClockEquation,
    DelayEquation,
    FunctionEquation,
    MergeEquation,
    NormalizedProcess,
    SamplingEquation,
)
from repro.mc.transition import (
    CANONICAL_NUMERIC_VALUE,
    BooleanAbstraction,
    ReactionLTS,
    State,
)
from repro.mocc.interning import intern_state
from repro.mocc.reactions import Reaction

from repro.mc.symbolic import current_variable, event_variable, next_variable, value_variable

#: boolean operators the step relation can encode directly
_BOOLEAN_OPERATORS = frozenset({"and", "or", "xor", "not", "id", "=", "/="})

#: past this many step-relation nodes, a sifting pass is worth its cost
SIFT_THRESHOLD = 2048


class CompilationError(ValueError):
    """The process is outside the boolean-definable fragment."""


def _is_bool(process: NormalizedProcess, operand) -> bool:
    """Is this operand (signal name or constant) boolean-valued?"""
    if isinstance(operand, Const):
        return isinstance(operand.value, bool)
    return process.types.get(operand) == "bool"


def compilation_obstacles(process: NormalizedProcess) -> List[str]:
    """Why the process cannot be compiled (empty list = compilable).

    The compiled relation tracks boolean values only; every equation that
    *produces* a boolean value must therefore compute it from boolean
    operands.  A boolean non-input signal with no defining equation is also
    rejected: its value would be a free variable of the relation, where the
    interpreter's solver rejects the reaction as underdetermined.
    """
    obstacles: List[str] = []
    booleans = set(process.boolean_signals())
    defined: Set[str] = set()
    for equation in process.equations:
        target = equation.defined_signal()
        if target is not None:
            defined.add(target)
        if isinstance(equation, FunctionEquation):
            if equation.target not in booleans:
                continue
            if equation.operator not in _BOOLEAN_OPERATORS:
                obstacles.append(
                    f"boolean {equation.target!r} is computed by {equation.operator!r} "
                    "(a data comparison the boolean abstraction cannot express)"
                )
                continue
            for operand in equation.operands:
                if equation.operator == "id" and isinstance(operand, Const):
                    if not isinstance(operand.value, bool):
                        obstacles.append(
                            f"boolean {equation.target!r} is defined by the non-boolean "
                            f"constant {operand.value!r}"
                        )
                    continue
                if not _is_bool(process, operand):
                    obstacles.append(
                        f"boolean {equation.target!r} depends on non-boolean operand "
                        f"{operand!r}"
                    )
        elif isinstance(equation, DelayEquation):
            if equation.target in booleans and not _is_bool(process, equation.source):
                obstacles.append(
                    f"boolean register {equation.target!r} delays non-boolean "
                    f"{equation.source!r}"
                )
        elif isinstance(equation, SamplingEquation):
            if process.types.get(equation.condition) != "bool":
                obstacles.append(
                    f"sampling condition {equation.condition!r} is not boolean"
                )
            if equation.target in booleans and not _is_bool(process, equation.source):
                obstacles.append(
                    f"boolean {equation.target!r} samples non-boolean "
                    f"{equation.source!r}"
                )
        elif isinstance(equation, MergeEquation):
            if equation.target in booleans and not (
                _is_bool(process, equation.preferred)
                and _is_bool(process, equation.alternative)
            ):
                obstacles.append(
                    f"boolean {equation.target!r} merges non-boolean branches"
                )
        elif isinstance(equation, ClockEquation):
            for side in (equation.left, equation.right):
                for name in _value_literal_signals(side):
                    if name not in booleans:
                        obstacles.append(
                            f"clock literal over non-boolean signal {name!r}"
                        )
    inputs = set(process.inputs)
    for name in sorted(booleans):
        if name not in inputs and name not in defined:
            obstacles.append(
                f"boolean {name!r} is neither an input nor defined by any equation "
                "(its value would be unconstrained)"
            )
    return obstacles


def _value_literal_signals(expression: ClockExpressionSyntax) -> Set[str]:
    if isinstance(expression, (ClockTrue, ClockFalse)):
        return {expression.name}
    if isinstance(expression, ClockBinary):
        return _value_literal_signals(expression.left) | _value_literal_signals(
            expression.right
        )
    return set()


class CompiledAbstraction:
    """Drop-in replacement for :class:`BooleanAbstraction` on the compiled path.

    Exposes the same two entry points the lazy and eager engines drive —
    :meth:`initial_state` and :meth:`reactions` — but answers them from the
    compiled step relation.  Raises :class:`CompilationError` outside the
    fragment; use :meth:`try_compile` for the fall-back-to-``None`` form.
    """

    def __init__(
        self,
        process: NormalizedProcess,
        hierarchy: Optional[ClockHierarchy] = None,
        cross_check: bool = False,
        sift_threshold: int = SIFT_THRESHOLD,
        backend: Optional[str] = None,
    ):
        obstacles = compilation_obstacles(process)
        if obstacles:
            raise CompilationError(
                f"{process.name} is outside the compiled fragment: "
                + "; ".join(obstacles[:3])
            )
        self.process = process
        self.hierarchy = hierarchy or build_hierarchy(process)
        self._boolean = set(process.boolean_signals())
        self._signals: Tuple[str, ...] = process.all_signals()
        self._registers: Tuple[str, ...] = tuple(
            name for name in process.state_signals() if name in self._boolean
        )
        self._initial_values: Dict[str, object] = {
            equation.target: equation.initial
            for equation in process.equations
            if isinstance(equation, DelayEquation)
        }
        self.manager = create_manager(self._seed_variable_order(), backend=backend)
        self.step = self._compile()
        (self.step,) = self.manager.collect_garbage([self.step])
        if self.step.node_count() > sift_threshold:
            (self.step,) = self.manager.sift([self.step], max_variables=24)
        self._precompute_columns()
        self._oracle: Optional[BooleanAbstraction] = (
            BooleanAbstraction(process, self.hierarchy) if cross_check else None
        )
        #: instrumentation for the benchmarks: per-state queries served and
        #: reactions enumerated by the BDD walk
        self.states_enumerated = 0
        self.reactions_enumerated = 0

    @classmethod
    def try_compile(
        cls,
        process: NormalizedProcess,
        hierarchy: Optional[ClockHierarchy] = None,
        **options,
    ) -> Optional["CompiledAbstraction"]:
        """The compiled abstraction, or ``None`` outside the fragment."""
        try:
            return cls(process, hierarchy, **options)
        except CompilationError:
            return None

    def _precompute_columns(self) -> None:
        """Fix the enumeration layout once, so ``reactions`` indexes rows.

        ``_enumerate_variables`` is the column order of the satisfying-
        assignment matrix: every signal's event variable, then the value
        variables of the boolean signals, then the registers' next-state
        variables.  Decoding a reaction from a row is then pure integer
        indexing — no per-row dictionary, no per-row name mangling.
        """
        self._enumerate_variables: Tuple[str, ...] = tuple(
            [event_variable(name) for name in self._signals]
            + [value_variable(name) for name in self._signals if name in self._boolean]
            + [next_variable(register) for register in self._registers]
        )
        width = len(self._signals)
        value_column: Dict[str, int] = {}
        for name in self._signals:
            if name in self._boolean:
                value_column[name] = width
                width += 1
        self._signal_columns: Tuple[Tuple[str, int, Optional[int]], ...] = tuple(
            (name, index, value_column.get(name))
            for index, name in enumerate(self._signals)
        )
        self._register_columns: Tuple[Tuple[str, int], ...] = tuple(
            (register, width + offset)
            for offset, register in enumerate(self._registers)
        )

    # -- variable order ----------------------------------------------------------
    def _seed_variable_order(self) -> List[str]:
        """Registers first (current/next interleaved), then the signal forest.

        The clock hierarchy orders signals parent-before-child (a clock near
        the root decides the presence of everything below it, so testing it
        early keeps the relation shallow); each presence variable sits right
        next to its value variable.
        """
        order: List[str] = []
        for register in self._registers:
            order.append(current_variable(register))
            order.append(next_variable(register))
        emitted: Set[str] = set()

        def emit(name: str) -> None:
            if name in emitted:
                return
            emitted.add(name)
            order.append(event_variable(name))
            if name in self._boolean:
                order.append(value_variable(name))

        parents = self.hierarchy.parent_map()
        children: Dict[Optional[int], List[int]] = {}
        for index, parent in parents.items():
            children.setdefault(parent, []).append(index)

        def visit(index: int) -> None:
            for name in self.hierarchy.classes[index].signal_clocks():
                emit(name)
            for child in sorted(children.get(index, [])):
                visit(child)

        for root in sorted(children.get(None, [])):
            visit(root)
        for name in self._signals:
            emit(name)
        return order

    # -- compilation -------------------------------------------------------------
    def _event(self, name: str) -> BDD:
        return self.manager.var(event_variable(name))

    def _value(self, name: str) -> BDD:
        return self.manager.var(value_variable(name))

    def _operand_value(self, operand) -> BDD:
        if isinstance(operand, Const):
            return self.manager.constant(bool(operand.value))
        return self._value(operand)

    def _operand_presence(self, operand) -> BDD:
        if isinstance(operand, Const):
            return self.manager.true
        return self._event(operand)

    def _compile(self) -> BDD:
        # canonical values: an absent boolean signal carries value false, so
        # admissible reactions and satisfying assignments are in bijection
        parts: List[BDD] = [
            self._event(name) | ~self._value(name)
            for name in self._signals
            if name in self._boolean
        ]
        # every register's next value is fixed by its delay equation (held
        # when the source is absent), so no separate frame constraint is needed
        parts.extend(self._compile_equation(equation) for equation in self.process.equations)
        if not parts:
            return self.manager.true
        # balanced conjunction: neighbouring equations constrain neighbouring
        # signals, so pairing them keeps the intermediate BDDs local and small
        while len(parts) > 1:
            paired = [left & right for left, right in zip(parts[::2], parts[1::2])]
            if len(parts) % 2:
                paired.append(parts[-1])
            parts = paired
        return parts[0]

    def _compile_equation(self, equation) -> BDD:
        manager = self.manager
        if isinstance(equation, FunctionEquation):
            target_event = self._event(equation.target)
            constraint = manager.true
            for operand in equation.operands:
                if not isinstance(operand, Const):
                    constraint = constraint & target_event.iff(self._event(operand))
            if equation.target in self._boolean:
                value = self._function_value(equation)
                constraint = constraint & target_event.implies(
                    self._value(equation.target).iff(value)
                )
            return constraint
        if isinstance(equation, DelayEquation):
            target_event = self._event(equation.target)
            constraint = target_event.iff(self._event(equation.source))
            if equation.target in self._registers:
                current = manager.var(current_variable(equation.target))
                nxt = manager.var(next_variable(equation.target))
                constraint = constraint & target_event.implies(
                    self._value(equation.target).iff(current)
                )
                written = self._event(equation.source)
                constraint = constraint & nxt.iff(
                    written.ite(self._operand_value(equation.source), current)
                )
            return constraint
        if isinstance(equation, SamplingEquation):
            condition_true = self._event(equation.condition) & self._value(
                equation.condition
            )
            active = condition_true & self._operand_presence(equation.source)
            constraint = self._event(equation.target).iff(active)
            if equation.target in self._boolean:
                constraint = constraint & self._event(equation.target).implies(
                    self._value(equation.target).iff(self._operand_value(equation.source))
                )
            return constraint
        if isinstance(equation, MergeEquation):
            preferred = self._event(equation.preferred)
            alternative = self._event(equation.alternative)
            constraint = self._event(equation.target).iff(preferred | alternative)
            if equation.target in self._boolean:
                chosen = preferred.ite(
                    self._value(equation.preferred), self._value(equation.alternative)
                )
                constraint = constraint & self._event(equation.target).implies(
                    self._value(equation.target).iff(chosen)
                )
            return constraint
        if isinstance(equation, ClockEquation):
            return self._encode_clock(equation.left).iff(self._encode_clock(equation.right))
        raise CompilationError(f"unsupported primitive equation: {equation!r}")

    def _function_value(self, equation: FunctionEquation) -> BDD:
        operator = equation.operator
        operands = [self._operand_value(operand) for operand in equation.operands]
        if operator == "id":
            return operands[0]
        if operator == "not":
            return ~operands[0]
        if operator == "and":
            return self.manager.conjoin(operands)
        if operator == "or":
            return self.manager.disjoin(operands)
        if operator == "xor":
            result = operands[0]
            for operand in operands[1:]:
                result = result ^ operand
            return result
        if operator == "=":
            return operands[0].iff(operands[1])
        if operator == "/=":
            return operands[0] ^ operands[1]
        raise CompilationError(f"operator {operator!r} is outside the boolean fragment")

    def _encode_clock(self, expression: ClockExpressionSyntax) -> BDD:
        if isinstance(expression, ClockEmpty):
            return self.manager.false
        if isinstance(expression, ClockOf):
            return self._event(expression.name)
        if isinstance(expression, ClockTrue):
            return self._event(expression.name) & self._value(expression.name)
        if isinstance(expression, ClockFalse):
            return self._event(expression.name) & ~self._value(expression.name)
        if isinstance(expression, ClockBinary):
            left = self._encode_clock(expression.left)
            right = self._encode_clock(expression.right)
            if expression.operator == "and":
                return left & right
            if expression.operator == "or":
                return left | right
            if expression.operator == "diff":
                return left & ~right
        raise CompilationError(f"unsupported clock expression: {expression!r}")

    # -- the BooleanAbstraction interface ----------------------------------------
    def initial_state(self) -> State:
        return intern_state(
            tuple((name, self._initial_values[name]) for name in self._registers)
        )

    def reactions(self, state: State) -> List[Tuple[Reaction, State]]:
        """The admissible reactions from ``state`` with their successor states.

        One cofactor on the register variables, then the output-sensitive
        satisfying-assignment enumeration — as a matrix
        (:meth:`~repro.bdd.bdd.BDDManager.satisfy_matrix`), decoded by the
        column indices fixed in :meth:`_precompute_columns`: no candidate
        generation, no rejected activations, no interpreter, no per-row
        dictionaries.  Like :meth:`BooleanAbstraction.reactions`, this does
        not memoize — the lazy LTS layer
        (:class:`~repro.mc.onthefly.LazyReactionLTS`) caches successor sets
        per state for both engines.
        """
        assignment = {current_variable(name): bool(value) for name, value in state}
        cofactor = self.step.restrict(assignment)
        results: List[Tuple[Reaction, State]] = []
        for row in cofactor.satisfy_matrix(self._enumerate_variables):
            events: Dict[str, object] = {}
            for name, event_column, value_column in self._signal_columns:
                if row[event_column]:
                    events[name] = (
                        row[value_column]
                        if value_column is not None
                        else CANONICAL_NUMERIC_VALUE
                    )
            reaction = Reaction.interned(self._signals, events)
            successor = intern_state(
                tuple(
                    (register, row[column])
                    for register, column in self._register_columns
                )
            )
            results.append((reaction, successor))
        self.states_enumerated += 1
        self.reactions_enumerated += len(results)
        if self._oracle is not None:
            self._cross_check(state, results)
        return results

    def _cross_check(self, state: State, results: Sequence[Tuple[Reaction, State]]) -> None:
        """Oracle mode: the interpreter-backed enumeration must agree exactly."""
        expected = {(reaction, successor) for reaction, successor in self._oracle.reactions(state)}
        actual = set(results)
        if expected != actual:
            missing = expected - actual
            extra = actual - expected
            raise AssertionError(
                f"compiled engine disagrees with the interpreter at state {dict(state)}: "
                f"missing {sorted(map(repr, missing))[:3]}, extra {sorted(map(repr, extra))[:3]}"
            )

    # -- serialization ------------------------------------------------------------
    #: payload schema version; bump when the encoding of the relation changes
    PAYLOAD_FORMAT = 1

    def to_payload(self) -> Dict[str, object]:
        """A JSON-safe snapshot of the compiled engine for the artifact store.

        Records the step relation (via :meth:`BDDManager.dump`, so only the
        reachable nodes travel), the signal/register metadata the
        enumeration walk needs, and the content digest of the compiled
        process — :meth:`from_payload` refuses a payload whose digest does
        not match the process it is being attached to.
        """
        from repro.lang.printer import process_digest

        return {
            "format": self.PAYLOAD_FORMAT,
            "process": self.process.name,
            "digest": process_digest(self.process),
            "signals": list(self._signals),
            "boolean": sorted(self._boolean),
            "registers": list(self._registers),
            "initial": {
                name: self._initial_values[name] for name in self._registers
            },
            "step": self.manager.dump([self.step]),
        }

    @classmethod
    def from_payload(
        cls,
        process: NormalizedProcess,
        payload: Mapping[str, object],
        hierarchy: Optional[ClockHierarchy] = None,
        backend: Optional[str] = None,
    ) -> "CompiledAbstraction":
        """Reattach a stored step relation to ``process`` without recompiling.

        The reconstruction is linear in the stored node count: no equation
        compilation, no conjunction schedule, no sifting — which is the
        whole point of persisting the relation.  Raises ``ValueError`` when
        the payload's format or content digest does not match.
        """
        from repro.lang.printer import process_digest

        if payload.get("format") != cls.PAYLOAD_FORMAT:
            raise ValueError(
                f"unsupported compiled-abstraction payload format {payload.get('format')!r}"
            )
        digest = process_digest(process)
        if payload.get("digest") != digest:
            raise ValueError(
                f"compiled payload was built for digest {payload.get('digest')!r}, "
                f"not for {process.name!r} ({digest})"
            )
        # α-equivalent processes share a digest but may spell their hidden
        # locals differently; the stored relation names concrete signals, so
        # it only fits a process with the *same* spellings — anything else
        # must recompile (the store treats this ValueError as a miss)
        if tuple(payload["signals"]) != process.all_signals():
            raise ValueError(
                f"compiled payload names signals {payload['signals']!r} but "
                f"{process.name!r} has {process.all_signals()!r} "
                "(α-variant of the stored process)"
            )
        instance = cls.__new__(cls)
        instance.process = process
        instance.hierarchy = hierarchy
        instance._boolean = set(payload["boolean"])
        instance._signals = tuple(payload["signals"])
        instance._registers = tuple(payload["registers"])
        instance._initial_values = dict(payload["initial"])
        manager, (step,) = load_manager(payload["step"], backend=backend)
        instance.manager = manager
        instance.step = step
        instance._precompute_columns()
        instance._oracle = None
        instance.states_enumerated = 0
        instance.reactions_enumerated = 0
        return instance

    # -- reporting ----------------------------------------------------------------
    def bdd_nodes(self) -> int:
        """Nodes of the compiled step relation."""
        return self.step.node_count()

    def statistics(self) -> Dict[str, int]:
        return {
            "step_nodes": self.bdd_nodes(),
            "variables": len(self.manager.variables()),
            "states_enumerated": self.states_enumerated,
            "reactions_enumerated": self.reactions_enumerated,
        }


def compiled_artifact_payload(
    process: NormalizedProcess, abstraction: Optional["CompiledAbstraction"]
) -> Dict[str, object]:
    """The artifact-store payload of a compilation result, positive or negative.

    A ``None`` abstraction is the *negative* answer — the process is outside
    the boolean-definable fragment — persisted with its obstacles and the
    payload format, so a later release that widens the fragment invalidates
    stale negatives instead of pinning the process to the interpreter.
    """
    if abstraction is None:
        return {
            "compilable": False,
            "format": CompiledAbstraction.PAYLOAD_FORMAT,
            "process": process.name,
            "obstacles": compilation_obstacles(process),
        }
    return {
        "compilable": True,
        "process": process.name,
        "abstraction": abstraction.to_payload(),
    }


def compiled_from_artifact(
    process: NormalizedProcess,
    payload: Mapping[str, object],
    backend: Optional[str] = None,
) -> Optional["CompiledAbstraction"]:
    """Decode a persisted compilation result back onto ``process``.

    Returns ``None`` for a valid persisted negative answer; raises
    ``ValueError`` / ``KeyError`` / ``TypeError`` when the payload is stale
    (format bump, negative from an older fragment) or was built for an
    α-variant with different signal spellings — callers treat that as a
    cache miss and recompile.
    """
    if not payload.get("compilable", True):
        if payload.get("format") != CompiledAbstraction.PAYLOAD_FORMAT:
            raise ValueError(
                "negative compilation answer from payload format "
                f"{payload.get('format')!r}; the fragment may have widened"
            )
        return None
    return CompiledAbstraction.from_payload(
        process, payload["abstraction"], backend=backend
    )


def build_lts_compiled(
    process: NormalizedProcess,
    hierarchy: Optional[ClockHierarchy] = None,
    max_states: int = 512,
    cross_check: bool = False,
    backend: Optional[str] = None,
) -> ReactionLTS:
    """Explore the reachable reaction LTS through the compiled step relation.

    Same exploration contract as :func:`repro.mc.transition.build_lts` (same
    states, same transitions, same truncation flag) — only the per-state
    enumeration differs.  Raises :class:`CompilationError` outside the
    fragment.
    """
    from repro.mc.onthefly import LazyReactionLTS, OnTheFlyChecker

    abstraction = CompiledAbstraction(
        process, hierarchy, cross_check=cross_check, backend=backend
    )
    lazy = LazyReactionLTS(process, hierarchy, abstraction=abstraction)
    checker = OnTheFlyChecker(lazy, max_states=max_states)
    return checker.materialize()
