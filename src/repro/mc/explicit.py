"""Explicit-state queries and invariant checking over reaction LTSs.

Implements the explicit side of Section 4's model checking: determinism and
the non-blocking property of Definition 4 are decided by scanning an
(eagerly explored) :class:`~repro.mc.transition.ReactionLTS`.  The
Definition 2 axioms of :mod:`repro.properties.weak_endochrony` and the
Section 4.1 invariants of :mod:`repro.mc.invariants` are written against the
query interface of :class:`ExplicitStateChecker` (``transitions_from`` /
``successor`` / ``enables`` / ``iter_states``), which the on-the-fly engine
of :mod:`repro.mc.onthefly` implements as well — the same checks then run
lazily with early termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.mc.transition import ReactionLTS, State, Transition
from repro.mocc.reactions import Reaction


@dataclass
class InvariantResult:
    """The outcome of checking one invariant: holds or a counterexample."""

    name: str
    holds: bool
    counterexample: Optional[str] = None

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:
        status = "holds" if self.holds else f"FAILS: {self.counterexample}"
        return f"{self.name}: {status}"


class ExplicitStateChecker:
    """Queries over an explored reaction LTS."""

    def __init__(self, lts: ReactionLTS):
        self.lts = lts
        self._transitions_by_state: Dict[State, List[Transition]] = {}
        for transition in lts.transitions:
            self._transitions_by_state.setdefault(transition.source, []).append(transition)

    @property
    def process_name(self) -> str:
        return self.lts.process_name

    # -- basic queries ----------------------------------------------------------
    def reachable_states(self) -> List[State]:
        return list(self.lts.states)

    def iter_states(self):
        """The explored states, in exploration order (the lazy-engine interface)."""
        return iter(self.lts.states)

    def transitions_from(self, state: State) -> List[Transition]:
        return self._transitions_by_state.get(state, [])

    def reactions_from(self, state: State) -> List[Reaction]:
        return [transition.reaction for transition in self.transitions_from(state)]

    def non_silent_reactions_from(self, state: State) -> List[Reaction]:
        return [reaction for reaction in self.reactions_from(state) if not reaction.is_silent()]

    def successor(self, state: State, reaction: Reaction) -> Optional[State]:
        for transition in self.transitions_from(state):
            if transition.reaction == reaction:
                return transition.target
        return None

    def enables(self, state: State, reaction: Reaction) -> bool:
        return self.successor(state, reaction) is not None

    # -- generic invariant checking --------------------------------------------------
    def check_state_invariant(
        self, name: str, predicate: Callable[[State], bool]
    ) -> InvariantResult:
        """Check a predicate on every reachable state."""
        for state in self.lts.states:
            if not predicate(state):
                return InvariantResult(name, False, f"violated in state {dict(state)}")
        return InvariantResult(name, True)

    def check_transition_invariant(
        self, name: str, predicate: Callable[[Transition], bool]
    ) -> InvariantResult:
        """Check a predicate on every transition."""
        for transition in self.lts.transitions:
            if not predicate(transition):
                return InvariantResult(
                    name,
                    False,
                    f"violated by reaction {transition.reaction} from state {dict(transition.source)}",
                )
        return InvariantResult(name, True)

    # -- properties used by the paper -------------------------------------------------
    def is_deterministic(self) -> InvariantResult:
        """Two transitions with the same reaction from the same state agree on the target."""
        for state in self.lts.states:
            seen: Dict[Reaction, State] = {}
            for transition in self.transitions_from(state):
                previous = seen.get(transition.reaction)
                if previous is not None and previous != transition.target:
                    return InvariantResult(
                        "determinism",
                        False,
                        f"reaction {transition.reaction} from {dict(state)} has two successors",
                    )
                seen[transition.reaction] = transition.target
        return InvariantResult("determinism", True)

    def is_non_blocking(self) -> InvariantResult:
        """Definition 4: every reachable state admits some reaction (stuttering counts)."""
        for state in self.lts.states:
            if not self.transitions_from(state):
                return InvariantResult(
                    "non-blocking", False, f"state {dict(state)} has no reaction at all"
                )
        return InvariantResult("non-blocking", True)

    def statistics(self) -> Dict[str, int]:
        return {
            "states": self.lts.state_count(),
            "transitions": self.lts.transition_count(),
        }
