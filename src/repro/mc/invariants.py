"""The weak-endochrony invariants of Section 4.1 (Property 3).

Implements the model-checking formulation the paper targets at Sigali: weak
endochrony of a compilable process is expressed as three
invariants over pairs of *root* clocks ``x``, ``y`` (and, for the third, an
arbitrary third signal ``z``), checked by the Sigali model checker:

* ``StateIndependent(x, y)``: if ``x`` can occur without ``y`` now and ``y``
  without ``x`` at the next instant, then ``x`` and ``y`` can also occur
  together now — performing them in either order does not change the state;
* ``OrderIndependent(x, y)``: when ``x`` and ``y`` are each enabled alone,
  they are also enabled together (the diamond can be closed in one step);
* ``FlowIndependent(x, y, z)``: the choice of performing ``x`` or ``y`` first
  does not decide whether a third signal ``z`` can be produced.

Here the invariants are checked on the reaction LTS of the boolean
abstraction; each function returns an :class:`InvariantResult` with a
counterexample state when the invariant fails.  Every function quantifies
over ``checker.iter_states()``, so passing an
:class:`~repro.mc.onthefly.OnTheFlyChecker` makes the same check run
on-the-fly: a failing invariant stops the exploration at the violating
state instead of forcing the full product first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.mc.explicit import ExplicitStateChecker, InvariantResult
from repro.mc.transition import ReactionLTS, State
from repro.mocc.reactions import Reaction, independent, merge_reactions


def _reactions_with(checker: ExplicitStateChecker, state: State, present: str, absent: str):
    """Reactions from ``state`` in which ``present`` occurs and ``absent`` does not."""
    return [
        reaction
        for reaction in checker.reactions_from(state)
        if present in reaction.present_signals() and absent not in reaction.present_signals()
    ]


def _reactions_with_both(checker: ExplicitStateChecker, state: State, first: str, second: str):
    return [
        reaction
        for reaction in checker.reactions_from(state)
        if first in reaction.present_signals() and second in reaction.present_signals()
    ]


def check_state_independent(
    lts: Optional[ReactionLTS], x: str, y: str, checker=None
) -> InvariantResult:
    """Property (1) of Section 4.1 for the pair of signals ``(x, y)``."""
    name = f"StateIndependent({x}, {y})"
    checker = checker or ExplicitStateChecker(lts)
    for state in checker.iter_states():
        for first in _reactions_with(checker, state, x, y):
            successor = checker.successor(state, first)
            if successor is None:
                continue
            y_after = _reactions_with(checker, successor, y, x)
            if not y_after:
                continue
            if not _reactions_with_both(checker, state, x, y):
                return InvariantResult(
                    name,
                    False,
                    f"in state {dict(state)}, {x} then {y} is possible but not {x} and {y} together",
                )
    return InvariantResult(name, True)


def check_order_independent(
    lts: Optional[ReactionLTS], x: str, y: str, checker=None
) -> InvariantResult:
    """Property (2) of Section 4.1 for the pair of signals ``(x, y)``."""
    name = f"OrderIndependent({x}, {y})"
    checker = checker or ExplicitStateChecker(lts)
    for state in checker.iter_states():
        x_alone = _reactions_with(checker, state, x, y)
        y_alone = _reactions_with(checker, state, y, x)
        if x_alone and y_alone and not _reactions_with_both(checker, state, x, y):
            return InvariantResult(
                name,
                False,
                f"in state {dict(state)}, {x} and {y} are enabled separately but never together",
            )
    return InvariantResult(name, True)


def check_flow_independent(
    lts: Optional[ReactionLTS],
    x: str,
    y: str,
    z: str,
    checker=None,
) -> InvariantResult:
    """Property (3) of Section 4.1 for the triple ``(x, y, z)``."""
    name = f"FlowIndependent({x}, {y}, {z})"
    checker = checker or ExplicitStateChecker(lts)
    for state in checker.iter_states():
        x_alone = _reactions_with(checker, state, x, y)
        y_alone = _reactions_with(checker, state, y, x)
        if not (x_alone and y_alone):
            continue
        z_now = any(z in reaction.present_signals() for reaction in checker.reactions_from(state))
        if not z_now:
            continue
        # z must remain producible whichever of x or y is performed first
        for first in x_alone + y_alone:
            successor = checker.successor(state, first)
            if successor is None:
                continue
            if z in first.present_signals():
                continue
            z_later = any(
                z in reaction.present_signals() for reaction in checker.reactions_from(successor)
            )
            if not z_later:
                return InvariantResult(
                    name,
                    False,
                    f"in state {dict(state)}, producing {sorted(first.present_signals())} first "
                    f"makes {z} unavailable",
                )
    return InvariantResult(name, True)


@dataclass
class WeakEndochronyInvariantReport:
    """The result of checking properties (1)-(3) over every pair of roots."""

    process_name: str
    pairs: List[Tuple[str, str]] = field(default_factory=list)
    results: List[InvariantResult] = field(default_factory=list)
    states_explored: int = 0
    transitions_explored: int = 0

    def holds(self) -> bool:
        return all(result.holds for result in self.results)

    def failures(self) -> List[InvariantResult]:
        return [result for result in self.results if not result.holds]

    def __str__(self) -> str:
        lines = [
            f"weak endochrony invariants for {self.process_name}: "
            f"{'hold' if self.holds() else 'FAIL'} "
            f"({self.states_explored} states, {self.transitions_explored} transitions)"
        ]
        lines.extend(f"  {result}" for result in self.results)
        return "\n".join(lines)


def check_weak_endochrony_invariants(
    lts: Optional[ReactionLTS],
    root_signals: Sequence[Sequence[str]],
    flow_signals: Iterable[str] = (),
    checker=None,
) -> WeakEndochronyInvariantReport:
    """Check properties (1)-(3) for every pair of root representatives.

    ``root_signals`` lists, for every root of the clock hierarchy, the signals
    whose clock belongs to that root class; the check uses one representative
    per root, as the paper does.  ``flow_signals`` are the extra signals ``z``
    used by ``FlowIndependent`` (typically the outputs of the process).

    ``checker`` may be any object with the explicit-checker interface — in
    particular an :class:`~repro.mc.onthefly.OnTheFlyChecker`, in which case
    the invariants drive a lazy product exploration instead of a
    pre-materialized LTS.
    """
    # on-the-fly runs return at the first failing invariant: continuing to
    # sweep the remaining pairs would force the full exploration the lazy
    # engine exists to avoid (the eager route keeps reporting all pairs)
    stop_at_first_failure = checker is not None
    checker = checker or ExplicitStateChecker(lts)
    report = WeakEndochronyInvariantReport(process_name=checker.process_name)

    def finalize() -> WeakEndochronyInvariantReport:
        if lts is not None:
            report.states_explored = lts.state_count()
            report.transitions_explored = lts.transition_count()
        else:
            report.states_explored = checker.states_expanded
            report.transitions_explored = checker.transitions_expanded
        return report

    def record(result: InvariantResult) -> bool:
        report.results.append(result)
        return stop_at_first_failure and not result.holds

    representatives = [signals[0] for signals in root_signals if signals]
    for index, x in enumerate(representatives):
        for y in representatives[index + 1 :]:
            report.pairs.append((x, y))
            if record(check_state_independent(lts, x, y, checker)):
                return finalize()
            if record(check_order_independent(lts, x, y, checker)):
                return finalize()
            for z in flow_signals:
                if z in (x, y):
                    continue
                if record(check_flow_independent(lts, x, y, z, checker)):
                    return finalize()
    return finalize()
