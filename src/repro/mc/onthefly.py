"""On-the-fly product construction and frontier-based lazy search.

Implements the scalable counterpart of :mod:`repro.mc.transition`'s eager
exploration, in the spirit of the paper's central cost argument (Section 4 /
Theorem 1): deciding a property of a composition ``P1 | ... | Pn`` should not
require materializing the synchronous product up front.

* :class:`LazyReactionLTS` — the reaction LTS of one boolean abstraction with
  successors computed (and memoized) on demand instead of being explored
  eagerly by :func:`repro.mc.transition.build_lts`;
* :class:`ProductLTS` — the synchronous product of *component* abstractions,
  expanded on demand: a product reaction is a compatible join of one reaction
  per component (agreeing on the presence and value of every shared signal),
  found by backtracking over the components so incompatible combinations are
  pruned without ever enumerating the ``3^n`` global activation choices of
  the composed process;
* :class:`OnTheFlyChecker` — a frontier-based breadth-first search driver
  over any lazy LTS, presenting the same query interface as
  :class:`repro.mc.explicit.ExplicitStateChecker` so every invariant and
  Definition 2 axiom can run against it unchanged.  Checks that return on
  the first violating reaction therefore terminate after expanding only the
  states the search actually visited — ``states_expanded`` of the resulting
  :class:`~repro.api.results.Cost` records how many that was, against the
  ``state_bound`` the eager engine would have had to fill.

The product states are *flattened* to the same register-valuation tuples as
the eager abstraction of the composed process, and the product reactions are
built on the union domain under the composition's unified types, so the two
engines explore the same states and the same transitions (only the
enumeration order differs — the join yields successors component-wise, the
eager engine in global choice order).  Property-based equivalence is pinned
by ``tests/test_onthefly.py``.
"""

from __future__ import annotations

from functools import reduce
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.clocks.hierarchy import ClockHierarchy
from repro.lang.normalize import NormalizedProcess
from repro.mc.transition import BooleanAbstraction, ReactionLTS, State, Transition
from repro.mocc.interning import intern_state
from repro.mocc.reactions import Reaction

Successor = Tuple[Reaction, State]


def product_conflicts(components: Sequence[NormalizedProcess]) -> List[str]:
    """Signals defined by more than one component — no abstraction product
    can join defining equations across components (values are canonical)."""
    definers: Dict[str, int] = {}
    for component in components:
        for signal in component.defined_signals():
            definers[signal] = definers.get(signal, 0) + 1
    return sorted(signal for signal, count in definers.items() if count > 1)


class LazyReactionLTS:
    """Successor-on-demand view of one process's boolean abstraction."""

    def __init__(
        self,
        process: NormalizedProcess,
        hierarchy: Optional[ClockHierarchy] = None,
        abstraction: Optional[BooleanAbstraction] = None,
    ):
        self.abstraction = abstraction or BooleanAbstraction(process, hierarchy)
        self.process_name = process.name
        self.initial: State = self.abstraction.initial_state()
        self._successors: Dict[State, Tuple[Successor, ...]] = {}

    def uses_compiled(self) -> bool:
        """True iff reactions come from a compiled step relation."""
        from repro.mc.compiled import CompiledAbstraction

        return isinstance(self.abstraction, CompiledAbstraction)

    def successors(self, state: State) -> Tuple[Successor, ...]:
        cached = self._successors.get(state)
        if cached is None:
            cached = tuple(self.abstraction.reactions(state))
            self._successors[state] = cached
        return cached


class ProductLTS:
    """The synchronous product of component abstractions, expanded lazily.

    A product state is the tuple of component register valuations, flattened
    into one sorted register-valuation tuple (components must have disjoint
    register names, which composition by name-matching guarantees up to
    α-renaming of locals).  A product reaction joins one reaction per
    component such that every signal shared by two components is present in
    both or in neither, with the same value; the join is searched by
    backtracking over the components so a component whose choice contradicts
    an earlier one prunes the whole subtree.

    Two preconditions are checked (``ValueError`` otherwise, on which the
    session facade falls back to a lazy view of the composed process):

    * register names must be disjoint across components;
    * no signal may be *defined* by more than one component.  The boolean
      abstraction replaces numeric values by a canonical token, so presence/
      value join cannot enforce that two defining equations in different
      components agree on a concrete value — only the composed interpreter
      can.  Signals defined once and read elsewhere (the paper's chains,
      stars and producer/consumer networks) are exactly what the product
      handles.
    """

    def __init__(
        self,
        components: Sequence[NormalizedProcess],
        hierarchies: Optional[Sequence[Optional[ClockHierarchy]]] = None,
        name: Optional[str] = None,
        types: Optional[Mapping[str, str]] = None,
        engine: str = "compiled",
        compile_component=None,
        hierarchy_for=None,
    ):
        if not components:
            raise ValueError("a product needs at least one component")
        if engine not in ("compiled", "interpreter"):
            raise ValueError(f"unknown product engine {engine!r}")
        hierarchies = hierarchies or [None] * len(components)
        self.components = tuple(components)
        self.process_name = name or "|".join(c.name for c in components)
        # The boolean abstraction is type-directed (boolean signals carry
        # values, others a canonical token), and composition *unifies* types:
        # a signal a component types 'any' may be boolean in the composed
        # process.  Abstract every component under the composition's types —
        # passed by the caller, or inferred by composing — so the product
        # joins the very reactions the eager engine enumerates.
        if types is None:
            types = reduce(lambda left, right: left.compose(right), components).types
        abstracted: List[Tuple[NormalizedProcess, Optional[ClockHierarchy], bool]] = []
        for component, hierarchy in zip(components, hierarchies):
            local_types = {
                signal: types.get(signal, component.types.get(signal, "any"))
                for signal in component.all_signals()
            }
            if local_types == dict(component.types):
                abstracted.append((component, hierarchy, True))
            else:
                retyped = NormalizedProcess(
                    name=component.name,
                    inputs=component.inputs,
                    outputs=component.outputs,
                    locals=component.locals,
                    equations=component.equations,
                    types=local_types,
                )
                # the memoized hierarchy was built for the old types
                abstracted.append((retyped, None, False))
        #: the components as actually abstracted (retyped under the unified
        #: types where needed) — the symbolic product must encode these same
        #: abstractions, not the locally-typed originals
        self.abstracted = tuple(component for component, _hierarchy, _orig in abstracted)
        # ``engine="compiled"``: each component enumerates its reactions from
        # its compiled step relation (repro.mc.compiled) when it fits the
        # boolean-definable fragment, falling back to the interpreter-backed
        # BooleanAbstraction per component otherwise.  ``compile_component``
        # lets a session (AnalysisContext) serve memoized compilations so the
        # same components are not recompiled per product instance.
        # ``hierarchy_for`` resolves a missing hierarchy lazily, and only for
        # components that actually fall back to the interpreter — a product
        # whose relations all load from an artifact store needs no hierarchy
        # (hence no ProcessAnalysis) for any component.
        if compile_component is None and engine == "compiled":
            from repro.mc.compiled import CompiledAbstraction

            compile_component = CompiledAbstraction.try_compile
        self._lts = []
        for component, hierarchy, original in abstracted:
            abstraction = (
                compile_component(component, hierarchy) if engine == "compiled" else None
            )
            if (
                abstraction is None
                and hierarchy is None
                and original
                and hierarchy_for is not None
            ):
                hierarchy = hierarchy_for(component)
            self._lts.append(LazyReactionLTS(component, hierarchy, abstraction=abstraction))
        self._domains = [set(component.all_signals()) for component in components]
        self._union_domain = tuple(sorted(set().union(*self._domains)))
        registers: List[str] = []
        for lazy in self._lts:
            registers.extend(name for name, _ in lazy.initial)
        if len(registers) != len(set(registers)):
            raise ValueError(
                f"product components of {self.process_name} share register names; "
                "rename the clashing local state signals"
            )
        conflicts = product_conflicts(components)
        if conflicts:
            raise ValueError(
                f"product components of {self.process_name} multiply define "
                f"{', '.join(conflicts)}; the abstraction cannot join defining "
                "equations across components (use the composed process instead)"
            )
        # shared signals, indexed for the backtracking join: for component i,
        # the earlier components j < i it must agree with and on what.
        self._shared: List[List[Tuple[int, Tuple[str, ...]]]] = []
        for i in range(len(components)):
            constraints: List[Tuple[int, Tuple[str, ...]]] = []
            for j in range(i):
                common = self._domains[i] & self._domains[j]
                if common:
                    constraints.append((j, tuple(common)))
            self._shared.append(constraints)
        self._unflatten: Dict[State, Tuple[State, ...]] = {}
        self.initial = self._flatten(tuple(lazy.initial for lazy in self._lts))
        self._successors: Dict[State, Tuple[Successor, ...]] = {}

    def uses_compiled(self) -> bool:
        """True iff at least one component serves reactions from a compiled
        step relation (the rest fell back to the interpreter)."""
        return any(lazy.uses_compiled() for lazy in self._lts)

    def _flatten(self, component_states: Tuple[State, ...]) -> State:
        merged: List[Tuple[str, object]] = []
        for component_state in component_states:
            merged.extend(component_state)
        flattened = intern_state(tuple(sorted(merged)))
        self._unflatten.setdefault(flattened, component_states)
        return flattened

    def successors(self, state: State) -> Tuple[Successor, ...]:
        cached = self._successors.get(state)
        if cached is not None:
            return cached
        component_states = self._unflatten[state]
        per_component = [
            lazy.successors(component_state)
            for lazy, component_state in zip(self._lts, component_states)
        ]
        results: List[Successor] = []
        chosen: List[Optional[Successor]] = [None] * len(self._lts)

        def compatible(index: int, reaction: Reaction) -> bool:
            for j, common in self._shared[index]:
                other = chosen[j][0]
                for signal in common:
                    present = signal in reaction
                    if present != (signal in other):
                        return False
                    if present and reaction.value(signal) != other.value(signal):
                        return False
            return True

        def extend(index: int) -> None:
            if index == len(self._lts):
                events: Dict[str, object] = {}
                for reaction, _target in chosen:
                    for signal, value in reaction.items():
                        events[signal] = value
                merged = Reaction.interned(self._union_domain, events)
                target = self._flatten(tuple(target for _reaction, target in chosen))
                results.append((merged, target))
                return
            for successor in per_component[index]:
                if compatible(index, successor[0]):
                    chosen[index] = successor
                    extend(index + 1)
            chosen[index] = None

        extend(0)
        cached = tuple(results)
        self._successors[state] = cached
        return cached


class OnTheFlyChecker:
    """Frontier-based search over a lazy LTS, with the explicit-checker API.

    States are discovered breadth-first and expanded only when a query needs
    their successors, so a check that stops at the first violating reaction
    leaves the rest of the state space untouched.  The checker answers the
    same queries as :class:`repro.mc.explicit.ExplicitStateChecker`
    (``transitions_from`` / ``reactions_from`` / ``successor`` / ``enables``
    / ``iter_states``), which is what lets the Definition 2 axioms and the
    Section 4.1 invariants run on either engine unchanged.
    """

    def __init__(self, lazy, max_states: int = 512):
        self.lazy = lazy
        self.max_states = max_states
        self.truncated = False
        self.transitions_expanded = 0
        self._order: List[State] = [lazy.initial]
        self._seen: Set[State] = {lazy.initial}
        self._transitions: Dict[State, Tuple[Transition, ...]] = {}

    @property
    def process_name(self) -> str:
        return self.lazy.process_name

    @property
    def initial(self) -> State:
        return self.lazy.initial

    def uses_compiled(self) -> bool:
        """True iff the underlying lazy LTS serves compiled reactions."""
        uses = getattr(self.lazy, "uses_compiled", None)
        return bool(uses()) if uses is not None else False

    @property
    def states_expanded(self) -> int:
        return len(self._transitions)

    @property
    def states_discovered(self) -> int:
        return len(self._seen)

    def _discover(self, state: State) -> None:
        if state in self._seen:
            return
        if len(self._seen) >= self.max_states:
            self.truncated = True
            return
        self._seen.add(state)
        self._order.append(state)

    # -- the explicit-checker interface -----------------------------------------
    def transitions_from(self, state: State) -> List[Transition]:
        cached = self._transitions.get(state)
        if cached is None:
            successors = self.lazy.successors(state)
            cached = tuple(
                Transition(source=state, reaction=reaction, target=target)
                for reaction, target in successors
            )
            self._transitions[state] = cached
            self.transitions_expanded += len(cached)
            for _reaction, target in successors:
                self._discover(target)
        return list(cached)

    def reactions_from(self, state: State) -> List[Reaction]:
        return [transition.reaction for transition in self.transitions_from(state)]

    def non_silent_reactions_from(self, state: State) -> List[Reaction]:
        return [reaction for reaction in self.reactions_from(state) if not reaction.is_silent()]

    def successor(self, state: State, reaction: Reaction) -> Optional[State]:
        for transition in self.transitions_from(state):
            if transition.reaction == reaction:
                return transition.target
        return None

    def enables(self, state: State, reaction: Reaction) -> bool:
        return self.successor(state, reaction) is not None

    def iter_states(self) -> Iterator[State]:
        """Breadth-first stream of reachable states, expanding as it goes.

        Breaking out of the iteration early (on the first violation) leaves
        every state past the break point unexpanded — that is the engine's
        whole point.
        """
        index = 0
        while index < len(self._order):
            state = self._order[index]
            index += 1
            self.transitions_from(state)
            yield state

    # -- early-terminating checks -------------------------------------------------
    def find_deadlock(self) -> Optional[State]:
        """The first reachable state with no reaction at all, or ``None``."""
        for state in self.iter_states():
            if not self.transitions_from(state):
                return state
        return None

    def is_non_blocking(self):
        """Definition 4 with early termination on the first deadlock."""
        from repro.mc.explicit import InvariantResult

        deadlock = self.find_deadlock()
        if deadlock is not None:
            return InvariantResult(
                "non-blocking", False, f"state {dict(deadlock)} has no reaction at all"
            )
        return InvariantResult("non-blocking", True)

    def is_deterministic(self):
        """Determinism with early termination on the first ambiguous reaction."""
        from repro.mc.explicit import InvariantResult

        for state in self.iter_states():
            seen: Dict[Reaction, State] = {}
            for transition in self.transitions_from(state):
                previous = seen.get(transition.reaction)
                if previous is not None and previous != transition.target:
                    return InvariantResult(
                        "determinism",
                        False,
                        f"reaction {transition.reaction} from {dict(state)} has two successors",
                    )
                seen[transition.reaction] = transition.target
        return InvariantResult("determinism", True)

    # -- totals -------------------------------------------------------------------
    def explore_all(self) -> None:
        """Expand every reachable state (up to ``max_states``)."""
        for _state in self.iter_states():
            pass

    def materialize(self) -> ReactionLTS:
        """The fully explored :class:`ReactionLTS`, identical to the eager one."""
        self.explore_all()
        lts = ReactionLTS(
            process_name=self.process_name,
            initial=self.initial,
            states=list(self._order),
            truncated=self.truncated,
        )
        for state in self._order:
            lts.transitions.extend(self._transitions[state])
        return lts

    def statistics(self) -> Dict[str, int]:
        return {
            "states_expanded": self.states_expanded,
            "states_discovered": self.states_discovered,
            "transitions_expanded": self.transitions_expanded,
            "state_bound": self.max_states,
            "truncated": int(self.truncated),
        }
