"""Symbolic (BDD-based) exploration of the boolean abstraction.

The explicit checker of :mod:`repro.mc.explicit` is sufficient for the paper's
examples; this module provides the symbolic counterpart so that the cost
comparison of the paper (static criterion vs. state-space exploration) can be
reproduced with either engine.  The transition relation is built over three
groups of BDD variables:

* ``s·r``   — current value of boolean register ``r``;
* ``s'·r``  — next value of boolean register ``r``;
* ``e·x``   — presence of signal ``x`` in the reaction (the event variables).

Reachability is the usual image fixpoint; invariants are checked on the
reachable set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bdd.bdd import BDD, BDDManager
from repro.mc.explicit import InvariantResult
from repro.mc.transition import ReactionLTS, State


def current_variable(register: str) -> str:
    return f"s·{register}"


def next_variable(register: str) -> str:
    return f"s'·{register}"


def event_variable(signal: str) -> str:
    return f"e·{signal}"


class SymbolicChecker:
    """BDD-based reachability and invariant checking over a reaction LTS.

    The LTS is first built explicitly (the enumeration of feasible reactions
    requires the interpreter), then encoded symbolically; all fixpoint
    computations after that point are pure BDD operations.  This mirrors how
    Sigali is used in the paper: the Signal program is compiled to a
    polynomial/boolean transition system once, and every property is then
    checked symbolically.
    """

    def __init__(self, lts: ReactionLTS, manager: Optional[BDDManager] = None):
        self.lts = lts
        self.manager = manager or BDDManager()
        self._registers: Tuple[str, ...] = tuple(name for name, _ in lts.initial)
        self._signals: Tuple[str, ...] = self._collect_signals()
        for register in self._registers:
            self.manager.declare(current_variable(register))
            self.manager.declare(next_variable(register))
        for signal in self._signals:
            self.manager.declare(event_variable(signal))
        self._transition_relation = self._encode_transitions()
        self._initial = self._encode_state(lts.initial, current_variable)
        # The set of states the (possibly max_states-truncated) LTS actually
        # explored.  Transitions may point at states cut by the bound; without
        # this restriction those dangling targets would be BDD-reachable yet
        # have no encoded successors, diverging from the explicit checker.
        self._explored = self.manager.false
        for state in lts.states:
            self._explored = self._explored | self._encode_state(state, current_variable)

    # -- encoding ----------------------------------------------------------------
    def _collect_signals(self) -> Tuple[str, ...]:
        signals: Set[str] = set()
        for transition in self.lts.transitions:
            signals.update(transition.reaction.domain)
        return tuple(sorted(signals))

    def _encode_state(self, state: State, variable_of) -> BDD:
        encoded = self.manager.true
        for register, value in state:
            variable = self.manager.var(variable_of(register))
            encoded = encoded & (variable if bool(value) else ~variable)
        return encoded

    def _encode_reaction(self, reaction) -> BDD:
        encoded = self.manager.true
        present = reaction.present_signals()
        for signal in self._signals:
            variable = self.manager.var(event_variable(signal))
            encoded = encoded & (variable if signal in present else ~variable)
        return encoded

    def _encode_transitions(self) -> BDD:
        relation = self.manager.false
        for transition in self.lts.transitions:
            encoded = (
                self._encode_state(transition.source, current_variable)
                & self._encode_reaction(transition.reaction)
                & self._encode_state(transition.target, next_variable)
            )
            relation = relation | encoded
        return relation

    # -- reachability ---------------------------------------------------------------
    @property
    def registers(self) -> Tuple[str, ...]:
        """The state registers of the encoded transition system."""
        return self._registers

    @property
    def signals(self) -> Tuple[str, ...]:
        """The event signals of the encoded transition system."""
        return self._signals

    @property
    def transition_relation(self) -> BDD:
        return self._transition_relation

    @property
    def explored_states(self) -> BDD:
        """The encoded set of states present in the LTS (the bounded model)."""
        return self._explored

    @property
    def initial_states(self) -> BDD:
        return self._initial

    def image(self, states: BDD) -> BDD:
        """The states reachable in one transition, within the bounded model."""
        event_vars = [event_variable(signal) for signal in self._signals]
        current_vars = [current_variable(register) for register in self._registers]
        step = (states & self._transition_relation).exists(event_vars + current_vars)
        renaming = {
            next_variable(register): current_variable(register) for register in self._registers
        }
        return step.rename(renaming) & self._explored

    def reachable_states(self, max_iterations: int = 10_000) -> BDD:
        """Least fixpoint of the image starting from the initial states."""
        reached = self._initial
        for _ in range(max_iterations):
            extended = reached | self.image(reached)
            if self.manager.equivalent(extended, reached):
                return reached
            reached = extended
        raise RuntimeError("reachability fixpoint did not converge")

    def reachable_count(self) -> int:
        variables = [current_variable(register) for register in self._registers]
        if not variables:
            return 1 if self.reachable_states().is_satisfiable() else 0
        return self.reachable_states().count(variables)

    # -- invariants -------------------------------------------------------------------
    def check_invariant(self, name: str, invariant: BDD) -> InvariantResult:
        """Check that ``invariant`` (over current-state variables) holds on all reachable states."""
        violating = self.reachable_states() & ~invariant
        if violating.is_false():
            return InvariantResult(name, True)
        witness = violating.satisfy_one() or {}
        readable = {
            variable.split("·", 1)[1]: value
            for variable, value in witness.items()
            if variable.startswith("s·")
        }
        return InvariantResult(name, False, f"reachable counterexample state {readable}")

    def check_reaction_invariant(self, name: str, invariant: BDD) -> InvariantResult:
        """Check an invariant over current-state and event variables on every transition."""
        violating = self.reachable_states() & self._transition_relation & ~invariant
        if violating.is_false():
            return InvariantResult(name, True)
        witness = violating.satisfy_one() or {}
        readable = {variable: value for variable, value in witness.items() if value}
        return InvariantResult(name, False, f"violating transition {readable}")

    # -- helpers for building invariants -------------------------------------------------
    def event(self, signal: str) -> BDD:
        return self.manager.var(event_variable(signal))

    def register(self, name: str) -> BDD:
        return self.manager.var(current_variable(name))
