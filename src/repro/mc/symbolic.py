"""Symbolic (BDD-based) model checking — the role Sigali plays in Section 4.

The explicit checker of :mod:`repro.mc.explicit` is sufficient for the paper's
examples; this module provides the symbolic counterpart so that the cost
comparison of the paper (static criterion vs. state-space exploration) can be
reproduced with either engine.  Two constructions are provided:

* :class:`SymbolicChecker` encodes one explicitly explored
  :class:`~repro.mc.transition.ReactionLTS` and answers invariant queries on
  the BDD-reachable set;
* :class:`SymbolicProductChecker` builds the transition relation of a
  composition ``P1 | ... | Pn`` *directly as the conjunction of the
  per-component relations* — component register variables are declared in an
  interleaved order and shared signals map to one common event variable, so
  synchronization is plain BDD conjunction and the product's states are
  never enumerated.

The transition relations are built over four groups of BDD variables:

* ``s·r``   — current value of boolean register ``r``;
* ``s'·r``  — next value of boolean register ``r``;
* ``e·x``   — presence of signal ``x`` in the reaction (the event variables);
* ``d·x``   — the boolean value carried by ``x`` when present (product only,
  so that two components sharing a boolean signal agree on its value, not
  just its clock).

Reachability is the usual image fixpoint; invariants are checked on the
reachable set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bdd.backend import create_manager
from repro.bdd.bdd import BDD, BDDManager
from repro.mc.explicit import InvariantResult
from repro.mc.transition import ReactionLTS, State


def current_variable(register: str) -> str:
    return f"s·{register}"


def next_variable(register: str) -> str:
    return f"s'·{register}"


def event_variable(signal: str) -> str:
    return f"e·{signal}"


def value_variable(signal: str) -> str:
    return f"d·{signal}"


class SymbolicChecker:
    """BDD-based reachability and invariant checking over a reaction LTS.

    The LTS is first built explicitly (the enumeration of feasible reactions
    requires the interpreter), then encoded symbolically; all fixpoint
    computations after that point are pure BDD operations.  This mirrors how
    Sigali is used in the paper: the Signal program is compiled to a
    polynomial/boolean transition system once, and every property is then
    checked symbolically.
    """

    def __init__(
        self,
        lts: ReactionLTS,
        manager: Optional[BDDManager] = None,
        backend: Optional[str] = None,
    ):
        self.lts = lts
        self.manager = manager or create_manager(backend=backend)
        self._registers: Tuple[str, ...] = tuple(name for name, _ in lts.initial)
        self._signals: Tuple[str, ...] = self._collect_signals()
        for register in self._registers:
            self.manager.declare(current_variable(register))
            self.manager.declare(next_variable(register))
        for signal in self._signals:
            self.manager.declare(event_variable(signal))
        self._transition_relation = self._encode_transitions()
        self._initial = self._encode_state(lts.initial, current_variable)
        # The set of states the (possibly max_states-truncated) LTS actually
        # explored.  Transitions may point at states cut by the bound; without
        # this restriction those dangling targets would be BDD-reachable yet
        # have no encoded successors, diverging from the explicit checker.
        self._explored = self.manager.false
        for state in lts.states:
            self._explored = self._explored | self._encode_state(state, current_variable)

    # -- encoding ----------------------------------------------------------------
    def _collect_signals(self) -> Tuple[str, ...]:
        signals: Set[str] = set()
        for transition in self.lts.transitions:
            signals.update(transition.reaction.domain)
        return tuple(sorted(signals))

    def _encode_state(self, state: State, variable_of) -> BDD:
        encoded = self.manager.true
        for register, value in state:
            variable = self.manager.var(variable_of(register))
            encoded = encoded & (variable if bool(value) else ~variable)
        return encoded

    def _encode_reaction(self, reaction) -> BDD:
        encoded = self.manager.true
        present = reaction.present_signals()
        for signal in self._signals:
            variable = self.manager.var(event_variable(signal))
            encoded = encoded & (variable if signal in present else ~variable)
        return encoded

    def _encode_transitions(self) -> BDD:
        relation = self.manager.false
        for transition in self.lts.transitions:
            encoded = (
                self._encode_state(transition.source, current_variable)
                & self._encode_reaction(transition.reaction)
                & self._encode_state(transition.target, next_variable)
            )
            relation = relation | encoded
        return relation

    # -- reachability ---------------------------------------------------------------
    @property
    def registers(self) -> Tuple[str, ...]:
        """The state registers of the encoded transition system."""
        return self._registers

    @property
    def signals(self) -> Tuple[str, ...]:
        """The event signals of the encoded transition system."""
        return self._signals

    @property
    def transition_relation(self) -> BDD:
        return self._transition_relation

    @property
    def explored_states(self) -> BDD:
        """The encoded set of states present in the LTS (the bounded model)."""
        return self._explored

    @property
    def initial_states(self) -> BDD:
        return self._initial

    def image(self, states: BDD) -> BDD:
        """The states reachable in one transition, within the bounded model."""
        event_vars = [event_variable(signal) for signal in self._signals]
        current_vars = [current_variable(register) for register in self._registers]
        step = (states & self._transition_relation).exists(event_vars + current_vars)
        renaming = {
            next_variable(register): current_variable(register) for register in self._registers
        }
        return step.rename(renaming) & self._explored

    def reachable_states(self, max_iterations: int = 10_000) -> BDD:
        """Least fixpoint of the image starting from the initial states."""
        reached = self._initial
        for _ in range(max_iterations):
            extended = reached | self.image(reached)
            if self.manager.equivalent(extended, reached):
                return reached
            reached = extended
        raise RuntimeError("reachability fixpoint did not converge")

    def reachable_count(self) -> int:
        variables = [current_variable(register) for register in self._registers]
        if not variables:
            return 1 if self.reachable_states().is_satisfiable() else 0
        return self.reachable_states().count(variables)

    # -- invariants -------------------------------------------------------------------
    def check_invariant(self, name: str, invariant: BDD) -> InvariantResult:
        """Check that ``invariant`` (over current-state variables) holds on all reachable states."""
        violating = self.reachable_states() & ~invariant
        if violating.is_false():
            return InvariantResult(name, True)
        witness = violating.satisfy_one() or {}
        readable = {
            variable.split("·", 1)[1]: value
            for variable, value in witness.items()
            if variable.startswith("s·")
        }
        return InvariantResult(name, False, f"reachable counterexample state {readable}")

    def check_reaction_invariant(self, name: str, invariant: BDD) -> InvariantResult:
        """Check an invariant over current-state and event variables on every transition."""
        violating = self.reachable_states() & self._transition_relation & ~invariant
        if violating.is_false():
            return InvariantResult(name, True)
        witness = violating.satisfy_one() or {}
        readable = {variable: value for variable, value in witness.items() if value}
        return InvariantResult(name, False, f"violating transition {readable}")

    # -- helpers for building invariants -------------------------------------------------
    def event(self, signal: str) -> BDD:
        return self.manager.var(event_variable(signal))

    def register(self, name: str) -> BDD:
        return self.manager.var(current_variable(name))

    def bdd_nodes(self) -> int:
        """BDD nodes of the encoded model: relation plus reachable set."""
        return self._transition_relation.node_count() + self.reachable_states().node_count()


class SymbolicProductChecker:
    """Symbolic reachability over a product built *without* enumerating it.

    Each component contributes the relation of its own (small, individually
    explored) reaction LTS over its own register variables; signals shared by
    several components map to the same ``e·x`` / ``d·x`` variables, so the
    product transition relation is simply the conjunction of the component
    relations — the synchronous product of the paper's ``P | Q`` at the BDD
    level.  Register variables are declared in an *interleaved* order
    (register 0 of every component, then register 1 of every component, ...)
    which keeps the relation compact for chains of similar components.

    The component LTSs must be complete (not truncated): a truncated
    component would silently under-approximate the product.  Two further
    preconditions mirror :class:`repro.mc.onthefly.ProductLTS` (whose
    docstring explains why): no signal may be defined by more than one
    component — pass ``components`` so this can be checked — and the
    component LTSs should be built under the *composition's* unified types
    (the abstraction is type-directed; use ``ProductLTS.abstracted``).
    """

    def __init__(
        self,
        component_ltss: Sequence[ReactionLTS],
        manager: Optional[BDDManager] = None,
        components: Optional[Sequence[object]] = None,
        backend: Optional[str] = None,
    ):
        if not component_ltss:
            raise ValueError("a symbolic product needs at least one component LTS")
        truncated = [lts.process_name for lts in component_ltss if lts.truncated]
        if truncated:
            raise ValueError(
                f"component LTSs are truncated ({', '.join(truncated)}); raise max_states"
            )
        if components is not None:
            from repro.mc.onthefly import product_conflicts

            conflicts = product_conflicts(components)
            if conflicts:
                raise ValueError(
                    f"symbolic product components multiply define {', '.join(conflicts)}; "
                    "the conjunction of component relations cannot enforce value "
                    "agreement between defining equations (encode the composed "
                    "process instead)"
                )
        self.component_ltss = tuple(component_ltss)
        self.manager = manager or create_manager(backend=backend)
        register_groups = [tuple(name for name, _ in lts.initial) for lts in component_ltss]
        flat = [name for group in register_groups for name in group]
        if len(flat) != len(set(flat)):
            raise ValueError("product components share register names")
        self._registers = tuple(sorted(flat))
        # interleaved declaration order: position j of every component in turn
        for position in range(max((len(g) for g in register_groups), default=0)):
            for group in register_groups:
                if position < len(group):
                    self.manager.declare(current_variable(group[position]))
                    self.manager.declare(next_variable(group[position]))
        signals: Set[str] = set()
        booleans: Set[str] = set()
        for lts in component_ltss:
            for transition in lts.transitions:
                signals.update(transition.reaction.domain)
                for name, value in transition.reaction.items():
                    if isinstance(value, bool):
                        booleans.add(name)
        self._signals = tuple(sorted(signals))
        self._boolean_signals = frozenset(booleans)
        for signal in self._signals:
            self.manager.declare(event_variable(signal))
            if signal in self._boolean_signals:
                self.manager.declare(value_variable(signal))
        self._transition_relation = self.manager.true
        for lts, group in zip(component_ltss, register_groups):
            self._transition_relation = (
                self._transition_relation & self._component_relation(lts, group)
            )
        self._initial = self.manager.true
        for lts in component_ltss:
            for register, value in lts.initial:
                variable = self.manager.var(current_variable(register))
                self._initial = self._initial & (variable if bool(value) else ~variable)

    # -- encoding ----------------------------------------------------------------
    def _encode_component_reaction(self, reaction, own_signals: Iterable[str]) -> BDD:
        """Presence and boolean values of the component's own signals only."""
        encoded = self.manager.true
        for signal in own_signals:
            event = self.manager.var(event_variable(signal))
            if signal in reaction:
                encoded = encoded & event
                value = reaction.value(signal)
                if isinstance(value, bool):
                    data = self.manager.var(value_variable(signal))
                    encoded = encoded & (data if value else ~data)
            else:
                encoded = encoded & ~event
        return encoded

    def _component_relation(self, lts: ReactionLTS, registers: Sequence[str]) -> BDD:
        own_signals = sorted({s for t in lts.transitions for s in t.reaction.domain})
        relation = self.manager.false
        for transition in lts.transitions:
            encoded = self._encode_component_reaction(transition.reaction, own_signals)
            for register, value in transition.source:
                variable = self.manager.var(current_variable(register))
                encoded = encoded & (variable if bool(value) else ~variable)
            for register, value in transition.target:
                variable = self.manager.var(next_variable(register))
                encoded = encoded & (variable if bool(value) else ~variable)
            relation = relation | encoded
        return relation

    # -- reachability ---------------------------------------------------------------
    @property
    def registers(self) -> Tuple[str, ...]:
        return self._registers

    @property
    def signals(self) -> Tuple[str, ...]:
        return self._signals

    @property
    def transition_relation(self) -> BDD:
        return self._transition_relation

    @property
    def initial_states(self) -> BDD:
        return self._initial

    def _step_variables(self) -> List[str]:
        variables = [event_variable(signal) for signal in self._signals]
        variables += [
            value_variable(signal) for signal in self._signals if signal in self._boolean_signals
        ]
        return variables

    def image(self, states: BDD) -> BDD:
        """The product states reachable in one joint reaction."""
        quantified = self._step_variables() + [
            current_variable(register) for register in self._registers
        ]
        step = (states & self._transition_relation).exists(quantified)
        renaming = {
            next_variable(register): current_variable(register) for register in self._registers
        }
        return step.rename(renaming)

    def reachable_states(self, max_iterations: int = 10_000) -> BDD:
        reached = self._initial
        for _ in range(max_iterations):
            extended = reached | self.image(reached)
            if self.manager.equivalent(extended, reached):
                return reached
            reached = extended
        raise RuntimeError("product reachability fixpoint did not converge")

    def reachable_count(self) -> int:
        variables = [current_variable(register) for register in self._registers]
        if not variables:
            return 1 if self.reachable_states().is_satisfiable() else 0
        return self.reachable_states().count(variables)

    # -- invariants -------------------------------------------------------------------
    def deadlock_states(self) -> BDD:
        """Reachable product states with no joint reaction at all (Definition 4)."""
        step_variables = self._step_variables() + [
            next_variable(register) for register in self._registers
        ]
        has_successor = self._transition_relation.exists(step_variables)
        return self.reachable_states() & ~has_successor

    def is_non_blocking(self) -> InvariantResult:
        """Definition 4 decided on the conjunction relation, no product enumeration."""
        deadlocks = self.deadlock_states()
        if deadlocks.is_false():
            return InvariantResult("non-blocking", True)
        witness = deadlocks.satisfy_one() or {}
        readable = {
            variable.split("·", 1)[1]: value
            for variable, value in witness.items()
            if variable.startswith("s·")
        }
        return InvariantResult(
            "non-blocking", False, f"reachable product deadlock state {readable}"
        )

    def bdd_nodes(self) -> int:
        """BDD nodes of the encoded model: relation plus reachable set."""
        return self._transition_relation.node_count() + self.reachable_states().node_count()
