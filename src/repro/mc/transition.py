"""Boolean abstraction of a Signal process as a reaction-labelled LTS.

Implements the state-space construction that Section 4 of the paper model
checks (the paper compiles Signal programs to polynomial transition systems
for Sigali; here the same role is played by this reaction-labelled LTS).
Weak endochrony (Definition 2) and non-blocking (Definition 4) are stated
over exactly these reactions, and :func:`build_lts` is the *eager* engine
whose exponential cost Theorem 1 avoids — the lazy counterpart lives in
:mod:`repro.mc.onthefly`.

The state of the abstraction is the valuation of the boolean delay registers
(numeric registers are abstracted away: in the clock calculus only boolean
values influence presence).  A transition is a *reaction*: an assignment of
presence (and boolean values) to the signals of the process that satisfies
every equation, as computed by the operational interpreter.

Reactions are enumerated by choosing, for every *activation point* of the
process — its input signals plus one representative of every internal root of
its clock hierarchy — whether it participates in the reaction and, for
boolean inputs, with which value.  The interpreter then accepts or rejects
each candidate, so the resulting LTS contains exactly the reactions allowed
by the Signal semantics (restricted to canonical values for non-boolean
inputs, which do not influence clocks).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.clocks.hierarchy import ClockHierarchy, build_hierarchy
from repro.lang.normalize import DelayEquation, NormalizedProcess
from repro.mocc.interning import intern_state
from repro.mocc.reactions import Reaction
from repro.semantics.interpreter import ABSENT, TICK, SignalInterpreter

#: canonical value used for non-boolean inputs (their value never drives a clock)
CANONICAL_NUMERIC_VALUE = 1

State = Tuple[Tuple[str, object], ...]


@dataclass(frozen=True)
class ReactionChoice:
    """One candidate activation: inputs and internal roots to make present."""

    assignments: Tuple[Tuple[str, object], ...]

    def as_inputs(self) -> Dict[str, object]:
        return {name: value for name, value in self.assignments if value is not TICK}

    def as_assumptions(self) -> Dict[str, object]:
        return {name: value for name, value in self.assignments if value is TICK}


@dataclass
class Transition:
    """One transition of the LTS: a reaction taking ``source`` to ``target``."""

    source: State
    reaction: Reaction
    target: State


@dataclass
class ReactionLTS:
    """The explored reaction-labelled transition system."""

    process_name: str
    initial: State
    states: List[State] = field(default_factory=list)
    transitions: List[Transition] = field(default_factory=list)
    truncated: bool = False

    def transitions_from(self, state: State) -> List[Transition]:
        return [transition for transition in self.transitions if transition.source == state]

    def reactions_from(self, state: State) -> List[Reaction]:
        return [transition.reaction for transition in self.transitions_from(state)]

    def successor(self, state: State, reaction: Reaction) -> Optional[State]:
        for transition in self.transitions_from(state):
            if transition.reaction == reaction:
                return transition.target
        return None

    def state_count(self) -> int:
        return len(self.states)

    def transition_count(self) -> int:
        return len(self.transitions)


class BooleanAbstraction:
    """Builds reactions and successor states of the boolean abstraction."""

    def __init__(
        self,
        process: NormalizedProcess,
        hierarchy: Optional[ClockHierarchy] = None,
        extra_activation_signals: Iterable[str] = (),
    ):
        self.process = process
        self.interpreter = SignalInterpreter(process)
        self.hierarchy = hierarchy or build_hierarchy(process)
        self._boolean = set(process.boolean_signals())
        self._state_signals = tuple(
            name for name in process.state_signals() if name in self._boolean
        )
        self._activation_points = self._compute_activation_points(extra_activation_signals)
        self._choices: Optional[Tuple[ReactionChoice, ...]] = None

    # -- activation points ----------------------------------------------------
    def _compute_activation_points(self, extra: Iterable[str]) -> Tuple[Tuple[str, Tuple], ...]:
        points: List[Tuple[str, Tuple]] = []
        inputs = set(self.process.inputs)
        for name in self.process.inputs:
            if name in self._boolean:
                points.append((name, (ABSENT, True, False)))
            else:
                points.append((name, (ABSENT, CANONICAL_NUMERIC_VALUE)))
        # internal roots: one representative signal per root class without inputs
        for root in self.hierarchy.roots():
            signals = root.signal_clocks()
            if not signals or any(name in inputs for name in signals):
                continue
            representative = signals[0]
            points.append((representative, (ABSENT, TICK)))
        for name in extra:
            if name not in {point for point, _ in points}:
                points.append((name, (ABSENT, TICK)))
        return tuple(points)

    def activation_signals(self) -> Tuple[str, ...]:
        return tuple(name for name, _choices in self._activation_points)

    # -- states -----------------------------------------------------------------
    def initial_state(self) -> State:
        registers = {
            equation.target: equation.initial
            for equation in self.process.equations
            if isinstance(equation, DelayEquation)
        }
        return intern_state(tuple((name, registers[name]) for name in self._state_signals))

    def _full_state(self, abstract: State) -> Dict[str, object]:
        """Concrete interpreter state for an abstract state (numeric registers canonical)."""
        registers = {
            equation.target: equation.initial
            for equation in self.process.equations
            if isinstance(equation, DelayEquation)
        }
        registers.update(dict(abstract))
        return registers

    def _abstract_state(self, concrete: Mapping[str, object]) -> State:
        return intern_state(tuple((name, concrete[name]) for name in self._state_signals))

    # -- reactions --------------------------------------------------------------
    def enumerate_choices(self) -> List[ReactionChoice]:
        """Every candidate activation of the process (before feasibility filtering).

        The enumeration only depends on the activation points, not on the
        state, so it is computed once and reused by every ``reactions()``
        call (the eager engine calls it per explored state).
        """
        if self._choices is None:
            names = [name for name, _ in self._activation_points]
            domains = [choices for _, choices in self._activation_points]
            self._choices = tuple(
                ReactionChoice(tuple(zip(names, combination)))
                for combination in itertools.product(*domains)
            )
        return list(self._choices)

    def reactions(self, state: State) -> List[Tuple[Reaction, State]]:
        """The feasible reactions from ``state`` with their successor states."""
        results: List[Tuple[Reaction, State]] = []
        seen: Set[Reaction] = set()
        for choice in self.enumerate_choices():
            self.interpreter.restore_state(self._full_state(state))
            outcome = self.interpreter.try_step(
                inputs=choice.as_inputs(), assume=choice.as_assumptions(), commit=True
            )
            if outcome is None:
                continue
            reaction = self._project_reaction(outcome.reaction)
            if reaction in seen:
                continue
            seen.add(reaction)
            successor = self._abstract_state(self.interpreter.state)
            results.append((reaction, successor))
        return results

    def _project_reaction(self, reaction: Reaction) -> Reaction:
        """Keep presence for every signal but values only for boolean signals."""
        events = {}
        for name, value in reaction.items():
            events[name] = value if name in self._boolean else CANONICAL_NUMERIC_VALUE
        return Reaction.interned(reaction.domain, events)


def build_lts(
    process: NormalizedProcess,
    hierarchy: Optional[ClockHierarchy] = None,
    max_states: int = 512,
    extra_activation_signals: Iterable[str] = (),
) -> ReactionLTS:
    """Explore the reachable reaction LTS of the boolean abstraction."""
    abstraction = BooleanAbstraction(process, hierarchy, extra_activation_signals)
    initial = abstraction.initial_state()
    lts = ReactionLTS(process_name=process.name, initial=initial)
    frontier: List[State] = [initial]
    visited: Set[State] = {initial}
    lts.states.append(initial)
    while frontier:
        state = frontier.pop(0)
        for reaction, successor in abstraction.reactions(state):
            lts.transitions.append(Transition(source=state, reaction=reaction, target=successor))
            if successor not in visited:
                if len(visited) >= max_states:
                    lts.truncated = True
                    continue
                visited.add(successor)
                lts.states.append(successor)
                frontier.append(successor)
    return lts
