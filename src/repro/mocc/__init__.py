"""Polychronous model of computation.

This package implements the tagged-signal model underlying Signal and
Polychrony, as presented in Section 2.1 of the paper: tags and chains,
events, signal traces, behaviors, reactions and (denotational) processes,
together with the equivalences (clock equivalence, flow equivalence) and
compositions (synchronous ``|`` and asynchronous ``||``) used to state
endochrony, weak endochrony and isochrony.
"""

from repro.mocc.tags import Tag, TagSupply, chain_of, is_chain
from repro.mocc.signals import SignalTrace
from repro.mocc.behaviors import (
    Behavior,
    clock_equivalent,
    flow_equivalent,
    is_stretching,
    is_relaxation,
)
from repro.mocc.reactions import Reaction, independent, merge_reactions
from repro.mocc.interning import clear_interned_states, intern_state, interned_state_count
from repro.mocc.processes import (
    DenotationalProcess,
    synchronous_composition,
    asynchronous_composition,
)

__all__ = [
    "Tag",
    "TagSupply",
    "chain_of",
    "is_chain",
    "SignalTrace",
    "Behavior",
    "clock_equivalent",
    "flow_equivalent",
    "is_stretching",
    "is_relaxation",
    "Reaction",
    "independent",
    "merge_reactions",
    "intern_state",
    "clear_interned_states",
    "interned_state_count",
    "DenotationalProcess",
    "synchronous_composition",
    "asynchronous_composition",
]
