"""Behaviors and the equivalences of the polychronous model.

A *behavior* is a function from signal names to signals (Section 2.1).  This
module implements:

* restriction ``b|X`` and its complement ``b/X``;
* stretching ``b <= c`` (synchronization) and relaxation ``b ⊑ c``
  (desynchronization);
* clock equivalence ``b ~ c`` (equality up to an order isomorphism on tags);
* flow equivalence ``b ≈ c`` (same values in the same order on every signal).

Clock equivalence is decided through a *canonical form*: the tags occurring
in a behavior are re-labelled by their rank, so two behaviors are clock
equivalent iff their canonical forms are equal.  This is sound because tags
are totally ordered in the reproduction and a stretching is exactly a
strictly monotone re-labelling of tags.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Set, Tuple

from repro.mocc.signals import SignalTrace, Value
from repro.mocc.tags import Tag


class Behavior:
    """An immutable mapping from signal names to :class:`SignalTrace`."""

    __slots__ = ("_signals",)

    def __init__(self, signals: Optional[Mapping[str, SignalTrace]] = None):
        self._signals: Dict[str, SignalTrace] = dict(signals or {})

    # -- construction -----------------------------------------------------
    @classmethod
    def empty(cls, names: Iterable[str]) -> "Behavior":
        """The empty behavior on the given signal names (all signals empty)."""
        return cls({name: SignalTrace.empty() for name in names})

    @classmethod
    def from_value_rows(cls, rows: Mapping[str, Mapping[Tag, Value]]) -> "Behavior":
        """Build a behavior from ``{name: {tag: value}}`` rows."""
        return cls({name: SignalTrace(events) for name, events in rows.items()})

    # -- basic queries -----------------------------------------------------
    def domain(self) -> Set[str]:
        """The set of signal names of the behavior (written V(b) in the paper)."""
        return set(self._signals)

    def __contains__(self, name: str) -> bool:
        return name in self._signals

    def __getitem__(self, name: str) -> SignalTrace:
        return self._signals[name]

    def get(self, name: str, default: Optional[SignalTrace] = None) -> Optional[SignalTrace]:
        return self._signals.get(name, default)

    def items(self) -> Iterator[Tuple[str, SignalTrace]]:
        return iter(sorted(self._signals.items()))

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._signals))

    def tags(self) -> Tuple[Tag, ...]:
        """All tags occurring in the behavior, in increasing order."""
        all_tags: Set[Tag] = set()
        for trace in self._signals.values():
            all_tags.update(trace.tags)
        return tuple(sorted(all_tags))

    def is_empty(self) -> bool:
        """True iff every signal of the behavior is empty."""
        return all(len(trace) == 0 for trace in self._signals.values())

    def length(self) -> int:
        """Number of distinct tags in the behavior."""
        return len(self.tags())

    # -- restriction -------------------------------------------------------
    def restrict(self, names: Iterable[str]) -> "Behavior":
        """Restriction ``b|X``: keep only the signals named in ``names``."""
        wanted = set(names)
        return Behavior({name: trace for name, trace in self._signals.items() if name in wanted})

    def hide(self, names: Iterable[str]) -> "Behavior":
        """Complement ``b/X``: drop the signals named in ``names``."""
        unwanted = set(names)
        return Behavior({name: trace for name, trace in self._signals.items() if name not in unwanted})

    def union(self, other: "Behavior") -> "Behavior":
        """Disjoint-domain union of two behaviors (``b ∪ c``).

        Signals present in both behaviors must be identical.
        """
        merged = dict(self._signals)
        for name, trace in other._signals.items():
            if name in merged and merged[name] != trace:
                raise ValueError(f"behaviors disagree on shared signal {name!r}")
            merged[name] = trace
        return Behavior(merged)

    def restrict_tags(self, tags: Iterable[Tag]) -> "Behavior":
        """Keep only the events whose tag belongs to ``tags`` on every signal."""
        wanted = set(tags)
        return Behavior({name: trace.restrict_to(wanted) for name, trace in self._signals.items()})

    def prefix(self, instants: int) -> "Behavior":
        """The behavior restricted to its first ``instants`` distinct tags."""
        kept = set(self.tags()[:instants])
        return self.restrict_tags(kept)

    # -- canonical form and equivalences ------------------------------------
    def canonical(self) -> "Behavior":
        """Re-label tags by their rank among all tags of the behavior."""
        ranking = {tag: index for index, tag in enumerate(self.tags())}
        return Behavior(
            {name: trace.relabel(lambda tag: ranking[tag]) for name, trace in self._signals.items()}
        )

    def flows(self) -> Dict[str, Tuple[Value, ...]]:
        """The per-signal value sequences (the information preserved by ≈)."""
        return {name: trace.values for name, trace in self._signals.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Behavior):
            return NotImplemented
        return self._signals == other._signals

    def __hash__(self) -> int:
        return hash(tuple(sorted((name, trace) for name, trace in self._signals.items())))

    def __repr__(self) -> str:
        rows = ", ".join(f"{name}: {trace!r}" for name, trace in self.items())
        return f"Behavior({rows})"


# ---------------------------------------------------------------------------
# Stretching, relaxation and the equivalences of Section 2.1.
# ---------------------------------------------------------------------------

def is_stretching(base: Behavior, stretched: Behavior) -> bool:
    """True iff ``stretched`` is a stretching of ``base`` (written b <= c).

    A stretching preserves the domain and re-labels tags through a strictly
    monotone function that is common to all signals of the behavior.
    """
    if base.domain() != stretched.domain():
        return False
    base_tags = base.tags()
    stretched_tags = stretched.tags()
    if len(base_tags) != len(stretched_tags):
        return False
    mapping = dict(zip(base_tags, stretched_tags))
    if any(mapping[tag] < tag for tag in base_tags):
        return False
    for name in base.names():
        base_trace = base[name]
        other_trace = stretched[name]
        if tuple(mapping[tag] for tag in base_trace.tags) != other_trace.tags:
            return False
        if base_trace.values != other_trace.values:
            return False
    return True


def clock_equivalent(left: Behavior, right: Behavior) -> bool:
    """Clock equivalence ``b ~ c``: equality up to an isomorphism on tags."""
    if left.domain() != right.domain():
        return False
    return left.canonical() == right.canonical()


def is_relaxation(base: Behavior, relaxed: Behavior) -> bool:
    """True iff ``relaxed`` is a relaxation of ``base`` (written b ⊑ c).

    A relaxation stretches each signal independently: per-signal value
    sequences are preserved but the relative interleaving across signals may
    change.
    """
    if base.domain() != relaxed.domain():
        return False
    for name in base.names():
        if base[name].values != relaxed[name].values:
            return False
    return True


def flow_equivalent(left: Behavior, right: Behavior) -> bool:
    """Flow equivalence ``b ≈ c``: same domain, same per-signal value flows."""
    if left.domain() != right.domain():
        return False
    return left.flows() == right.flows()
