"""Hash-consing of model-checking states.

The engines of :mod:`repro.mc` key dictionaries and sets by state — the
register-valuation tuple of the boolean abstraction — millions of times on
large explorations, and the on-the-fly product flattens *component* states
into the same tuples over and over.  Interning returns one canonical tuple
per valuation, so repeated hashing reuses the tuple's cached hash and
equality checks inside dict probes are pointer comparisons on the common
path.  (:class:`~repro.mocc.reactions.Reaction` has the matching
:meth:`~repro.mocc.reactions.Reaction.interned` constructor.)
"""

from __future__ import annotations

from typing import Dict, Tuple

State = Tuple[Tuple[str, object], ...]

_STATES: Dict[State, State] = {}

#: bound on the intern table: cleared on overflow (interning is a pure
#: optimization — tuple equality and hashing never depend on the table)
INTERN_TABLE_LIMIT = 1 << 20


def intern_state(state: State) -> State:
    """The canonical shared tuple for this register valuation."""
    existing = _STATES.get(state)
    if existing is not None:
        return existing
    if len(_STATES) >= INTERN_TABLE_LIMIT:
        _STATES.clear()
    _STATES[state] = state
    return state


def clear_interned_states() -> None:
    """Reset the intern table (between unrelated sessions)."""
    _STATES.clear()


def interned_state_count() -> int:
    return len(_STATES)
