"""Denotational processes: sets of behaviors, and their compositions.

A process ``p`` is a set of behaviors over the same domain.  This module
implements the two compositions of Section 2.1:

* synchronous composition ``p | q`` — behaviors of ``p`` and ``q`` that agree
  (are equal) on the shared interface are glued together;
* asynchronous composition ``p ‖ q`` — behaviors that are *flow equivalent*
  on the shared interface are glued together, modelling communication through
  unbounded FIFO channels.

Denotational processes are finite over-approximations used for checking the
formal properties of Section 4 on bounded traces; the executable semantics of
Signal lives in :mod:`repro.semantics`.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.mocc.behaviors import Behavior, clock_equivalent, flow_equivalent
from repro.mocc.reactions import Reaction, concatenate
from repro.mocc.signals import SignalTrace


class DenotationalProcess:
    """A finite set of behaviors sharing the same domain."""

    __slots__ = ("_domain", "_behaviors")

    def __init__(self, domain: Iterable[str], behaviors: Iterable[Behavior] = ()):
        self._domain: FrozenSet[str] = frozenset(domain)
        collected: List[Behavior] = []
        seen: Set[Behavior] = set()
        for behavior in behaviors:
            if behavior.domain() != set(self._domain):
                raise ValueError(
                    f"behavior domain {sorted(behavior.domain())} differs from the "
                    f"process domain {sorted(self._domain)}"
                )
            if behavior not in seen:
                seen.add(behavior)
                collected.append(behavior)
        self._behaviors: Tuple[Behavior, ...] = tuple(collected)

    # -- queries ------------------------------------------------------------
    @property
    def domain(self) -> FrozenSet[str]:
        return self._domain

    def behaviors(self) -> Tuple[Behavior, ...]:
        return self._behaviors

    def __len__(self) -> int:
        return len(self._behaviors)

    def __iter__(self) -> Iterator[Behavior]:
        return iter(self._behaviors)

    def __contains__(self, behavior: Behavior) -> bool:
        return behavior in set(self._behaviors)

    def __repr__(self) -> str:
        return f"DenotationalProcess(domain={sorted(self._domain)}, behaviors={len(self._behaviors)})"

    # -- simple constructions -------------------------------------------------
    def restrict(self, names: Iterable[str]) -> "DenotationalProcess":
        """Project every behavior on the given signal names."""
        wanted = frozenset(names) & self._domain
        return DenotationalProcess(wanted, (behavior.restrict(wanted) for behavior in self))

    def hide(self, names: Iterable[str]) -> "DenotationalProcess":
        """The paper's restriction ``P/x``: hide the given signals."""
        return self.restrict(self._domain - frozenset(names))

    def filter(self, predicate: Callable[[Behavior], bool]) -> "DenotationalProcess":
        return DenotationalProcess(self._domain, (b for b in self if predicate(b)))

    def extend(self, behaviors: Iterable[Behavior]) -> "DenotationalProcess":
        return DenotationalProcess(self._domain, tuple(self._behaviors) + tuple(behaviors))

    # -- equivalence-aware membership -----------------------------------------
    def contains_clock_equivalent(self, behavior: Behavior) -> bool:
        """True iff some behavior of the process is clock equivalent to ``behavior``."""
        return any(clock_equivalent(behavior, candidate) for candidate in self)

    def contains_flow_equivalent(self, behavior: Behavior) -> bool:
        """True iff some behavior of the process is flow equivalent to ``behavior``."""
        return any(flow_equivalent(behavior, candidate) for candidate in self)

    def flow_classes(self) -> Set[Tuple[Tuple[str, Tuple[object, ...]], ...]]:
        """The set of flow-equivalence classes of the process, as canonical keys."""
        classes = set()
        for behavior in self:
            key = tuple(sorted((name, values) for name, values in behavior.flows().items()))
            classes.add(key)
        return classes


def synchronous_composition(left: DenotationalProcess, right: DenotationalProcess) -> DenotationalProcess:
    """Synchronous composition ``p | q`` of two denotational processes."""
    interface = left.domain & right.domain
    domain = left.domain | right.domain
    combined: List[Behavior] = []
    for b in left:
        b_interface = b.restrict(interface)
        for c in right:
            if b_interface == c.restrict(interface):
                combined.append(b.union(c))
    return DenotationalProcess(domain, combined)


def iter_asynchronous_gluings(
    left: DenotationalProcess, right: DenotationalProcess
) -> Iterator[Behavior]:
    """Stream the gluings of ``p ‖ q`` pair by pair, without materializing.

    Behaviors are glued when they are *flow equivalent* on the shared
    interface; every gluing keeps, for each shared signal, the flow of
    values (re-timed on the tags of the left operand).  A consumer that
    stops early — the lazy isochrony comparison of
    :mod:`repro.properties.isochrony` — never pays for the remaining
    |left| × |right| combinations.
    """
    interface = left.domain & right.domain
    domain = left.domain | right.domain
    for b in left:
        for c in right:
            if flow_equivalent(b.restrict(interface), c.restrict(interface)):
                rows: Dict[str, SignalTrace] = {}
                for name in domain:
                    if name in b.domain():
                        rows[name] = b[name]
                    else:
                        rows[name] = c[name]
                yield Behavior(rows)


def asynchronous_composition(left: DenotationalProcess, right: DenotationalProcess) -> DenotationalProcess:
    """Asynchronous composition ``p ‖ q`` of two denotational processes.

    The materialized form of :func:`iter_asynchronous_gluings`, for callers
    that need the whole composite (Definition 3's eager comparison).
    """
    return DenotationalProcess(
        left.domain | right.domain, list(iter_asynchronous_gluings(left, right))
    )


def behaviors_from_reaction_sequences(
    domain: Iterable[str], sequences: Iterable[Iterable[Reaction]]
) -> DenotationalProcess:
    """Build a denotational process from sequences of reactions.

    Each sequence is concatenated (with consecutive fresh tags) into a
    behavior over ``domain``; silent reactions simply advance time without
    adding events, matching the paper's construction of behaviors as
    concatenations of reactions.
    """
    names = tuple(sorted(set(domain)))
    behaviors: List[Behavior] = []
    for sequence in sequences:
        behavior = Behavior.empty(names)
        tag = 0
        for reaction in sequence:
            behavior = concatenate(behavior, reaction.on_domain(names), tag)
            tag += 1
        behaviors.append(behavior)
    return DenotationalProcess(names, behaviors)
