"""Reactions: behaviors with (at most) one time tag.

Reactions are the unit of execution in the paper's semantics: the meaning of
a Signal process is built by concatenating reactions, and weak endochrony
(Definition 2) is stated in terms of independent reactions and their union
``r ⊔ s``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.mocc.behaviors import Behavior
from repro.mocc.signals import SignalTrace, Value
from repro.mocc.tags import Tag

#: canonical sorted-domain tuples, shared across every reaction of a process
_DOMAIN_CACHE: Dict[Tuple[str, ...], Tuple[str, ...]] = {}

#: bound on the module-level intern/cache tables: past this many entries the
#: table is cleared (interning is an optimization — equality and hashing do
#: not depend on table persistence, so eviction is always safe)
INTERN_TABLE_LIMIT = 1 << 20


def _canonical_domain(domain: Iterable[str]) -> Tuple[str, ...]:
    if isinstance(domain, tuple):
        cached = _DOMAIN_CACHE.get(domain)
        if cached is not None:
            return cached
        canonical = tuple(sorted(set(domain)))
        if len(_DOMAIN_CACHE) >= INTERN_TABLE_LIMIT:
            _DOMAIN_CACHE.clear()
        _DOMAIN_CACHE[domain] = canonical
        _DOMAIN_CACHE[canonical] = canonical
        return canonical
    return _canonical_domain(tuple(domain))


class Reaction:
    """An assignment of values to a subset of signals at a single instant.

    A reaction is *silent* (stuttering) when it assigns no signal at all.
    Unlike :class:`Behavior`, a reaction abstracts the concrete tag: the tag
    is chosen when the reaction is concatenated to a behavior.

    Reactions are immutable, and the model-checking engines handle the same
    reaction many times (``seen`` sets, product joins, axiom sweeps), so the
    derived views are precomputed once — :meth:`items`,
    :meth:`present_signals` and :meth:`absent_signals` return shared
    immutable objects, the hash is computed at construction time, and
    equality short-circuits on identity.  :meth:`interned` additionally
    hash-conses reactions so the hot paths compare pointers.
    """

    __slots__ = ("_domain", "_present", "_items", "_present_set", "_absent_set", "_hash")

    #: the intern table of :meth:`interned` (content-keyed canonical instances)
    _interned: Dict[Tuple[Tuple[str, ...], Tuple[Tuple[str, Value], ...]], "Reaction"] = {}

    def __init__(self, domain: Iterable[str], present: Optional[Mapping[str, Value]] = None):
        self._domain: Tuple[str, ...] = _canonical_domain(domain)
        values = dict(present or {})
        unknown = set(values) - set(self._domain)
        if unknown:
            raise ValueError(f"reaction assigns signals outside its domain: {sorted(unknown)}")
        self._present: Dict[str, Value] = values
        self._items: Tuple[Tuple[str, Value], ...] = tuple(sorted(values.items()))
        self._present_set: FrozenSet[str] = frozenset(values)
        self._absent_set: FrozenSet[str] = frozenset(self._domain) - self._present_set
        self._hash: int = hash((self._domain, self._items))

    @classmethod
    def interned(
        cls, domain: Iterable[str], present: Optional[Mapping[str, Value]] = None
    ) -> "Reaction":
        """The canonical shared instance of this reaction (hash-consed).

        Equal reactions returned by this constructor are the *same* object,
        so equality checks in the engines' inner loops are pointer
        comparisons and hashes are never recomputed.  The table holds at
        most :data:`INTERN_TABLE_LIMIT` entries (cleared on overflow, so a
        long-running process is bounded); :meth:`clear_interned` resets it
        eagerly between unrelated sessions.
        """
        candidate = cls(domain, present)
        key = (candidate._domain, candidate._items)
        existing = cls._interned.get(key)
        if existing is not None:
            return existing
        if len(cls._interned) >= INTERN_TABLE_LIMIT:
            cls._interned.clear()
        cls._interned[key] = candidate
        return candidate

    @classmethod
    def clear_interned(cls) -> None:
        cls._interned.clear()

    # -- queries ------------------------------------------------------------
    @property
    def domain(self) -> Tuple[str, ...]:
        return self._domain

    def present_signals(self) -> FrozenSet[str]:
        """The signals that carry an event in this reaction (shared, immutable)."""
        return self._present_set

    def absent_signals(self) -> FrozenSet[str]:
        return self._absent_set

    def is_silent(self) -> bool:
        """True iff the reaction has no event (a stuttering reaction)."""
        return not self._present

    def value(self, name: str) -> Value:
        return self._present[name]

    def get(self, name: str, default: Optional[Value] = None) -> Optional[Value]:
        return self._present.get(name, default)

    def items(self) -> Tuple[Tuple[str, Value], ...]:
        return self._items

    def __contains__(self, name: str) -> bool:
        return name in self._present

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Reaction):
            return NotImplemented
        return (
            self._hash == other._hash
            and self._domain == other._domain
            and self._items == other._items
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        events = " ".join(f"{name}={value!r}" for name, value in self.items())
        return f"Reaction({events or 'silent'})"

    # -- transformations ----------------------------------------------------
    def restrict(self, names: Iterable[str]) -> "Reaction":
        """Restriction of the reaction to a subset of its domain."""
        wanted = set(names)
        return Reaction(
            [name for name in self._domain if name in wanted],
            {name: value for name, value in self._present.items() if name in wanted},
        )

    def on_domain(self, domain: Iterable[str]) -> "Reaction":
        """The same events viewed on a (possibly larger) domain."""
        return Reaction(domain, self._present)

    def as_behavior(self, tag: Tag) -> Behavior:
        """The reaction as a behavior whose unique tag is ``tag``."""
        return Behavior(
            {
                name: (SignalTrace({tag: self._present[name]}) if name in self._present else SignalTrace.empty())
                for name in self._domain
            }
        )


def independent(left: Reaction, right: Reaction) -> bool:
    """True iff the two reactions have disjoint sets of present signals."""
    return not (left.present_signals() & right.present_signals())


def merge_reactions(left: Reaction, right: Reaction) -> Reaction:
    """The union ``r ⊔ s`` of two independent reactions."""
    if not independent(left, right):
        raise ValueError("cannot merge reactions that share present signals")
    domain = set(left.domain) | set(right.domain)
    events: Dict[str, Value] = dict(left.items())
    events.update(dict(right.items()))
    return Reaction(domain, events)


def concatenate(behavior: Behavior, reaction: Reaction, tag: Optional[Tag] = None) -> Behavior:
    """Concatenation ``b · r``: append a reaction after the end of a behavior."""
    if reaction.present_signals() - behavior.domain():
        missing = sorted(reaction.present_signals() - behavior.domain())
        raise ValueError(f"reaction mentions signals absent from the behavior: {missing}")
    existing = behavior.tags()
    if tag is None:
        tag = (existing[-1] + 1) if existing else 0
    elif existing and tag <= existing[-1]:
        raise ValueError(f"tag {tag} does not come after the behavior (last tag {existing[-1]})")
    rows: Dict[str, SignalTrace] = {}
    for name in behavior.names():
        trace = behavior[name]
        if name in reaction:
            trace = trace.append(tag, reaction.value(name))
        rows[name] = trace
    return Behavior(rows)
