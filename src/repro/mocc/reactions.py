"""Reactions: behaviors with (at most) one time tag.

Reactions are the unit of execution in the paper's semantics: the meaning of
a Signal process is built by concatenating reactions, and weak endochrony
(Definition 2) is stated in terms of independent reactions and their union
``r ⊔ s``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.mocc.behaviors import Behavior
from repro.mocc.signals import SignalTrace, Value
from repro.mocc.tags import Tag


class Reaction:
    """An assignment of values to a subset of signals at a single instant.

    A reaction is *silent* (stuttering) when it assigns no signal at all.
    Unlike :class:`Behavior`, a reaction abstracts the concrete tag: the tag
    is chosen when the reaction is concatenated to a behavior.
    """

    __slots__ = ("_domain", "_present")

    def __init__(self, domain: Iterable[str], present: Optional[Mapping[str, Value]] = None):
        self._domain: Tuple[str, ...] = tuple(sorted(set(domain)))
        values = dict(present or {})
        unknown = set(values) - set(self._domain)
        if unknown:
            raise ValueError(f"reaction assigns signals outside its domain: {sorted(unknown)}")
        self._present: Dict[str, Value] = values

    # -- queries ------------------------------------------------------------
    @property
    def domain(self) -> Tuple[str, ...]:
        return self._domain

    def present_signals(self) -> Set[str]:
        """The signals that carry an event in this reaction."""
        return set(self._present)

    def absent_signals(self) -> Set[str]:
        return set(self._domain) - set(self._present)

    def is_silent(self) -> bool:
        """True iff the reaction has no event (a stuttering reaction)."""
        return not self._present

    def value(self, name: str) -> Value:
        return self._present[name]

    def get(self, name: str, default: Optional[Value] = None) -> Optional[Value]:
        return self._present.get(name, default)

    def items(self) -> Tuple[Tuple[str, Value], ...]:
        return tuple(sorted(self._present.items()))

    def __contains__(self, name: str) -> bool:
        return name in self._present

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Reaction):
            return NotImplemented
        return self._domain == other._domain and self._present == other._present

    def __hash__(self) -> int:
        return hash((self._domain, tuple(sorted(self._present.items()))))

    def __repr__(self) -> str:
        events = " ".join(f"{name}={value!r}" for name, value in self.items())
        return f"Reaction({events or 'silent'})"

    # -- transformations ----------------------------------------------------
    def restrict(self, names: Iterable[str]) -> "Reaction":
        """Restriction of the reaction to a subset of its domain."""
        wanted = set(names)
        return Reaction(
            [name for name in self._domain if name in wanted],
            {name: value for name, value in self._present.items() if name in wanted},
        )

    def on_domain(self, domain: Iterable[str]) -> "Reaction":
        """The same events viewed on a (possibly larger) domain."""
        return Reaction(domain, self._present)

    def as_behavior(self, tag: Tag) -> Behavior:
        """The reaction as a behavior whose unique tag is ``tag``."""
        return Behavior(
            {
                name: (SignalTrace({tag: self._present[name]}) if name in self._present else SignalTrace.empty())
                for name in self._domain
            }
        )


def independent(left: Reaction, right: Reaction) -> bool:
    """True iff the two reactions have disjoint sets of present signals."""
    return not (left.present_signals() & right.present_signals())


def merge_reactions(left: Reaction, right: Reaction) -> Reaction:
    """The union ``r ⊔ s`` of two independent reactions."""
    if not independent(left, right):
        raise ValueError("cannot merge reactions that share present signals")
    domain = set(left.domain) | set(right.domain)
    events: Dict[str, Value] = dict(left.items())
    events.update(dict(right.items()))
    return Reaction(domain, events)


def concatenate(behavior: Behavior, reaction: Reaction, tag: Optional[Tag] = None) -> Behavior:
    """Concatenation ``b · r``: append a reaction after the end of a behavior."""
    if reaction.present_signals() - behavior.domain():
        missing = sorted(reaction.present_signals() - behavior.domain())
        raise ValueError(f"reaction mentions signals absent from the behavior: {missing}")
    existing = behavior.tags()
    if tag is None:
        tag = (existing[-1] + 1) if existing else 0
    elif existing and tag <= existing[-1]:
        raise ValueError(f"tag {tag} does not come after the behavior (last tag {existing[-1]})")
    rows: Dict[str, SignalTrace] = {}
    for name in behavior.names():
        trace = behavior[name]
        if name in reaction:
            trace = trace.append(tag, reaction.value(name))
        rows[name] = trace
    return Behavior(rows)
