"""Signal traces: functions from a chain of tags to values.

A *signal* in the polychronous model is a function from a chain of tags to
values.  :class:`SignalTrace` is an immutable representation of such a
function.  It supports the operations needed by the equivalences and
compositions of the model: restriction to a prefix, value-sequence
extraction (for flow equivalence), tag re-labelling (for stretching /
clock equivalence) and concatenation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.mocc.tags import Tag, is_chain

Value = object


class SignalTrace:
    """An immutable finite signal: a mapping from a chain of tags to values."""

    __slots__ = ("_tags", "_values")

    def __init__(self, events: Optional[Mapping[Tag, Value]] = None):
        items = sorted((events or {}).items())
        self._tags: Tuple[Tag, ...] = tuple(tag for tag, _ in items)
        self._values: Tuple[Value, ...] = tuple(value for _, value in items)

    # -- construction -----------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Tag, Value]]) -> "SignalTrace":
        """Build a trace from ``(tag, value)`` pairs; tags must be distinct."""
        events: Dict[Tag, Value] = {}
        for tag, value in pairs:
            if tag in events:
                raise ValueError(f"duplicate tag {tag} in signal trace")
            events[tag] = value
        return cls(events)

    @classmethod
    def from_values(cls, values: Sequence[Value], start: Tag = 0, step: int = 1) -> "SignalTrace":
        """Build a trace carrying ``values`` at evenly spaced tags."""
        return cls({start + index * step: value for index, value in enumerate(values)})

    @classmethod
    def empty(cls) -> "SignalTrace":
        """The empty signal (no events)."""
        return cls({})

    # -- basic queries -----------------------------------------------------
    @property
    def tags(self) -> Tuple[Tag, ...]:
        """The chain of tags at which the signal is present."""
        return self._tags

    @property
    def values(self) -> Tuple[Value, ...]:
        """The flow of values carried by the signal, in tag order."""
        return self._values

    def __len__(self) -> int:
        return len(self._tags)

    def __bool__(self) -> bool:
        return bool(self._tags)

    def __iter__(self) -> Iterator[Tuple[Tag, Value]]:
        return iter(zip(self._tags, self._values))

    def __contains__(self, tag: Tag) -> bool:
        return tag in set(self._tags)

    def __getitem__(self, tag: Tag) -> Value:
        try:
            index = self._tags.index(tag)
        except ValueError:
            raise KeyError(f"signal has no event at tag {tag}") from None
        return self._values[index]

    def get(self, tag: Tag, default: Optional[Value] = None) -> Optional[Value]:
        """Value at ``tag`` or ``default`` when the signal is absent there."""
        try:
            return self[tag]
        except KeyError:
            return default

    def min_tag(self) -> Tag:
        """Minimal tag of a non-empty signal."""
        if not self._tags:
            raise ValueError("empty signal has no minimal tag")
        return self._tags[0]

    def max_tag(self) -> Tag:
        """Maximal tag of a non-empty signal."""
        if not self._tags:
            raise ValueError("empty signal has no maximal tag")
        return self._tags[-1]

    # -- transformations ---------------------------------------------------
    def relabel(self, mapping: Callable[[Tag], Tag]) -> "SignalTrace":
        """Apply a tag bijection; the result must still be a chain."""
        relabelled = {mapping(tag): value for tag, value in self}
        tags = tuple(sorted(relabelled))
        if not is_chain(tags) or len(tags) != len(self._tags):
            raise ValueError("relabelling is not injective on the signal's tags")
        return SignalTrace(relabelled)

    def restrict_to(self, tags: Iterable[Tag]) -> "SignalTrace":
        """Keep only events whose tag belongs to ``tags``."""
        wanted = set(tags)
        return SignalTrace({tag: value for tag, value in self if tag in wanted})

    def before(self, tag: Tag) -> "SignalTrace":
        """Events with tag strictly smaller than ``tag``."""
        return SignalTrace({t: v for t, v in self if t < tag})

    def value_at_or_before(self, tag: Tag, default: Optional[Value] = None) -> Optional[Value]:
        """Most recent value at a tag ``<= tag``, or ``default`` when none exists."""
        result = default
        for t, v in self:
            if t <= tag:
                result = v
            else:
                break
        return result

    def append(self, tag: Tag, value: Value) -> "SignalTrace":
        """Return a new trace with one more event; ``tag`` must be past the end."""
        if self._tags and tag <= self._tags[-1]:
            raise ValueError(f"tag {tag} is not greater than the last tag {self._tags[-1]}")
        events = dict(self)
        events[tag] = value
        return SignalTrace(events)

    def concat(self, other: "SignalTrace") -> "SignalTrace":
        """Concatenate a later trace to this one (tags of ``other`` come after)."""
        if self._tags and other._tags and other._tags[0] <= self._tags[-1]:
            raise ValueError("traces overlap: cannot concatenate")
        events = dict(self)
        events.update(dict(other))
        return SignalTrace(events)

    # -- comparisons ---------------------------------------------------------
    def same_flow(self, other: "SignalTrace") -> bool:
        """True iff both signals carry the same values in the same order."""
        return self._values == other._values

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignalTrace):
            return NotImplemented
        return self._tags == other._tags and self._values == other._values

    def __hash__(self) -> int:
        return hash((self._tags, self._values))

    def __repr__(self) -> str:
        events = " ".join(f"({tag},{value!r})" for tag, value in self)
        return f"SignalTrace({events})"
