"""Tags and chains of tags.

In the polychronous model of computation, a *tag* denotes a period in time
during which execution takes place.  Time is a partial order on tags; a
*chain* is a totally ordered set of tags and defines the clock of a signal.

The reproduction uses integers as tags.  Integers are totally ordered, which
is sufficient because every construction in the paper only ever compares tags
that belong to the same behavior, where a common refinement of the per-signal
chains always exists.  Partial-order aspects (independence of tags of
unrelated signals) are captured by the equivalences of
:mod:`repro.mocc.behaviors` rather than by the tag type itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

Tag = int


def is_chain(tags: Sequence[Tag]) -> bool:
    """Return True iff ``tags`` is strictly increasing (a chain of tags)."""
    return all(earlier < later for earlier, later in zip(tags, tags[1:]))


def chain_of(tags: Iterable[Tag]) -> Tuple[Tag, ...]:
    """Normalize an iterable of tags into a chain (sorted, duplicates removed)."""
    return tuple(sorted(set(tags)))


@dataclass
class TagSupply:
    """A monotone supply of fresh tags.

    Used by the interpreter and by trace constructions that need new instants
    guaranteed to be later than every tag produced so far.
    """

    next_tag: Tag = 0
    _produced: list = field(default_factory=list, repr=False)

    def fresh(self) -> Tag:
        """Return a fresh tag strictly greater than all previously produced ones."""
        tag = self.next_tag
        self.next_tag += 1
        self._produced.append(tag)
        return tag

    def fresh_after(self, tag: Tag) -> Tag:
        """Return a fresh tag strictly greater than ``tag`` (and all produced ones)."""
        if tag >= self.next_tag:
            self.next_tag = tag + 1
        return self.fresh()

    def produced(self) -> Tuple[Tag, ...]:
        """All tags handed out so far, in order of production."""
        return tuple(self._produced)
