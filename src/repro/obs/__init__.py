"""repro.obs — unified tracing, metrics, and profiling for the whole stack.

A stdlib-only leaf package (everything above — api, service, bdd —
imports it; it imports none of them):

* :mod:`repro.obs.metrics` — the metrics registry: counters, gauges,
  log-scale histograms, collector scraping, JSON snapshots.
* :mod:`repro.obs.trace` — the span tracer with explicit context
  propagation across threads, the JSON-lines protocol, and process-pool
  workers.
* :mod:`repro.obs.collect` — collectors mapping every legacy ``stats()``
  surface onto the canonical ``repro_*`` metric namespace.
* :mod:`repro.obs.export` — Prometheus text exposition (+ validator),
  Chrome trace-event JSON, and the shared CLI table formatter.
* :mod:`repro.obs.profile` — the slow-query log and per-span BDD tagging.

The two cheap globals every instrumented call site keys off:
``trace.TRACING`` (the sampling gate — one module-global read when off)
and ``metrics.GLOBAL`` (the process-wide registry).
"""

from repro.obs.metrics import (  # noqa: F401
    GLOBAL,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    reset_global,
)
from repro.obs.trace import (  # noqa: F401
    NULL_SPAN,
    Span,
    SpanContext,
    Tracer,
    activate,
    add_event,
    bind,
    configure,
    configure_from_env,
    current_context,
    current_span,
    enabled,
    extract,
    extract_env,
    get_tracer,
    inject,
    inject_env,
    pop,
    push,
    reset,
    span,
    span_tree,
    tag_current,
)
from repro.obs.export import (  # noqa: F401
    chrome_trace,
    format_table,
    flatten_stats,
    parse_prometheus,
    snapshot_rows,
    to_prometheus,
    write_chrome_trace,
)
from repro.obs.profile import SlowQueryLog, bdd_tag_delta, bdd_tags  # noqa: F401
from repro.obs import collect  # noqa: F401
