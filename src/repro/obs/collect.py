"""Collectors: the bridge from legacy ``stats()`` surfaces to the registry.

Each factory here takes a live object (a store, a scheduler, a client, a
BDD manager, the tracer) and returns a **collector** — a zero-argument
callable yielding metric-family dicts — for
:meth:`repro.obs.metrics.MetricsRegistry.register_collector`.  The objects
keep their existing counters (and their ``stats()`` methods keep working,
with the historically drifted key names preserved as deprecated aliases);
the collectors are the single place that maps every one of them onto the
canonical ``repro_*`` namespace:

==============================================  ===================================
family                                          source counter
==============================================  ===================================
``repro_store_reads_total{outcome=}``           ``ArtifactStore`` hits/misses/invalid
``repro_store_writes_total{outcome=}``          writes / write_errors
``repro_store_quarantined_total`` / healed      quarantine & self-heal events
``repro_service_queries_total{outcome=}``       scheduler cache_hits / coalesced /
                                                verdict_store_hits / computed /
                                                rejected / deadline_exceeded / failed
``repro_service_inflight``                      live in-flight gauge
``repro_artifact_stage_total{stage=,outcome=}`` per-stage ArtifactGraph counters
``repro_bdd_*{backend=}``                       kernel counters, incl. the derived
                                                ``repro_bdd_apply_cache_hit_ratio``
``repro_backend_*``                             pool rebuilds / redispatches
``repro_faults_injected_total{site=}``          ``FaultPlan.injected``
``repro_client_*``                              ``ServiceClient`` attempts/retries
``repro_trace_spans_*``                         tracer bookkeeping
==============================================  ===================================
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

Family = Dict[str, object]
Collector = Callable[[], Iterable[Family]]


def _counter(name: str, help: str, samples) -> Family:
    return {"name": name, "type": "counter", "help": help, "samples": samples}


def _gauge(name: str, help: str, samples) -> Family:
    return {"name": name, "type": "gauge", "help": help, "samples": samples}


def _sample(value, **labels) -> Dict[str, object]:
    return {"labels": {k: str(v) for k, v in labels.items()}, "value": float(value)}


# -- store -----------------------------------------------------------------------
def store_collector(store) -> Collector:
    def collect() -> List[Family]:
        return [
            _counter(
                "repro_store_reads_total",
                "Artifact store reads by outcome",
                [
                    _sample(store.hits, outcome="hit"),
                    _sample(store.misses, outcome="miss"),
                    _sample(store.invalid, outcome="invalid"),
                    _sample(store.read_errors, outcome="error"),
                ],
            ),
            _counter(
                "repro_store_writes_total",
                "Artifact store writes by outcome",
                [
                    _sample(store.writes, outcome="ok"),
                    _sample(store.write_errors, outcome="error"),
                ],
            ),
            _counter(
                "repro_store_quarantined_total",
                "Corrupt artifacts moved aside",
                [_sample(store.quarantined)],
            ),
            _counter(
                "repro_store_healed_total",
                "Quarantined artifacts rewritten by a later put",
                [_sample(getattr(store, "healed", 0))],
            ),
            _counter(
                "repro_store_checksum_verified_total",
                "Envelope checksum verifications by outcome",
                [
                    _sample(store.verified, outcome="verified"),
                    _sample(store.unverified, outcome="unverified"),
                ],
            ),
            _gauge(
                "repro_store_objects",
                "Objects currently in the store",
                [_sample(store.object_count())],
            ),
        ]

    return collect


# -- scheduler / service ----------------------------------------------------------
def service_collector(service) -> Collector:
    def collect() -> List[Family]:
        families: List[Family] = [
            _counter(
                "repro_service_queries_total",
                "Verification queries by outcome tier",
                [
                    _sample(service.queries, outcome="all"),
                    _sample(service.cache_hits, outcome="cache_hit"),
                    _sample(service.verdict_store_hits, outcome="store_hit"),
                    _sample(service.coalesced, outcome="coalesced"),
                    _sample(service.computations, outcome="computed"),
                    _sample(service.rejected, outcome="rejected"),
                    _sample(service.deadline_exceeded, outcome="deadline_exceeded"),
                    _sample(service.failures, outcome="failed"),
                ],
            ),
            _gauge(
                "repro_service_inflight",
                "Queries currently being computed",
                [_sample(len(service._inflight))],
            ),
            _gauge(
                "repro_service_cache_entries",
                "Verdict LRU cache occupancy",
                [_sample(len(service._cache))],
            ),
        ]
        described = service.backend.describe()
        backend_samples = [
            _sample(described.get("pool_rebuilds", 0), event="pool_rebuild"),
            _sample(described.get("redispatched", 0), event="redispatch"),
        ]
        families.append(
            _counter(
                "repro_backend_recoveries_total",
                "Backend crash-recovery actions",
                backend_samples,
            )
        )
        fault_families = _fault_families(service.backend.fault_stats())
        families.extend(fault_families)
        families.extend(_stage_families(service.artifact_stats()["stages"]))
        return families

    return collect


def _fault_families(fault_stats) -> List[Family]:
    if not fault_stats:
        return []
    samples = [
        _sample(count, site=site)
        for site, count in sorted(fault_stats.get("injected", {}).items())
    ]
    if not samples:
        samples = [_sample(fault_stats.get("total_injected", 0), site="all")]
    return [
        _counter(
            "repro_faults_injected_total",
            "Deterministic fault injections by site.mode",
            samples,
        )
    ]


def fault_plan_collector(plan) -> Collector:
    def collect() -> List[Family]:
        return _fault_families(plan.stats())

    return collect


# -- artifact graph ----------------------------------------------------------------
def _stage_families(stages: Dict[str, Dict[str, int]]) -> List[Family]:
    samples = []
    for stage, counters in sorted(stages.items()):
        for outcome, count in sorted(counters.items()):
            if count:
                samples.append(_sample(count, stage=stage, outcome=outcome))
    if not samples:
        return []
    return [
        _counter(
            "repro_artifact_stage_total",
            "Artifact-graph stage resolutions by outcome",
            samples,
        )
    ]


def graph_collector(graph) -> Collector:
    def collect() -> List[Family]:
        stats = graph.stats()
        families = _stage_families(stats["stages"])
        families.append(
            _counter(
                "repro_artifact_resolutions_total",
                "Graph-wide resolutions by tier",
                [
                    _sample(stats["hits"], tier="memory"),
                    _sample(stats["store_hits"], tier="store"),
                    _sample(stats["computed"], tier="computed"),
                ],
            )
        )
        families.append(
            _gauge(
                "repro_artifact_nodes",
                "Live artifact-graph nodes",
                [_sample(stats["nodes"])],
            )
        )
        seconds = stats.get("stage_seconds") or {}
        if seconds:
            families.append(
                _gauge(
                    "repro_artifact_stage_self_seconds",
                    "Cumulative per-stage compute self-time",
                    [
                        _sample(round(value, 6), stage=stage)
                        for stage, value in sorted(seconds.items())
                    ],
                )
            )
        return families

    return collect


# -- BDD kernels -------------------------------------------------------------------
def bdd_collector(manager) -> Collector:
    backend = getattr(manager, "backend_name", "reference")

    def collect() -> List[Family]:
        stats = manager.stats()
        lookups = stats.get("apply_cache_lookups", 0)
        hits = stats.get("apply_cache_hits", 0)
        ratio = (hits / lookups) if lookups else 0.0
        families = [
            _counter(
                "repro_bdd_apply_calls_total",
                "Public apply() invocations",
                [_sample(stats.get("apply_calls", 0), backend=backend)],
            ),
            _counter(
                "repro_bdd_apply_cache_lookups_total",
                "Apply-cache probes",
                [_sample(lookups, backend=backend)],
            ),
            _counter(
                "repro_bdd_apply_cache_hits_total",
                "Apply-cache probe hits",
                [_sample(hits, backend=backend)],
            ),
            _gauge(
                "repro_bdd_apply_cache_hit_ratio",
                "Apply-cache hit ratio (hits / lookups)",
                [_sample(round(ratio, 6), backend=backend)],
            ),
            _gauge(
                "repro_bdd_nodes",
                "Live nodes in the unique table",
                [_sample(stats.get("nodes", 0), backend=backend)],
            ),
            _gauge(
                "repro_bdd_peak_nodes",
                "Peak unique-table size observed",
                [_sample(stats.get("peak_nodes", 0), backend=backend)],
            ),
            _gauge(
                "repro_bdd_sift_seconds",
                "Cumulative time in variable sifting",
                [_sample(round(stats.get("sift_seconds", 0.0), 6), backend=backend)],
            ),
            _counter(
                "repro_bdd_reorder_runs_total",
                "Variable-reordering passes",
                [_sample(stats.get("reorder_runs", 0), backend=backend)],
            ),
        ]
        return families

    return collect


# -- client ------------------------------------------------------------------------
def client_collector(client) -> Collector:
    def collect() -> List[Family]:
        return [
            _counter(
                "repro_client_requests_total",
                "Client requests issued",
                [_sample(getattr(client, "requests", 0))],
            ),
            _counter(
                "repro_client_retries_total",
                "Transport-level retry attempts",
                [_sample(getattr(client, "retried", 0))],
            ),
        ]

    return collect


# -- tracer ------------------------------------------------------------------------
def tracer_collector(tracer) -> Collector:
    def collect() -> List[Family]:
        stats = tracer.stats()
        return [
            _counter(
                "repro_trace_spans_total",
                "Spans finished into the tracer",
                [_sample(stats["finished"])],
            ),
            _counter(
                "repro_trace_spans_dropped_total",
                "Spans lost to the max_spans bound",
                [_sample(stats["dropped"])],
            ),
            _counter(
                "repro_trace_spans_adopted_total",
                "Spans shipped back from worker processes",
                [_sample(stats["adopted"])],
            ),
            _gauge(
                "repro_trace_spans_collected",
                "Spans currently buffered",
                [_sample(stats["collected"])],
            ),
        ]

    return collect
