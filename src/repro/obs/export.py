"""Exporters and formatters for metrics snapshots and span collections.

One snapshot shape (``MetricsRegistry.snapshot()``) feeds every rendering:
JSON (the snapshot itself), Prometheus text exposition
(:func:`to_prometheus`, validated by :func:`parse_prometheus`), and the
aligned table the CLI prints (:func:`format_table` — shared by
``repro-serve stats`` and ``repro-serve metrics``, which is the
"stats/metrics share one formatter" satellite).  Span dicts render as
Chrome trace-event JSON (:func:`chrome_trace`) loadable in Perfetto or
``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple


# -- Prometheus text exposition ---------------------------------------------------
def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_text(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs = pairs + [extra]
    if not pairs:
        return ""
    escaped = ",".join(
        '%s="%s"' % (key, str(value).replace("\\", "\\\\").replace('"', '\\"'))
        for key, value in pairs
    )
    return "{%s}" % escaped


def to_prometheus(snapshot: Dict[str, object]) -> str:
    """Prometheus text exposition (version 0.0.4) of a registry snapshot."""
    lines: List[str] = []
    for family in snapshot["families"]:
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if family["type"] == "histogram":
                for bound, count in sample["buckets"]:
                    bucket_labels = _label_text(labels, ("le", _format_value(bound)))
                    lines.append(f"{name}_bucket{bucket_labels} {count}")
                lines.append(f"{name}_sum{_label_text(labels)} {sample['sum']}")
                lines.append(f"{name}_count{_label_text(labels)} {sample['count']}")
            else:
                value = sample.get("value", 0)
                lines.append(f"{name}{_label_text(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """A minimal exposition-format parser used as a CI gate: returns
    ``{metric_name: {"type": ..., "samples": [(labels_dict, value)]}}`` and
    raises ``ValueError`` on any malformed line."""
    metrics: Dict[str, Dict[str, object]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4:
                raise ValueError(f"malformed TYPE line: {raw!r}")
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"unknown metric type {kind!r} in {raw!r}")
            metrics.setdefault(name, {"type": kind, "samples": []})
            continue
        if line.startswith("#"):
            raise ValueError(f"malformed comment line: {raw!r}")
        # sample line: name[{labels}] value
        brace = line.find("{")
        labels: Dict[str, str] = {}
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                raise ValueError(f"unbalanced braces: {raw!r}")
            name = line[:brace]
            body = line[brace + 1 : close]
            rest = line[close + 1 :].strip()
            if body:
                for pair in _split_label_pairs(body):
                    key, _, quoted = pair.partition("=")
                    if not quoted.startswith('"') or not quoted.endswith('"'):
                        raise ValueError(f"unquoted label value: {raw!r}")
                    labels[key.strip()] = (
                        quoted[1:-1].replace('\\"', '"').replace("\\\\", "\\")
                    )
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"malformed sample line: {raw!r}")
            name, rest = parts
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"malformed metric name in {raw!r}")
        try:
            value = float(rest.replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError:
            raise ValueError(f"malformed sample value in {raw!r}")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in metrics:
                base = name[: -len(suffix)]
                break
        entry = metrics.setdefault(base, {"type": "untyped", "samples": []})
        entry["samples"].append((labels, value))
    return metrics


def _split_label_pairs(body: str) -> List[str]:
    """Split ``a="x",b="y,z"`` on commas outside quotes."""
    pairs: List[str] = []
    depth_quote = False
    current = []
    previous = ""
    for char in body:
        if char == '"' and previous != "\\":
            depth_quote = not depth_quote
        if char == "," and not depth_quote:
            pairs.append("".join(current))
            current = []
        else:
            current.append(char)
        previous = char
    if current:
        pairs.append("".join(current))
    return [pair for pair in (p.strip() for p in pairs) if pair]


# -- table formatting --------------------------------------------------------------
def flatten_stats(payload: object, prefix: str = "") -> List[Tuple[str, object]]:
    """Flatten a nested stats dict into sorted dotted-key rows."""
    rows: List[Tuple[str, object]] = []
    if isinstance(payload, dict):
        for key in sorted(payload, key=str):
            dotted = f"{prefix}.{key}" if prefix else str(key)
            rows.extend(flatten_stats(payload[key], dotted))
    elif isinstance(payload, (list, tuple)):
        rows.append((prefix, json.dumps(payload)))
    else:
        rows.append((prefix, payload))
    return rows


def snapshot_rows(snapshot: Dict[str, object]) -> List[Tuple[str, object]]:
    """Metric-family snapshot → the same row shape as :func:`flatten_stats`."""
    rows: List[Tuple[str, object]] = []
    for family in snapshot["families"]:
        for sample in family["samples"]:
            label_text = _label_text(sample.get("labels", {}))
            if family["type"] == "histogram":
                rows.append((f"{family['name']}_count{label_text}", sample["count"]))
                rows.append((f"{family['name']}_sum{label_text}", sample["sum"]))
            else:
                rows.append((f"{family['name']}{label_text}", sample.get("value", 0)))
    return rows


def format_table(rows: Iterable[Tuple[str, object]]) -> str:
    """Two aligned columns — the shared ``--format table`` renderer."""
    materialized = [(str(key), value) for key, value in rows]
    if not materialized:
        return "(no data)\n"
    width = max(len(key) for key, _ in materialized)
    lines = []
    for key, value in materialized:
        if isinstance(value, float) and not value.is_integer():
            rendered = f"{value:.6g}"
        else:
            rendered = str(value)
        lines.append(f"{key.ljust(width)}  {rendered}")
    return "\n".join(lines) + "\n"


# -- Chrome trace events -----------------------------------------------------------
def chrome_trace(spans: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Span dicts → Chrome trace-event JSON (``ph:"X"`` complete events plus
    ``ph:"i"`` instants for span events), Perfetto-loadable.

    Wall-clock ``start`` anchors each event's ``ts`` so spans from
    different processes land on one timeline; within-span event offsets
    are monotonic (perf_counter deltas).
    """
    events: List[Dict[str, object]] = []
    spans = list(spans)
    epoch = min((s["start"] for s in spans), default=0.0)
    for span in spans:
        ts = (span["start"] - epoch) * 1e6
        pid = span.get("pid", 0)
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": round(ts, 3),
                "dur": round(span["duration"] * 1e6, 3),
                "pid": pid,
                "tid": 0,
                "args": {
                    "trace_id": span["trace_id"],
                    "span_id": span["span_id"],
                    "parent_id": span.get("parent_id"),
                    **{f"tag.{k}": v for k, v in span.get("tags", {}).items()},
                },
            }
        )
        for event in span.get("events", ()):
            events.append(
                {
                    "name": f"{span['name']}:{event['name']}",
                    "cat": "repro.event",
                    "ph": "i",
                    "s": "t",
                    "ts": round(ts + event["offset"] * 1e6, 3),
                    "pid": pid,
                    "tid": 0,
                    "args": dict(event.get("tags", {})),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[Dict[str, object]], path) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(chrome_trace(spans), stream, indent=1)
