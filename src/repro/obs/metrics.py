"""The metrics registry — counters, gauges, histograms, one namespace.

Every metric lives in one flat, Prometheus-shaped namespace
(``repro_<layer>_<what>[_total]``) with optional label sets, replacing the
ad-hoc per-object ``stats()`` dict shapes that accumulated across PRs 4–8.
Two acquisition paths feed a registry:

* **instruments** — :class:`Counter` / :class:`Gauge` / :class:`Histogram`
  objects handed out by :meth:`MetricsRegistry.counter` & co., incremented
  at call sites (cheap: a dict lookup amortized to an attribute add);
* **collectors** — callables registered with
  :meth:`MetricsRegistry.register_collector` that scrape an existing
  ``stats()`` surface on demand (at :meth:`snapshot` time), which is how
  the legacy counters on the store, scheduler, artifact graph, and BDD
  managers surface without double bookkeeping.

Snapshots are plain JSON (``{"families": [...]}``); Prometheus text
exposition is rendered from the same snapshot by
:func:`repro.obs.export.to_prometheus`.

Determinism: histograms use the fixed log-scale :data:`LATENCY_BUCKETS`;
nothing in a snapshot reads a clock — every value is a recorded count/sum,
so tests can assert on snapshots directly (timing-valued *observations*
are of course caller-provided).
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

#: fixed half-decade log-scale latency buckets, in seconds (upper bounds).
#: 100 µs … 100 s covers everything from a warm cache hit to a
#: sift-dominated compile; +Inf is implicit in the exposition.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.000316,
    0.001,
    0.00316,
    0.01,
    0.0316,
    0.1,
    0.316,
    1.0,
    3.16,
    10.0,
    31.6,
    100.0,
)

Labels = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Optional[Dict[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotone count. ``inc`` only; negative increments are rejected."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value; settable up or down."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A cumulative-bucket histogram over fixed upper bounds."""

    __slots__ = ("name", "labels", "buckets", "counts", "total", "sum")

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        buckets: Tuple[float, ...] = LATENCY_BUCKETS,
    ):
        self.name = name
        self.labels = labels
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        if index < len(self.counts):
            self.counts[index] += 1
        self.total += 1
        self.sum += value

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.total))
        return out


class MetricsRegistry:
    """Instruments plus collectors, snapshotted into metric families.

    A *family* is one metric name with a type, optional help text, and one
    sample per label set — the unit both the JSON and Prometheus exports
    are built from.  Get-or-create semantics: asking twice for the same
    ``(name, labels)`` returns the same instrument; asking for the same
    name with a different type raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, Labels], object] = {}
        self._types: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._collectors: List[Callable[[], Iterable[Dict[str, object]]]] = []

    # -- instrument acquisition ---------------------------------------------------
    def _get(self, kind: str, cls, name: str, labels, help, **kwargs):
        key = (name, _labels_key(labels))
        with self._lock:
            existing_type = self._types.get(name)
            if existing_type is not None and existing_type != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing_type}"
                )
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
                self._types[name] = kind
            if help:
                self._help[name] = help
            return instrument

    def counter(
        self, name: str, labels: Optional[Dict[str, str]] = None, help: str = ""
    ) -> Counter:
        return self._get("counter", Counter, name, labels, help)

    def gauge(
        self, name: str, labels: Optional[Dict[str, str]] = None, help: str = ""
    ) -> Gauge:
        return self._get("gauge", Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
        buckets: Tuple[float, ...] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get("histogram", Histogram, name, labels, help, buckets=buckets)

    # -- collectors ---------------------------------------------------------------
    def register_collector(
        self, collector: Callable[[], Iterable[Dict[str, object]]]
    ) -> None:
        """``collector()`` yields family dicts (``name``/``type``/``help``/
        ``samples``) scraped on every snapshot — the adapter path for
        legacy ``stats()`` surfaces."""
        with self._lock:
            self._collectors.append(collector)

    # -- snapshot -----------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """``{"families": [...]}`` — instruments and collector output merged
        by family name, families and samples in sorted order."""
        families: Dict[str, Dict[str, object]] = {}

        def family(name: str, kind: str, help: str = "") -> Dict[str, object]:
            entry = families.get(name)
            if entry is None:
                entry = {"name": name, "type": kind, "help": help, "samples": []}
                families[name] = entry
            elif help and not entry["help"]:
                entry["help"] = help
            return entry

        with self._lock:
            instruments = list(self._instruments.values())
            types = dict(self._types)
            helps = dict(self._help)
            collectors = list(self._collectors)

        for instrument in instruments:
            name = instrument.name
            entry = family(name, types[name], helps.get(name, ""))
            labels = dict(instrument.labels)
            if isinstance(instrument, Histogram):
                entry["samples"].append(
                    {
                        "labels": labels,
                        "count": instrument.total,
                        "sum": round(instrument.sum, 9),
                        "buckets": [
                            [bound, count]
                            for bound, count in instrument.cumulative()
                        ],
                    }
                )
            else:
                entry["samples"].append({"labels": labels, "value": instrument.value})

        for collector in collectors:
            for emitted in collector():
                entry = family(
                    str(emitted["name"]),
                    str(emitted.get("type", "gauge")),
                    str(emitted.get("help", "")),
                )
                entry["samples"].extend(emitted.get("samples", ()))

        ordered = []
        for name in sorted(families):
            entry = families[name]
            entry["samples"].sort(key=lambda sample: sorted(sample["labels"].items()))
            ordered.append(entry)
        return {"families": ordered}

    def get_value(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[float]:
        """One sample's value out of a fresh snapshot (tests, formatters)."""
        wanted = dict(_labels_key(labels))
        for entry in self.snapshot()["families"]:
            if entry["name"] != name:
                continue
            for sample in entry["samples"]:
                if sample["labels"] == wanted:
                    return sample.get("value", sample.get("count"))
        return None


#: the process-wide registry: process-scoped instruments (trace/span counts,
#: client retries) and the default snapshot source for benchmark records.
#: Objects with their own lifecycle (a ``VerificationService``) own a
#: registry instance instead, so concurrent tests don't share counters.
GLOBAL = MetricsRegistry()


def reset_global() -> MetricsRegistry:
    """Replace the global registry's state (test hygiene)."""
    GLOBAL._instruments.clear()
    GLOBAL._types.clear()
    GLOBAL._help.clear()
    GLOBAL._collectors.clear()
    return GLOBAL
