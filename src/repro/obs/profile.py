"""Profiling hooks: the slow-query log and per-span kernel tagging."""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional


class SlowQueryLog:
    """A bounded log of queries slower than a configurable threshold.

    The scheduler reports every computed query here; entries record what
    is needed to explain the latency after the fact — the query key, the
    elapsed seconds, whether the trace was sampled (and its id, so the
    span tree can be pulled), and the per-stage breakdown when one was
    collected.  ``threshold <= 0`` disables logging entirely.
    """

    def __init__(self, threshold: float = 0.0, maxlen: int = 256):
        self.threshold = threshold
        self.observed = 0
        self.logged = 0
        self._entries: Deque[Dict[str, object]] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def observe(
        self,
        seconds: float,
        digest: str,
        prop: str,
        method: str,
        trace_id: Optional[str] = None,
        stages: Optional[Dict[str, float]] = None,
    ) -> bool:
        """Record one completed query; True when it crossed the threshold."""
        if self.threshold <= 0:
            return False
        with self._lock:
            self.observed += 1
            if seconds < self.threshold:
                return False
            self.logged += 1
            entry: Dict[str, object] = {
                "seconds": round(seconds, 6),
                "digest": digest,
                "prop": prop,
                "method": method,
            }
            if trace_id:
                entry["trace_id"] = trace_id
            if stages:
                entry["stages"] = {k: round(v, 6) for k, v in stages.items()}
            self._entries.append(entry)
            return True

    def entries(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "threshold": self.threshold,
                "observed": self.observed,
                "logged": self.logged,
                "entries": len(self._entries),
            }


def bdd_tags(manager) -> Dict[str, object]:
    """The kernel counters worth pinning to a span: a compact dict for
    ``span.set_tags`` so a trace explains where BDD time went."""
    stats = manager.stats()
    lookups = stats.get("apply_cache_lookups", 0)
    hits = stats.get("apply_cache_hits", 0)
    return {
        "bdd.backend": getattr(manager, "backend_name", "reference"),
        "bdd.apply_calls": stats.get("apply_calls", 0),
        "bdd.apply_cache_hit_ratio": round(hits / lookups, 4) if lookups else 0.0,
        "bdd.nodes": stats.get("nodes", 0),
        "bdd.peak_nodes": stats.get("peak_nodes", 0),
        "bdd.sift_seconds": round(stats.get("sift_seconds", 0.0), 6),
    }


def bdd_tag_delta(before: Dict[str, object], manager) -> Dict[str, object]:
    """Like :func:`bdd_tags` but with the monotone counters expressed as
    deltas against a ``before`` snapshot — what one span actually cost."""
    now = bdd_tags(manager)
    out = dict(now)
    for key in ("bdd.apply_calls",):
        out[key] = now[key] - before.get(key, 0)
    return out
