"""The span tracer — one trace per query, explicit context propagation.

A **span** is one timed operation (a transport round trip, a scheduler
decision, an artifact-graph stage, a store access, a backend execution)
carrying a ``trace_id`` shared by every span of the same originating query,
its own ``span_id``, its ``parent_id``, free-form ``tags`` and timestamped
``events``.  The tracer collects finished spans; exporters render them as
JSON-lines event logs or Chrome trace-event JSON (viewable in Perfetto —
see :func:`repro.obs.export.chrome_trace`).

**Propagation is explicit.**  Within one thread the current span rides a
:class:`contextvars.ContextVar`; across every boundary the context is
carried by hand, because that is the only propagation that survives the
serving stack's real topology:

* **client → server** — the client injects ``traceparent``
  (``"<trace_id>-<span_id>"``) into the JSON-lines request payload; the
  server extracts it and parents its ``server.request`` span under it;
* **event loop → worker thread** — ``asyncio`` executors do not copy
  context, so the inline backend captures :func:`current_context` and
  re-:func:`activate`\\ s it inside the worker thread;
* **scheduler → process-pool worker** — workers are separate processes:
  the traceparent travels in the task payload, the worker records its
  spans locally and ships them back beside the verdict, and the parent
  :meth:`Tracer.adopt`\\ s them into its own collection.  (``REPRO_TRACE``
  in the environment additionally lets freshly spawned workers and CLI
  children enable tracing at startup — see :func:`configure_from_env`.)

**Cost when off.**  The module-level :data:`TRACING` flag is the sampling
gate every instrumented call site checks first; with tracing off (the
default) an instrumentation point is one global read and a falsy branch —
the ≤5 % warm-path budget ``benchmarks/bench_obs.py`` gates.  Span
*values* carry wall-clock timestamps (for Perfetto alignment across
processes); nothing a test asserts on depends on them — assertions pin
span names, tags, events and parentage, which are deterministic.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Dict, Iterable, List, Optional, Union

#: environment variable that enables tracing in child processes / CLI runs
TRACE_ENV = "REPRO_TRACE"
#: environment variable carrying a traceparent for spawned children
TRACEPARENT_ENV = "REPRO_TRACEPARENT"

#: the global sampling gate — instrumented call sites check this first.
#: Mirrors ``get_tracer().enabled``; only :func:`configure` writes it.
TRACING = False


@dataclass(frozen=True)
class SpanContext:
    """The propagatable identity of a span: ``(trace_id, span_id)``."""

    trace_id: str
    span_id: str

    def to_traceparent(self) -> str:
        return f"{self.trace_id}-{self.span_id}"

    @classmethod
    def from_traceparent(cls, text: str) -> Optional["SpanContext"]:
        """Parse ``"<trace_id>-<span_id>"``; ``None`` on anything malformed."""
        if not isinstance(text, str):
            return None
        trace_id, separator, span_id = text.rpartition("-")
        if not separator or not trace_id or not span_id:
            return None
        return cls(trace_id=trace_id, span_id=span_id)


class Span:
    """One timed, tagged operation of a trace."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "tags",
        "events",
        "start",
        "duration",
        "_t0",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        tags: Optional[Dict[str, object]] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.tags: Dict[str, object] = dict(tags) if tags else {}
        self.events: List[Dict[str, object]] = []
        self.start = time.time()
        self._t0 = time.perf_counter()
        self.duration = 0.0

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set_tag(self, key: str, value: object) -> "Span":
        self.tags[key] = value
        return self

    def set_tags(self, tags: Dict[str, object]) -> "Span":
        self.tags.update(tags)
        return self

    def add_event(self, name: str, **tags: object) -> "Span":
        """A point-in-time annotation (a fault fired, a retry, a heal)."""
        event: Dict[str, object] = {
            "name": name,
            "offset": round(time.perf_counter() - self._t0, 6),
        }
        if tags:
            event["tags"] = tags
        self.events.append(event)
        return self

    def finish(self) -> "Span":
        self.duration = time.perf_counter() - self._t0
        return self

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6),
            "pid": os.getpid(),
            "tags": self.tags,
            "events": self.events,
        }


class _NullSpan:
    """The no-op span handed out when tracing is off (or the trace is not
    sampled); every mutator is an attribute lookup and a return."""

    __slots__ = ()
    context = None
    trace_id = span_id = parent_id = None
    tags: Dict[str, object] = {}
    events: List[Dict[str, object]] = []

    def set_tag(self, key: str, value: object) -> "_NullSpan":
        return self

    def set_tags(self, tags: Dict[str, object]) -> "_NullSpan":
        return self

    def add_event(self, name: str, **tags: object) -> "_NullSpan":
        return self

    def finish(self) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()

#: contextvar sentinel: the enclosing trace was *not* sampled — descendants
#: must stay no-ops instead of re-drawing the sampling decision
_NOT_SAMPLED = object()

#: the active span (a :class:`Span`), a bare :class:`SpanContext` activated
#: from a remote parent, the not-sampled sentinel, or None
_CURRENT: "contextvars.ContextVar[object]" = contextvars.ContextVar(
    "repro_obs_span", default=None
)


class Tracer:
    """Collects finished spans, bounded, thread-safe.

    ``sample`` < 1.0 makes each new *root* span (one with no parent
    anywhere) draw from a seeded :class:`random.Random` — deterministic
    per tracer instance, never the shared :mod:`random` state; descendants
    of an unsampled root are suppressed without re-drawing.
    """

    def __init__(
        self,
        enabled: bool = False,
        max_spans: int = 10000,
        sample: float = 1.0,
        seed: int = 0,
    ):
        self.enabled = enabled
        self.max_spans = max_spans
        self.sample = sample
        self.spans: List[Dict[str, object]] = []
        #: spans lost to the ``max_spans`` bound
        self.dropped = 0
        #: spans finished into this tracer since construction (monotone)
        self.finished = 0
        #: spans adopted from worker processes
        self.adopted = 0
        self._sampler = Random(seed)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()

    # -- identities ---------------------------------------------------------------
    def _new_id(self) -> str:
        with self._lock:
            serial = next(self._ids)
        return f"{os.getpid():x}.{serial:x}"

    # -- span lifecycle -----------------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: Optional[Union[Span, SpanContext]] = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> Union[Span, _NullSpan]:
        """A started span under ``parent`` (or the current context, or a new
        trace); :data:`NULL_SPAN` when tracing is off or the trace unsampled."""
        if not self.enabled:
            return NULL_SPAN
        if parent is None:
            current = _CURRENT.get()
            if current is _NOT_SAMPLED:
                return NULL_SPAN
            if isinstance(current, (Span, SpanContext)):
                parent = current
        if isinstance(parent, Span):
            parent = parent.context
        if parent is None:
            if self.sample < 1.0 and self._sampler.random() >= self.sample:
                return NULL_SPAN
            trace_id = self._new_id()
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        return Span(trace_id, self._new_id(), parent_id, name, tags)

    def record(self, span: Union[Span, _NullSpan]) -> None:
        """File a finished span (no-op spans are silently ignored)."""
        if span is NULL_SPAN or isinstance(span, _NullSpan):
            return
        payload = span.to_dict()
        with self._lock:
            self.finished += 1
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                return
            self.spans.append(payload)

    def adopt(self, spans: Iterable[Dict[str, object]]) -> int:
        """Merge span dicts recorded in another process (a pool worker)."""
        count = 0
        with self._lock:
            for payload in spans:
                self.finished += 1
                if len(self.spans) >= self.max_spans:
                    self.dropped += 1
                    continue
                self.spans.append(dict(payload))
                self.adopted += 1
                count += 1
        return count

    # -- access / export -----------------------------------------------------------
    def drain(self) -> List[Dict[str, object]]:
        """Pop every collected span (the worker-process shipping primitive)."""
        with self._lock:
            spans, self.spans = self.spans, []
        return spans

    def trace(self, trace_id: str) -> List[Dict[str, object]]:
        """Every collected span of one trace, in finish order."""
        with self._lock:
            return [span for span in self.spans if span["trace_id"] == trace_id]

    def trace_ids(self) -> List[str]:
        seen: List[str] = []
        with self._lock:
            for span in self.spans:
                if span["trace_id"] not in seen:
                    seen.append(span["trace_id"])
        return seen

    def to_jsonl(self) -> str:
        with self._lock:
            return "".join(json.dumps(span) + "\n" for span in self.spans)

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(self.to_jsonl())

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "collected": len(self.spans),
                "finished": self.finished,
                "adopted": self.adopted,
                "dropped": self.dropped,
                "sample": self.sample,
            }


#: the process-global tracer every instrumented call site records into
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def configure(
    enabled: Optional[bool] = None,
    max_spans: Optional[int] = None,
    sample: Optional[float] = None,
    seed: Optional[int] = None,
) -> Tracer:
    """Reconfigure the global tracer in place; returns it."""
    global TRACING
    if enabled is not None:
        _TRACER.enabled = bool(enabled)
    if max_spans is not None:
        _TRACER.max_spans = int(max_spans)
    if sample is not None:
        _TRACER.sample = float(sample)
    if seed is not None:
        _TRACER._sampler = Random(seed)
    TRACING = _TRACER.enabled
    return _TRACER


def configure_from_env(environ: Optional[Dict[str, str]] = None) -> Tracer:
    """Enable tracing when ``REPRO_TRACE`` is a truthy value — how spawned
    worker processes and CLI children inherit the tracing decision."""
    environment = os.environ if environ is None else environ
    flag = environment.get(TRACE_ENV, "").strip().lower()
    if flag in ("1", "true", "on", "yes"):
        configure(enabled=True)
    return _TRACER


def reset() -> Tracer:
    """Discard collected spans, restore defaults, disable tracing (test
    hygiene — a reset tracer behaves like a freshly constructed one)."""
    global TRACING
    _TRACER.drain()
    _TRACER.enabled = False
    _TRACER.dropped = 0
    _TRACER.finished = 0
    _TRACER.adopted = 0
    _TRACER.max_spans = 10000
    _TRACER.sample = 1.0
    _TRACER._sampler = Random(0)
    TRACING = False
    return _TRACER


def enabled() -> bool:
    return TRACING


# -- the context API ------------------------------------------------------------
def current_span() -> Union[Span, _NullSpan]:
    """The active :class:`Span` of this execution context (NULL when none)."""
    value = _CURRENT.get()
    return value if isinstance(value, Span) else NULL_SPAN


def current_context() -> Optional[SpanContext]:
    """The active span's context — what :func:`inject` would propagate."""
    value = _CURRENT.get()
    if isinstance(value, Span):
        return value.context
    if isinstance(value, SpanContext):
        return value
    return None


def add_event(name: str, **tags: object) -> None:
    """Annotate the active span (cheap no-op when tracing is off)."""
    if not TRACING:
        return
    value = _CURRENT.get()
    if isinstance(value, Span):
        value.add_event(name, **tags)


def tag_current(**tags: object) -> None:
    """Tag the active span (cheap no-op when tracing is off)."""
    if not TRACING:
        return
    value = _CURRENT.get()
    if isinstance(value, Span):
        value.set_tags(tags)


def bind(function):
    """Wrap ``function`` so it runs under the *current* context wherever it
    is later called — the propagation shim for executor dispatch
    (``run_in_executor`` does not copy contextvars into worker threads).
    Returns ``function`` unchanged when tracing is off."""
    if not TRACING:
        return function
    context = current_context()
    if context is None:
        return function

    def bound(*args, **kwargs):
        with activate(context):
            return function(*args, **kwargs)

    return bound


def push(value: Union[Span, SpanContext]) -> "contextvars.Token":
    """Make ``value`` the ambient context; pair with :func:`pop` in a
    ``finally`` — the non-context-manager half of the API for call sites
    whose cleanup already lives in a ``try/finally``."""
    return _CURRENT.set(value)


def pop(token: "contextvars.Token") -> None:
    _CURRENT.reset(token)


@contextmanager
def activate(context: Optional[SpanContext]):
    """Make ``context`` the parent of spans started in this block — the
    receiving half of every explicit propagation (server request, worker
    thread, pool worker)."""
    if context is None:
        yield
        return
    token = _CURRENT.set(context)
    try:
        yield
    finally:
        _CURRENT.reset(token)


class _NullContext:
    """The context manager :func:`span` hands out when tracing is off — a
    shared singleton, so the disabled fast path allocates nothing (a
    generator-based contextmanager would cost ~5× as much per call)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


def span(name: str, parent: Optional[Union[Span, SpanContext]] = None, **tags: object):
    """The instrumentation entry point: a context-managed span.

    With tracing off this returns a no-op context manager after one global
    check.  On, the span parents under ``parent`` or the ambient context,
    becomes the ambient context for the block, and is recorded on exit.
    """
    if not TRACING:
        return _NULL_CONTEXT
    return _live_span(name, parent, tags)


@contextmanager
def _live_span(name: str, parent, tags: Dict[str, object]):
    opened = _TRACER.start_span(name, parent=parent, tags=tags or None)
    if opened is NULL_SPAN:
        token = _CURRENT.set(_NOT_SAMPLED)
        try:
            yield NULL_SPAN
        finally:
            _CURRENT.reset(token)
        return
    token = _CURRENT.set(opened)
    try:
        yield opened
    finally:
        _CURRENT.reset(token)
        opened.finish()
        _TRACER.record(opened)


# -- carrier propagation ---------------------------------------------------------
def inject(carrier: Dict[str, object]) -> Dict[str, object]:
    """Put the current context into a JSON-safe carrier (a request payload)."""
    context = current_context()
    if context is not None and TRACING:
        carrier["traceparent"] = context.to_traceparent()
    return carrier


def extract(carrier: Dict[str, object]) -> Optional[SpanContext]:
    """The :class:`SpanContext` a carrier propagates, if any."""
    value = carrier.get("traceparent")
    if not value:
        return None
    return SpanContext.from_traceparent(str(value))


def inject_env(environ: Dict[str, str]) -> Dict[str, str]:
    """Put the tracing decision and current context into an environment —
    how a spawned CLI child continues the trace (`REPRO_TRACE` /
    ``REPRO_TRACEPARENT``)."""
    if TRACING:
        environ[TRACE_ENV] = "1"
        context = current_context()
        if context is not None:
            environ[TRACEPARENT_ENV] = context.to_traceparent()
    return environ


def extract_env(environ: Optional[Dict[str, str]] = None) -> Optional[SpanContext]:
    environment = os.environ if environ is None else environ
    value = environment.get(TRACEPARENT_ENV)
    if not value:
        return None
    return SpanContext.from_traceparent(value)


def span_tree(spans: Iterable[Dict[str, object]], trace_id: Optional[str] = None):
    """Nest span dicts into ``{span, children: [...]}`` trees — the shape the
    docs snippet walks.  Roots are spans whose parent is absent (or outside
    the collected set); ``trace_id`` filters to one trace first."""
    selected = [
        span for span in spans if trace_id is None or span["trace_id"] == trace_id
    ]
    nodes = {
        span["span_id"]: {"span": span, "children": []} for span in selected
    }
    roots = []
    for span in selected:
        node = nodes[span["span_id"]]
        parent = nodes.get(span.get("parent_id"))
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots
