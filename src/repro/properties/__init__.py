"""Formal properties of Section 4 and the compositional design criterion.

Each submodule states, in its own docstring, which paper definition or
theorem it implements; the same map is kept in ``docs/architecture.md`` and
in the README feature table.

* :mod:`repro.properties.compilable` — the analysis pipeline and
  compilability (Definition 10, with Definitions 7 and 8);
* :mod:`repro.properties.endochrony` — hierarchic processes (Definition 11),
  the static endochrony criterion (Property 2) and the trace-based check of
  Definition 1;
* :mod:`repro.properties.weak_endochrony` — weak endochrony (Definition 2)
  over the reaction LTS, plus the model-checking formulation of Section 4.1;
* :mod:`repro.properties.nonblocking` — non-blocking processes (Definition 4);
* :mod:`repro.properties.isochrony` — isochrony (Definition 3) on bounded
  traces;
* :mod:`repro.properties.composition` — the *weakly hierarchic* criterion
  (Definition 12) and the Theorem 1 pipeline.
"""

from repro.properties.compilable import (
    ProcessAnalysis,
    is_compilable,
    verify_compilable,
    verify_hierarchic,
)
from repro.properties.endochrony import (
    is_hierarchic,
    is_endochronous,
    check_endochrony_on_traces,
    verify_endochrony,
    EndochronyTraceReport,
)
from repro.properties.weak_endochrony import (
    check_weak_endochrony,
    verify_weak_endochrony,
    WeakEndochronyReport,
)
from repro.properties.nonblocking import is_non_blocking, verify_non_blocking
from repro.properties.isochrony import check_isochrony, verify_isochrony, IsochronyReport
from repro.properties.composition import (
    CompositionVerdict,
    check_weakly_hierarchic,
    verify_weakly_hierarchic,
    compose_and_check,
)

__all__ = [
    "ProcessAnalysis",
    "is_compilable",
    "verify_compilable",
    "verify_hierarchic",
    "is_hierarchic",
    "is_endochronous",
    "check_endochrony_on_traces",
    "verify_endochrony",
    "EndochronyTraceReport",
    "check_weak_endochrony",
    "verify_weak_endochrony",
    "WeakEndochronyReport",
    "is_non_blocking",
    "verify_non_blocking",
    "check_isochrony",
    "verify_isochrony",
    "IsochronyReport",
    "CompositionVerdict",
    "check_weakly_hierarchic",
    "verify_weakly_hierarchic",
    "compose_and_check",
]
