"""The analysis pipeline — implements compilability (Definition 10) and the
well-clocked / acyclic clauses it is built from (Definitions 7 and 8).

:class:`ProcessAnalysis` bundles every artefact the paper's analyses build
from a process — timing relations, clock algebra, hierarchy, disjunctive
form, scheduling graph — computing each lazily and exactly once.  Every other
property module works from a :class:`ProcessAnalysis`.

A process is *compilable* (Definition 10) when it is acyclic and its
relations are well-clocked (well-formed hierarchy + disjunctive form);
Property 1 states that a compilable process is reactive and deterministic.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.api.results import Cost, Diagnostic, Verdict, stopwatch
from repro.bdd.bdd import BDDManager
from repro.clocks.algebra import ClockAlgebra
from repro.clocks.disjunctive import DisjunctiveFormResult, to_disjunctive_form
from repro.clocks.hierarchy import ClockHierarchy, build_hierarchy
from repro.clocks.inference import infer_timing_relations
from repro.clocks.relations import TimingRelations
from repro.lang.ast import ProcessDefinition
from repro.lang.normalize import NormalizedProcess, normalize
from repro.sched.closure import is_acyclic
from repro.sched.graph import SchedulingGraph
from repro.sched.reinforce import reinforce


class ProcessAnalysis:
    """Lazily computed analysis artefacts of one normalized process."""

    def __init__(self, process: NormalizedProcess, manager: Optional[BDDManager] = None):
        self.process = process
        self._manager = manager
        self._relations: Optional[TimingRelations] = None
        self._algebra: Optional[ClockAlgebra] = None
        self._hierarchy: Optional[ClockHierarchy] = None
        self._disjunctive: Optional[DisjunctiveFormResult] = None
        self._graph: Optional[SchedulingGraph] = None
        self._reinforced: Optional[SchedulingGraph] = None

    # -- constructors -----------------------------------------------------------
    @classmethod
    def of(cls, definition: ProcessDefinition, registry=None) -> "ProcessAnalysis":
        """Deprecated alias of :func:`repro.api.session.analyze` (one code path)."""
        warnings.warn(
            "ProcessAnalysis.of() is deprecated; use repro.analyze() or a "
            "repro.api.Design session instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.api.session import analyze

        return analyze(definition, registry)

    # -- artefacts ----------------------------------------------------------------
    @property
    def relations(self) -> TimingRelations:
        if self._relations is None:
            self._relations = infer_timing_relations(self.process)
        return self._relations

    @property
    def algebra(self) -> ClockAlgebra:
        if self._algebra is None:
            self._algebra = ClockAlgebra(self.process, self.relations, self._manager)
        return self._algebra

    @property
    def hierarchy(self) -> ClockHierarchy:
        if self._hierarchy is None:
            self._hierarchy = build_hierarchy(self.process, self.relations, self.algebra)
        return self._hierarchy

    @property
    def disjunctive(self) -> DisjunctiveFormResult:
        if self._disjunctive is None:
            self._disjunctive = to_disjunctive_form(self.process, self.relations, self.algebra)
        return self._disjunctive

    @property
    def scheduling_graph(self) -> SchedulingGraph:
        if self._graph is None:
            self._graph = SchedulingGraph.from_relations(
                self.process, self.disjunctive.relations, self.algebra
            )
        return self._graph

    @property
    def reinforced_graph(self) -> SchedulingGraph:
        if self._reinforced is None:
            self._reinforced = reinforce(
                self.scheduling_graph, self.disjunctive.relations, self.process
            )
        return self._reinforced

    # -- verdicts -------------------------------------------------------------------
    def is_well_clocked(self) -> bool:
        """Definition 7: well-formed hierarchy and disjunctive relations."""
        return self.hierarchy.well_formed() and self.disjunctive.is_disjunctive()

    def is_acyclic(self) -> bool:
        """Definition 8 on the reinforced scheduling graph."""
        return is_acyclic(self.reinforced_graph)

    def is_compilable(self) -> bool:
        """Definition 10: acyclic and well-clocked."""
        return self.is_well_clocked() and self.is_acyclic()

    def is_hierarchic(self) -> bool:
        """Definition 11: the clock hierarchy has a unique root."""
        return self.hierarchy.is_hierarchic()

    def root_count(self) -> int:
        return self.hierarchy.root_count()

    def summary(self) -> Dict[str, object]:
        """A dictionary of the main verdicts, convenient for reports and tests."""
        return {
            "process": self.process.name,
            "signals": len(self.process.all_signals()),
            "equations": len(self.process.equations),
            "roots": self.root_count(),
            "well_clocked": self.is_well_clocked(),
            "acyclic": self.is_acyclic(),
            "compilable": self.is_compilable(),
            "hierarchic": self.is_hierarchic(),
        }


def verify_compilable(
    process: Union[NormalizedProcess, ProcessAnalysis],
) -> Verdict:
    """Definition 10 as a :class:`~repro.api.results.Verdict`."""
    analysis = process if isinstance(process, ProcessAnalysis) else ProcessAnalysis(process)
    with stopwatch() as elapsed:
        well_formed = analysis.hierarchy.well_formed()
        disjunctive = analysis.disjunctive.is_disjunctive()
        acyclic = analysis.is_acyclic()
    verdict = Verdict(
        prop="compilable",
        subject=analysis.process.name,
        holds=well_formed and disjunctive and acyclic,
        method="static",
        diagnostics=[
            Diagnostic("well-formed hierarchy (Definition 7)", well_formed),
            Diagnostic("disjunctive form (Definition 7)", disjunctive),
            Diagnostic("acyclic reinforced graph (Definition 8)", acyclic),
        ],
        cost=Cost(seconds=elapsed[0]),
        report=analysis,
    )
    return verdict


def verify_hierarchic(process: Union[NormalizedProcess, ProcessAnalysis]) -> Verdict:
    """Definition 11 as a :class:`~repro.api.results.Verdict`."""
    analysis = process if isinstance(process, ProcessAnalysis) else ProcessAnalysis(process)
    with stopwatch() as elapsed:
        roots = analysis.root_count()
    verdict = Verdict(
        prop="hierarchic",
        subject=analysis.process.name,
        holds=roots == 1,
        method="static",
        diagnostics=[
            Diagnostic("unique hierarchy root (Definition 11)", roots == 1, f"{roots} roots")
        ],
        cost=Cost(seconds=elapsed[0]),
        report=analysis,
    )
    return verdict


def is_compilable(process: NormalizedProcess) -> bool:
    """Definition 10 as a standalone predicate (shim over :func:`verify_compilable`).

    .. deprecated:: use ``Design.verify("compilable")`` or
       :func:`verify_compilable` — the Verdict carries the same boolean plus
       the per-clause diagnostics.
    """
    warnings.warn(
        "is_compilable() is deprecated; use Design.verify('compilable') or "
        "verify_compilable() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return verify_compilable(process).holds
